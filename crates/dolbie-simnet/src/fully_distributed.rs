//! Discrete-event simulation of Algorithm 2 (fully-distributed DOLBIE).
//!
//! No master: each worker broadcasts its local cost and local step size
//! `ᾱ_{i,t}` to every peer (line 4), independently computes the global
//! cost, straggler, and consensus step size `α_t = min_j ᾱ_{j,t}`
//! (lines 5–7), and the non-stragglers send their updated decision *only to
//! the straggler* (line 9), which absorbs the remainder and tightens its
//! local step size per eq. (8) (lines 11–13).
//!
//! Per round this exchanges `N(N−1) + (N−1)` messages — the `O(N²)`
//! communication complexity of §IV-C, traded for the removal of the single
//! point of failure and for keeping decisions private from non-stragglers.
//!
//! Faults (extension): the simulator accepts the same
//! [`FaultPlan`] as the other architectures —
//! crash windows freeze the crashed worker's share while the survivors
//! balance among themselves, lossy links retransmit with ack/backoff, and
//! membership collapse degrades gracefully: a lone survivor keeps its
//! share and continues (matching the master-worker single-responder
//! semantics), and a round with no survivors freezes every share instead
//! of panicking. The plan's cost timeout is a coordinator-side concept and
//! is ignored here — there is no master to enforce it.

use crate::coordinator::{assist_step, frozen_round, straggler_pin_with_guard, tighten_alpha};
use crate::event::EventQueue;
use crate::faults::{Crash, FaultPlan, LinkStats};
use crate::latency::LatencyModel;
use crate::membership::{epoch_transition, MembershipSchedule, DEFAULT_DETECTION_TIMEOUT};
use crate::message::{Message, NodeId, Payload};
use crate::sched::{pop_with, DecisionPoint, FifoScheduler, Scheduler};
use crate::trace::{ProtocolRound, ProtocolTrace};
use dolbie_core::fingerprint::{MultisetFp, StateFp};
use dolbie_core::{Allocation, DolbieConfig, Environment};

#[derive(Debug, Clone, Copy)]
enum Ev {
    ComputeDone { worker: usize },
    Deliver(Message),
}

/// Per-round, per-worker protocol state.
#[derive(Debug, Clone)]
struct WorkerRoundState {
    costs: Vec<Option<f64>>,
    alphas: Vec<Option<f64>>,
    broadcasts_received: usize,
    decisions: Vec<Option<f64>>,
    decisions_received: usize,
    resolved: bool,
}

impl WorkerRoundState {
    fn new(n: usize) -> Self {
        Self {
            costs: vec![None; n],
            alphas: vec![None; n],
            broadcasts_received: 0,
            decisions: vec![None; n],
            decisions_received: 0,
            resolved: false,
        }
    }
}

/// The fully-distributed protocol simulator.
///
/// # Examples
///
/// ```
/// use dolbie_simnet::{FixedLatency, FullyDistributedSim};
/// use dolbie_core::environment::StaticLinearEnvironment;
/// use dolbie_core::DolbieConfig;
///
/// let env = StaticLinearEnvironment::from_slopes(vec![3.0, 1.0, 2.0]);
/// let mut sim = FullyDistributedSim::new(env, DolbieConfig::new(), FixedLatency::lan());
/// let trace = sim.run(10);
/// // N(N-1) broadcasts + (N-1) decisions = 8 messages for N = 3.
/// assert_eq!(trace.rounds[0].messages, 8);
/// ```
#[derive(Debug)]
pub struct FullyDistributedSim<E, L> {
    env: E,
    latency: L,
    shares: Vec<f64>,
    local_alphas: Vec<f64>,
    plan: FaultPlan,
    membership: MembershipSchedule,
}

impl<E: Environment, L: LatencyModel> FullyDistributedSim<E, L> {
    /// Creates the simulator with the uniform initial partition; every
    /// worker starts with the same local step size `ᾱ_{i,1} = α_1`.
    ///
    /// # Panics
    ///
    /// Panics if the environment has fewer than two workers (a one-worker
    /// "distributed" system has no protocol to run).
    pub fn new(env: E, config: DolbieConfig, latency: L) -> Self {
        let n = env.num_workers();
        assert!(n >= 2, "the fully-distributed protocol needs at least two workers");
        let initial = Allocation::uniform(n);
        let alpha = config.resolve_initial_alpha(&initial);
        Self {
            env,
            latency,
            shares: initial.into_inner(),
            local_alphas: vec![alpha; n],
            plan: FaultPlan::none(),
            membership: MembershipSchedule::none(),
        }
    }

    /// Installs a membership schedule: at epoch boundaries the workers
    /// rebuild their all-to-all broadcast topology around the new member
    /// set, departing shares are redistributed proportionally, joiners
    /// enter at share zero, and every member synchronizes its local step
    /// size to `min` over the outgoing members' values capped against the
    /// new member count. Replaces any schedule set earlier.
    ///
    /// # Panics
    ///
    /// Panics if the schedule names a worker out of range or would empty
    /// the active set.
    pub fn with_membership(mut self, schedule: MembershipSchedule) -> Self {
        schedule.validate(self.shares.len());
        self.membership = schedule;
        self
    }

    /// Installs a complete fault plan (crashes, lossy links). The plan's
    /// cost timeout is ignored — there is no coordinator to enforce it.
    /// Replaces any plan set earlier.
    ///
    /// # Panics
    ///
    /// Panics if a crash window names a worker index out of range.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        if let Some(max) = plan.max_crash_worker() {
            assert!(max < self.shares.len(), "crash worker out of range");
        }
        self.plan = plan;
        self
    }

    /// Injects a crash window (extension): the worker neither executes nor
    /// broadcasts during `[from_round, until_round)`. The survivors share a
    /// consistent view of the membership (as a failure detector would
    /// provide), freeze the crashed worker's share, and balance among
    /// themselves.
    ///
    /// # Panics
    ///
    /// Panics if the worker index is out of range.
    pub fn with_crash(mut self, crash: Crash) -> Self {
        assert!(crash.worker < self.shares.len(), "crash worker out of range");
        self.plan.crashes.push(crash);
        self
    }

    /// Runs the protocol for `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if the environment produces malformed cost functions.
    pub fn run(&mut self, rounds: usize) -> ProtocolTrace {
        self.run_with_scheduler(rounds, &mut FifoScheduler)
    }

    /// [`run`](Self::run) under controlled nondeterminism: every event
    /// dequeue, wire-fault coin, crash window, and membership boundary is
    /// routed through `sched` (see [`crate::sched`]). With
    /// [`FifoScheduler`] this is bitwise identical to [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if the environment produces malformed cost functions, or on
    /// the deadlock check if a scheduler drives a round that cannot
    /// complete (unreachable — the `dolbie-mc` claim).
    pub fn run_with_scheduler(
        &mut self,
        rounds: usize,
        sched: &mut dyn Scheduler,
    ) -> ProtocolTrace {
        let n = self.shares.len();
        let mut trace = Vec::with_capacity(rounds);
        let mut ready_at = vec![0.0f64; n];
        // Active membership view (epoch state, distinct from crash windows).
        let mut members = vec![true; n];

        for t in 0..rounds {
            // Epoch boundary: rebuild the broadcast topology around the
            // new member set and run the shared state transition.
            let previous_members = members.clone();
            let boundary = self.membership.apply_round_sched(t, &mut members, sched);
            if boundary.changed {
                epoch_transition(
                    &mut self.shares,
                    &mut self.local_alphas,
                    &previous_members,
                    &members,
                );
                if boundary.crash_detected {
                    let detection = self.plan.cost_timeout.unwrap_or(DEFAULT_DETECTION_TIMEOUT);
                    for (r, &m) in ready_at.iter_mut().zip(&members) {
                        if m {
                            *r += detection;
                        }
                    }
                }
            }
            let member_count = members.iter().filter(|&&m| m).count();

            let fns = self.env.reveal(t);
            assert_eq!(fns.len(), n, "environment must cover every worker");
            let down: Vec<bool> = (0..n)
                .map(|i| {
                    !members[i]
                        || (self.plan.crashed(i, t)
                            && sched.decide(DecisionPoint::Crash { worker: i, round: t }, true))
                })
                .collect();
            let alive_count = down.iter().filter(|&&c| !c).count();
            let local_costs: Vec<f64> =
                (0..n).map(|i| if down[i] { 0.0 } else { fns[i].eval(self.shares[i]) }).collect();
            let member_alpha = |alphas: &[f64]| {
                alphas
                    .iter()
                    .zip(&members)
                    .filter(|&(_, &m)| m)
                    .map(|(&a, _)| a)
                    .fold(f64::INFINITY, f64::min)
            };
            if alive_count == 0 {
                // Membership collapsed: freeze every share and continue.
                let alpha = member_alpha(&self.local_alphas);
                trace.push(frozen_round(t, &self.shares, local_costs, &ready_at, n, alpha));
                continue;
            }
            if alive_count == 1 {
                // A lone survivor has no peers to coordinate with: it is
                // trivially the straggler, absorbs the remainder of the
                // frozen shares (its own current share, exactly), and
                // continues — the master-worker single-responder
                // semantics, without a panic.
                let survivor = down.iter().position(|&c| !c).expect("one alive");
                let finish = ready_at[survivor] + local_costs[survivor];
                ready_at[survivor] = finish;
                let others: f64 = (0..n).filter(|&j| j != survivor).map(|j| self.shares[j]).sum();
                let s_share = (1.0 - others).max(0.0);
                self.shares[survivor] = s_share;
                self.local_alphas[survivor] =
                    tighten_alpha(self.local_alphas[survivor], member_count, s_share);
                let executed = Allocation::from_update(self.shares.clone())
                    .expect("frozen shares stay feasible");
                trace.push(ProtocolRound {
                    round: t,
                    allocation: executed,
                    local_costs: local_costs.clone(),
                    global_cost: local_costs[survivor],
                    straggler: survivor,
                    messages: 0,
                    bytes: 0,
                    retries: 0,
                    acks: 0,
                    duplicates: 0,
                    compute_finished: finish,
                    control_finished: finish,
                    active: down.iter().map(|&c| !c).collect(),
                    alpha: member_alpha(&self.local_alphas),
                });
                continue;
            }

            // Expected load: every live worker broadcasts its cost to the
            // other n−1 peers, plus the compute-done markers themselves.
            let mut queue: EventQueue<Ev> =
                EventQueue::with_capacity(alive_count * (n - 1) + alive_count);
            for i in 0..n {
                if !down[i] {
                    queue.schedule(ready_at[i] + local_costs[i], Ev::ComputeDone { worker: i });
                }
            }

            let mut states: Vec<WorkerRoundState> =
                (0..n).map(|_| WorkerRoundState::new(n)).collect();
            // Seed each worker's own observation (lines 2-3).
            for i in 0..n {
                if down[i] {
                    continue;
                }
                states[i].costs[i] = Some(local_costs[i]);
                states[i].alphas[i] = Some(self.local_alphas[i]);
                states[i].broadcasts_received = 1;
            }
            let mut next_shares = self.shares.clone();
            let mut next_alphas = self.local_alphas.clone();
            let mut stats = LinkStats::default();
            let mut compute_finished = 0.0f64;
            let mut straggler_done_at = 0.0f64;
            let mut last_resolution_at = 0.0f64;
            let mut resolved_count = 0usize;
            let mut global_cost = f64::MIN;
            let mut straggler = 0usize;
            for (j, &c) in local_costs.iter().enumerate() {
                if !down[j] && c > global_cost {
                    global_cost = c;
                    straggler = j;
                }
            }

            let send = |queue: &mut EventQueue<Ev>,
                        latency: &mut L,
                        plan: &FaultPlan,
                        stats: &mut LinkStats,
                        sched: &mut dyn Scheduler,
                        msg: Message| {
                let delay = latency.delay(&msg);
                assert!(delay >= 0.0, "latency model produced a negative delay");
                let outcome = plan.transmit_with(&msg, delay, sched);
                stats.record(&msg, &outcome);
                queue.schedule(queue.now() + outcome.delivery_delay, Ev::Deliver(msg));
            };

            // A worker resolves as soon as it holds every broadcast (and,
            // for the straggler, every decision).
            while resolved_count < alive_count {
                if sched.wants_state() && queue.len() > 1 {
                    let mut fp = StateFp::new(0xD01B_0003);
                    fp.push_usize(t);
                    fp.push_usize(rounds);
                    fp.push_f64_slice(&self.shares);
                    fp.push_f64_slice(&self.local_alphas);
                    fp.push_f64_slice(&next_shares);
                    fp.push_f64_slice(&next_alphas);
                    fp.push_bool_slice(&members);
                    fp.push_bool_slice(&down);
                    fp.push_f64(global_cost);
                    fp.push_usize(straggler);
                    fp.push_usize(resolved_count);
                    for st in &states {
                        for c in &st.costs {
                            fp.push_opt_f64(*c);
                        }
                        for a in &st.alphas {
                            fp.push_opt_f64(*a);
                        }
                        for d in &st.decisions {
                            fp.push_opt_f64(*d);
                        }
                        fp.push_usize(st.broadcasts_received);
                        fp.push_usize(st.decisions_received);
                        fp.push_u64(u64::from(st.resolved));
                    }
                    let mut pending = MultisetFp::new();
                    queue.for_each_pending(|ev| {
                        pending.insert(match ev {
                            Ev::ComputeDone { worker } => 1 + *worker as u64,
                            Ev::Deliver(msg) => msg.fingerprint(),
                        });
                    });
                    fp.push_u64(pending.finish());
                    sched.observe_state(fp.finish());
                }
                let Some(scheduled) = pop_with(&mut queue, sched) else {
                    break;
                };
                let now = scheduled.time;
                match scheduled.event {
                    Ev::ComputeDone { worker } => {
                        compute_finished = compute_finished.max(now);
                        // Line 4: broadcast (l_i, ᾱ_i) to all live peers.
                        for (j, &peer_down) in down.iter().enumerate() {
                            if j == worker || peer_down {
                                continue;
                            }
                            send(
                                &mut queue,
                                &mut self.latency,
                                &self.plan,
                                &mut stats,
                                &mut *sched,
                                Message {
                                    from: NodeId::Worker(worker),
                                    to: NodeId::Worker(j),
                                    round: t,
                                    payload: Payload::CostAndStepSize {
                                        cost: local_costs[worker],
                                        alpha: self.local_alphas[worker],
                                    },
                                },
                            );
                        }
                    }
                    Ev::Deliver(msg) => {
                        let NodeId::Worker(me) = msg.to else {
                            unreachable!("no master in the fully-distributed protocol")
                        };
                        let NodeId::Worker(sender) = msg.from else {
                            unreachable!("no master in the fully-distributed protocol")
                        };
                        match msg.payload {
                            Payload::CostAndStepSize { cost, alpha } => {
                                let state = &mut states[me];
                                assert!(state.costs[sender].is_none(), "duplicate broadcast");
                                state.costs[sender] = Some(cost);
                                state.alphas[sender] = Some(alpha);
                                state.broadcasts_received += 1;
                            }
                            Payload::Decision { share } => {
                                let state = &mut states[me];
                                assert!(state.decisions[sender].is_none(), "duplicate decision");
                                state.decisions[sender] = Some(share);
                                state.decisions_received += 1;
                            }
                            _ => unreachable!("master-worker payload in Algorithm 2"),
                        }
                        // Try to resolve worker `me` (lines 5-13).
                        let state = &mut states[me];
                        if state.resolved || state.broadcasts_received < alive_count {
                            continue;
                        }
                        // Lines 5-7: every worker derives the same view
                        // (crashed peers contribute no step size).
                        let alpha_t =
                            state.alphas.iter().flatten().fold(f64::INFINITY, |acc, &a| acc.min(a));
                        if me != straggler {
                            // Lines 8-10.
                            let updated =
                                assist_step(&fns[me], self.shares[me], global_cost, alpha_t);
                            next_shares[me] = updated;
                            // Adopt the consensus step size so the round's
                            // minimum is replicated at every node — without
                            // this a crash of the historical-minimum holder
                            // would silently loosen later rounds' α, unlike
                            // the master-worker protocol whose master
                            // remembers every tightening.
                            next_alphas[me] = alpha_t;
                            send(
                                &mut queue,
                                &mut self.latency,
                                &self.plan,
                                &mut stats,
                                &mut *sched,
                                Message {
                                    from: NodeId::Worker(me),
                                    to: NodeId::Worker(straggler),
                                    round: t,
                                    payload: Payload::Decision { share: updated },
                                },
                            );
                            state.resolved = true;
                            resolved_count += 1;
                            ready_at[me] = now;
                            last_resolution_at = last_resolution_at.max(now);
                        } else if state.decisions_received == alive_count - 1 {
                            // Lines 11-13; every live peer's decision is in
                            // `next_shares` (written before it was sent),
                            // crashed workers' shares sit there frozen.
                            let s_share = straggler_pin_with_guard(
                                &self.shares,
                                &mut next_shares,
                                me,
                                !sched.sabotage_overshoot_guard(),
                            );
                            next_alphas[me] = tighten_alpha(alpha_t, member_count, s_share);
                            state.resolved = true;
                            resolved_count += 1;
                            ready_at[me] = now;
                            straggler_done_at = now;
                            last_resolution_at = last_resolution_at.max(now);
                        }
                    }
                }
                // The straggler may have been waiting only on decisions
                // that arrived before its last broadcast; re-check it.
                let s_state = &mut states[straggler];
                if !s_state.resolved
                    && s_state.broadcasts_received == alive_count
                    && s_state.decisions_received == alive_count - 1
                {
                    let s_share = straggler_pin_with_guard(
                        &self.shares,
                        &mut next_shares,
                        straggler,
                        !sched.sabotage_overshoot_guard(),
                    );
                    let alpha_t =
                        s_state.alphas.iter().flatten().fold(f64::INFINITY, |acc, &a| acc.min(a));
                    next_alphas[straggler] = tighten_alpha(alpha_t, member_count, s_share);
                    s_state.resolved = true;
                    resolved_count += 1;
                    ready_at[straggler] = queue.now();
                    straggler_done_at = queue.now();
                    last_resolution_at = last_resolution_at.max(queue.now());
                }
            }
            assert_eq!(resolved_count, alive_count, "protocol deadlocked in round {t}");

            let executed = Allocation::from_update(self.shares.clone())
                .expect("protocol preserves feasibility");
            trace.push(ProtocolRound {
                round: t,
                allocation: executed,
                local_costs,
                global_cost,
                straggler,
                messages: stats.messages,
                bytes: stats.bytes,
                retries: stats.retries,
                acks: stats.acks,
                duplicates: stats.duplicates,
                compute_finished,
                control_finished: last_resolution_at.max(straggler_done_at),
                active: down.iter().map(|&c| !c).collect(),
                alpha: member_alpha(&next_alphas),
            });
            self.shares = next_shares;
            self.local_alphas = next_alphas;
        }
        ProtocolTrace { architecture: "fully-distributed", rounds: trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{FixedLatency, JitteredLatency};
    use crate::master_worker::MasterWorkerSim;
    use dolbie_core::environment::{RotatingStragglerEnvironment, StaticLinearEnvironment};
    use dolbie_core::{run_episode, Dolbie, EpisodeOptions};

    #[test]
    fn message_count_is_quadratic() {
        for n in [2usize, 3, 5, 8] {
            let env = StaticLinearEnvironment::from_slopes((1..=n).map(|i| i as f64).collect());
            let mut sim = FullyDistributedSim::new(env, DolbieConfig::new(), FixedLatency::lan());
            let trace = sim.run(3);
            let expected = n * (n - 1) + (n - 1);
            for r in &trace.rounds {
                assert_eq!(r.messages, expected, "N = {n}");
            }
        }
    }

    #[test]
    fn trajectory_matches_sequential_and_master_worker() {
        let env = RotatingStragglerEnvironment::new(5, 4, 7.0, 1.0);
        let fd =
            FullyDistributedSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(40);
        let mw =
            MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(40);
        let mut sequential = Dolbie::new(5);
        let mut driver = env;
        let reference = run_episode(&mut sequential, &mut driver, EpisodeOptions::new(40));

        for ((f, m), r) in fd.rounds.iter().zip(&mw.rounds).zip(&reference.records) {
            assert!(
                f.allocation.l2_distance(&m.allocation) < 1e-9,
                "round {}: FD {} vs MW {}",
                f.round,
                f.allocation,
                m.allocation
            );
            assert!(f.allocation.l2_distance(&r.allocation) < 1e-9);
            assert_eq!(f.straggler, r.straggler);
        }
    }

    #[test]
    fn consensus_step_size_equals_master_worker_step_size() {
        // min_j ᾱ_{j,t} must track the master's α_t (see §IV-B.2); verify
        // indirectly through identical long-horizon trajectories on an
        // adversarial instance where α tightens repeatedly.
        let env = RotatingStragglerEnvironment::new(3, 1, 10.0, 0.5);
        let fd =
            FullyDistributedSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(60);
        let mw = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan()).run(60);
        let last_fd = fd.rounds.last().unwrap();
        let last_mw = mw.rounds.last().unwrap();
        assert!(last_fd.allocation.l2_distance(&last_mw.allocation) < 1e-9);
    }

    #[test]
    fn decisions_are_delay_invariant() {
        let env = StaticLinearEnvironment::from_slopes(vec![4.0, 1.0, 2.0, 3.0]);
        let a = FullyDistributedSim::new(env.clone(), DolbieConfig::new(), FixedLatency::instant())
            .run(15);
        let b = FullyDistributedSim::new(
            env,
            DolbieConfig::new(),
            JitteredLatency::new(FixedLatency::new(0.3, 1e4), 0.5, 99),
        )
        .run(15);
        for (x, y) in a.rounds.iter().zip(&b.rounds) {
            assert!(x.allocation.l2_distance(&y.allocation) < 1e-12);
        }
    }

    #[test]
    fn decisions_survive_lossy_links_unchanged() {
        let env = StaticLinearEnvironment::from_slopes(vec![4.0, 1.0, 2.0, 3.0]);
        let clean =
            FullyDistributedSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(15);
        let lossy = FullyDistributedSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(
                FaultPlan::seeded(7).with_drop_probability(0.25).with_duplicate_probability(0.05),
            )
            .run(15);
        for (a, b) in clean.rounds.iter().zip(&lossy.rounds) {
            assert!(a.allocation.l2_distance(&b.allocation) == 0.0, "round {}", a.round);
            assert_eq!(a.messages, b.messages, "logical counts agree");
        }
        assert!(lossy.total_retries() > 0);
        assert!(lossy.makespan() > clean.makespan());
    }

    #[test]
    fn byte_volume_exceeds_master_worker() {
        let env = StaticLinearEnvironment::from_slopes(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let fd =
            FullyDistributedSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(5);
        let mw = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan()).run(5);
        assert!(fd.total_bytes() > mw.total_bytes());
        assert!(fd.total_messages() > mw.total_messages());
    }

    #[test]
    fn crash_window_freezes_share_and_survivors_rebalance() {
        let env = StaticLinearEnvironment::from_slopes(vec![4.0, 1.0, 2.0, 1.5]);
        let trace = FullyDistributedSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_crash(Crash { worker: 2, from_round: 6, until_round: 14 })
            .run(25);
        let frozen = trace.rounds[6].allocation.share(2);
        for t in 6..14 {
            let r = &trace.rounds[t];
            assert!(!r.active[2], "round {t}");
            assert!((r.allocation.share(2) - frozen).abs() < 1e-12, "round {t}");
            let sum: f64 = r.allocation.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            // Fewer broadcasts while one worker is out: 3*2 + 2 messages.
            assert_eq!(r.messages, 3 * 2 + 2, "round {t}: {} messages", r.messages);
        }
        assert!(trace.rounds[24].active[2], "worker rejoined");
        // Crash-free rounds match master-worker semantics again.
        let sum: f64 = trace.rounds[24].allocation.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn crash_equivalence_with_master_worker() {
        // The two architectures implement the same recovery policy, so
        // their trajectories agree even through the crash window.
        let env = StaticLinearEnvironment::from_slopes(vec![5.0, 1.0, 2.0, 3.0, 1.2]);
        let crash = Crash { worker: 1, from_round: 4, until_round: 10 };
        let fd = FullyDistributedSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
            .with_crash(crash)
            .run(20);
        let mw = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_crash(crash)
            .run(20);
        for (f, m) in fd.rounds.iter().zip(&mw.rounds) {
            assert!(
                f.allocation.l2_distance(&m.allocation) < 1e-9,
                "round {}: FD {} vs MW {}",
                f.round,
                f.allocation,
                m.allocation
            );
        }
    }

    #[test]
    fn lone_survivor_round_freezes_and_continues() {
        // Two of three workers crash: the pre-fix simulator panicked on
        // `alive_count >= 2`; now the survivor carries its share through
        // the round and the cluster re-balances after recovery — the same
        // semantics as the master-worker protocol (asserted below).
        let env = StaticLinearEnvironment::from_slopes(vec![3.0, 1.0, 2.0]);
        let crash_a = Crash { worker: 0, from_round: 4, until_round: 7 };
        let crash_b = Crash { worker: 2, from_round: 4, until_round: 7 };
        let fd = FullyDistributedSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
            .with_crash(crash_a)
            .with_crash(crash_b)
            .run(12);
        let mw = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_crash(crash_a)
            .with_crash(crash_b)
            .run(12);
        for t in 4..7 {
            let r = &fd.rounds[t];
            assert_eq!(r.active, vec![false, true, false], "round {t}: only worker 1 participates");
            assert_eq!(r.straggler, 1, "a lone survivor is trivially the straggler");
            assert_eq!(r.messages, 0, "no peers, no protocol traffic");
            let sum: f64 = r.allocation.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(
                (r.allocation.share(1) - fd.rounds[4].allocation.share(1)).abs() < 1e-12,
                "round {t}: the survivor's share is stable while alone"
            );
        }
        for (f, m) in fd.rounds.iter().zip(&mw.rounds) {
            assert!(
                f.allocation.l2_distance(&m.allocation) < 1e-9,
                "round {}: FD and MW degrade identically",
                f.round
            );
        }
        assert!(fd.rounds[11].active.iter().all(|&a| a), "everyone rejoined");
    }

    #[test]
    #[should_panic(expected = "at least two workers")]
    fn single_worker_is_rejected() {
        let env = StaticLinearEnvironment::from_slopes(vec![1.0]);
        let _ = FullyDistributedSim::new(env, DolbieConfig::new(), FixedLatency::lan());
    }
}
