//! Protocol messages for the two DOLBIE architectures.
//!
//! Section IV-C of the paper counts the exact scalars exchanged per round;
//! the payloads below carry those scalars and nothing more, so the
//! byte-accounting experiments (`comms` in DESIGN.md) measure the protocols
//! the paper actually describes.

use std::fmt;

/// A participant in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// The master (Algorithm 1 only) — "either an external controller or an
    /// elected worker".
    Master,
    /// Worker `i`.
    Worker(usize),
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Master => write!(f, "master"),
            NodeId::Worker(i) => write!(f, "worker{i}"),
        }
    }
}

/// Message payloads; each variant lists the algorithm line it implements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Payload {
    /// Worker → master: the local cost `l_{i,t}` (Algorithm 1, line 4).
    LocalCost {
        /// The reported local cost.
        cost: f64,
    },
    /// Worker ↔ worker broadcast: `l_{i,t}` and the local step size
    /// `ᾱ_{i,t}` (Algorithm 2, line 4).
    CostAndStepSize {
        /// The reported local cost.
        cost: f64,
        /// The sender's local step size.
        alpha: f64,
    },
    /// Master → worker: `l_t`, `α_t`, and the non-straggler indicator
    /// (Algorithm 1, line 12).
    Coordination {
        /// The global cost `l_t`.
        global_cost: f64,
        /// The coordinated step size `α_t`.
        alpha: f64,
        /// Whether the recipient is the straggler this round.
        is_straggler: bool,
    },
    /// Non-straggler → master (Algorithm 1, line 7) or non-straggler →
    /// straggler (Algorithm 2, line 9): the updated decision `x_{i,t+1}`.
    Decision {
        /// The sender's updated share.
        share: f64,
    },
    /// Master → straggler: its computed next share (Algorithm 1, line 15).
    StragglerAssignment {
        /// The straggler's next share.
        share: f64,
    },
    /// Ring architecture, pass 1: the aggregation token circulating the
    /// ring, folding in each worker's local cost and step size.
    RingAggregate {
        /// Running maximum of the local costs seen so far.
        max_cost: f64,
        /// Index of the worker attaining the running maximum.
        straggler: usize,
        /// Running minimum of the local step sizes.
        min_alpha: f64,
    },
    /// Ring architecture, pass 2: the update token carrying the agreed
    /// round scalars plus the running sum of updated non-straggler shares.
    RingUpdate {
        /// The global cost `l_t`.
        global_cost: f64,
        /// The straggler `s_t`.
        straggler: usize,
        /// The consensus step size `α_t`.
        alpha: f64,
        /// Σ of the updated shares of the non-stragglers visited so far.
        sum_shares: f64,
    },
    /// Shard tier: a shard-master's straggler candidate, reported to the
    /// root — its slice's worst local cost, that worker's *global* index,
    /// and its current share.
    ShardAggregate {
        /// The shard-local maximum cost.
        max_cost: f64,
        /// Global index of the worker attaining the shard maximum.
        straggler: usize,
        /// That worker's current share.
        share: f64,
    },
    /// Shard tier: the root's round broadcast to a shard-master — the
    /// agreed global scalars every shard replays to its workers.
    ShardCoordination {
        /// The global cost `l_t`.
        global_cost: f64,
        /// The coordinated step size `α_t`.
        alpha: f64,
        /// The elected global straggler `s_t`.
        straggler: usize,
    },
    /// Shard tier: the running-sum token chained through the shard-masters
    /// in ascending shard order (the simnet analogue of the wire cursor),
    /// folding each slice's contribution elementwise so the fold order is
    /// exactly the flat ascending order.
    ShardPartial {
        /// The running sum folded so far.
        sum: f64,
    },
    /// Shard tier: the feasibility-guard correction factor, broadcast to
    /// the shard-masters when the combined gain overshoots the straggler's
    /// share (see `coordinator::guarded_straggler_pin`).
    ShardRescale {
        /// The multiplicative gain correction.
        scale: f64,
    },
}

impl Payload {
    /// Wire size in bytes: 8 bytes per `f64` scalar, 1 byte per flag, plus
    /// a fixed 16-byte header (sender, recipient, round tag) — a deliberate
    ///, simple model so the §IV-C `O(N)` vs `O(N²)` comparison measures
    /// message *counts and scalars*, not serialization cleverness.
    pub fn size_bytes(&self) -> usize {
        const HEADER: usize = 16;
        HEADER
            + match self {
                Payload::LocalCost { .. } => 8,
                Payload::CostAndStepSize { .. } => 16,
                Payload::Coordination { .. } => 17,
                Payload::Decision { .. } => 8,
                Payload::StragglerAssignment { .. } => 8,
                Payload::RingAggregate { .. } => 20,
                Payload::RingUpdate { .. } => 28,
                Payload::ShardAggregate { .. } => 20,
                Payload::ShardCoordination { .. } => 20,
                Payload::ShardPartial { .. } => 8,
                Payload::ShardRescale { .. } => 8,
            }
    }
}

/// A message in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Message {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// The round this message belongs to.
    pub round: usize,
    /// Payload.
    pub payload: Payload,
}

impl Message {
    /// Wire size of the message in bytes.
    pub fn size_bytes(&self) -> usize {
        self.payload.size_bytes()
    }

    /// Content fingerprint for the model checker's in-flight multiset
    /// hash: endpoints, round, payload variant, and every payload scalar
    /// by bit pattern. Deliberately excludes anything temporal — two
    /// copies of the same message at different simulated times are the
    /// same element of the in-flight multiset.
    pub fn fingerprint(&self) -> u64 {
        use dolbie_core::fingerprint::StateFp;
        let node_code = |n: NodeId| match n {
            NodeId::Master => 0u64,
            NodeId::Worker(i) => i as u64 + 1,
        };
        let mut fp = StateFp::new(0xD01B_3E55);
        fp.push_u64(node_code(self.from));
        fp.push_u64(node_code(self.to));
        fp.push_usize(self.round);
        match self.payload {
            Payload::LocalCost { cost } => {
                fp.push_u64(1);
                fp.push_f64(cost);
            }
            Payload::CostAndStepSize { cost, alpha } => {
                fp.push_u64(2);
                fp.push_f64(cost);
                fp.push_f64(alpha);
            }
            Payload::Coordination { global_cost, alpha, is_straggler } => {
                fp.push_u64(3);
                fp.push_f64(global_cost);
                fp.push_f64(alpha);
                fp.push_u64(u64::from(is_straggler));
            }
            Payload::Decision { share } => {
                fp.push_u64(4);
                fp.push_f64(share);
            }
            Payload::StragglerAssignment { share } => {
                fp.push_u64(5);
                fp.push_f64(share);
            }
            Payload::RingAggregate { max_cost, straggler, min_alpha } => {
                fp.push_u64(6);
                fp.push_f64(max_cost);
                fp.push_usize(straggler);
                fp.push_f64(min_alpha);
            }
            Payload::RingUpdate { global_cost, straggler, alpha, sum_shares } => {
                fp.push_u64(7);
                fp.push_f64(global_cost);
                fp.push_usize(straggler);
                fp.push_f64(alpha);
                fp.push_f64(sum_shares);
            }
            Payload::ShardAggregate { max_cost, straggler, share } => {
                fp.push_u64(8);
                fp.push_f64(max_cost);
                fp.push_usize(straggler);
                fp.push_f64(share);
            }
            Payload::ShardCoordination { global_cost, alpha, straggler } => {
                fp.push_u64(9);
                fp.push_f64(global_cost);
                fp.push_f64(alpha);
                fp.push_usize(straggler);
            }
            Payload::ShardPartial { sum } => {
                fp.push_u64(10);
                fp.push_f64(sum);
            }
            Payload::ShardRescale { scale } => {
                fp.push_u64(11);
                fp.push_f64(scale);
            }
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes_are_scalars_plus_header() {
        assert_eq!(Payload::LocalCost { cost: 1.0 }.size_bytes(), 24);
        assert_eq!(Payload::CostAndStepSize { cost: 1.0, alpha: 0.5 }.size_bytes(), 32);
        assert_eq!(
            Payload::Coordination { global_cost: 1.0, alpha: 0.5, is_straggler: false }
                .size_bytes(),
            33
        );
        assert_eq!(Payload::Decision { share: 0.1 }.size_bytes(), 24);
        assert_eq!(Payload::StragglerAssignment { share: 0.1 }.size_bytes(), 24);
        assert_eq!(
            Payload::RingAggregate { max_cost: 1.0, straggler: 0, min_alpha: 0.5 }.size_bytes(),
            36
        );
        assert_eq!(
            Payload::RingUpdate { global_cost: 1.0, straggler: 0, alpha: 0.5, sum_shares: 0.2 }
                .size_bytes(),
            44
        );
        assert_eq!(
            Payload::ShardAggregate { max_cost: 1.0, straggler: 3, share: 0.1 }.size_bytes(),
            36
        );
        assert_eq!(
            Payload::ShardCoordination { global_cost: 1.0, alpha: 0.5, straggler: 3 }.size_bytes(),
            36
        );
        assert_eq!(Payload::ShardPartial { sum: 0.5 }.size_bytes(), 24);
        assert_eq!(Payload::ShardRescale { scale: 0.5 }.size_bytes(), 24);
    }

    #[test]
    fn node_ids_order_and_display() {
        assert!(NodeId::Master < NodeId::Worker(0));
        assert!(NodeId::Worker(1) < NodeId::Worker(2));
        assert_eq!(NodeId::Master.to_string(), "master");
        assert_eq!(NodeId::Worker(7).to_string(), "worker7");
    }

    #[test]
    fn message_delegates_size() {
        let m = Message {
            from: NodeId::Worker(0),
            to: NodeId::Master,
            round: 3,
            payload: Payload::LocalCost { cost: 2.0 },
        };
        assert_eq!(m.size_bytes(), 24);
    }
}
