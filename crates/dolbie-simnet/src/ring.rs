//! A token-ring architecture for DOLBIE (extension).
//!
//! The paper gives two architectures: master-worker (`3N` messages,
//! constant protocol depth, single point of failure) and fully-distributed
//! (`~N²` messages, constant depth, no coordinator). This module adds a
//! third point in the design space — a leaderless **token ring** with
//! `O(N)` messages but `O(N)` protocol depth:
//!
//! - **pass 1 (aggregate)**: a token circulates `0 → 1 → … → N−1 → 0`,
//!   folding in each worker's local cost and local step size; when it
//!   returns, worker 0 knows `l_t`, `s_t`, and `α_t = min_j ᾱ_j` —
//!   exactly the quantities Algorithm 2 obtains by broadcast;
//! - **pass 2 (update)**: the token carries those scalars back around the
//!   ring; each non-straggler applies eq. (5) as the token passes and adds
//!   its new share to a running sum; back at worker 0, the straggler's
//!   remainder `1 − Σ` is known and delivered (eq. (6)); the straggler
//!   tightens its local step size per eq. (8).
//!
//! Because the ring accumulates shares in ascending worker order — the
//! same order the other implementations use — the trajectory is
//! *identical* to master-worker, fully-distributed, and the sequential
//! engine (tested). Total: `2N + 1` messages per round — `2N` when the
//! ring head (worker 0) is itself the straggler, since the final
//! assignment hop is not needed — `Θ(N)` bytes, but the decision phase
//! takes `2N` sequential hops instead of a constant number.
//!
//! Faults (extension): the simulator accepts the same
//! [`FaultPlan`] as the other architectures.
//! Crashed workers are spliced out of the ring — the token circulates
//! among the `A` survivors in ascending worker order, the lowest-indexed
//! survivor acts as the ring head, and the crashed workers' shares stay
//! frozen while the survivors rebalance the remainder (`2A + 1` messages,
//! `2A` when the head is the straggler). Lossy links retransmit with
//! ack/backoff, and membership collapse degrades gracefully exactly like
//! the other two architectures: a lone survivor keeps its share, an empty
//! membership freezes every share, and the run continues. The plan's cost
//! timeout is a coordinator-side concept and is ignored here.

use crate::coordinator::{assist_step, frozen_round, straggler_pin_with_guard, tighten_alpha};
use crate::event::EventQueue;
use crate::faults::{Crash, FaultPlan, LinkStats};
use crate::latency::LatencyModel;
use crate::membership::{epoch_transition, MembershipSchedule, DEFAULT_DETECTION_TIMEOUT};
use crate::message::{Message, NodeId, Payload};
use crate::sched::{pop_with, DecisionPoint, FifoScheduler, Scheduler};
use crate::trace::{ProtocolRound, ProtocolTrace};
use dolbie_core::fingerprint::{MultisetFp, StateFp};
use dolbie_core::{Allocation, DolbieConfig, Environment};

#[derive(Debug, Clone, Copy)]
enum Ev {
    ComputeDone { worker: usize },
    Deliver(Message),
}

/// The token-ring protocol simulator.
///
/// # Examples
///
/// ```
/// use dolbie_simnet::{FixedLatency, RingSim};
/// use dolbie_core::environment::StaticLinearEnvironment;
/// use dolbie_core::DolbieConfig;
///
/// let env = StaticLinearEnvironment::from_slopes(vec![1.0, 3.0, 2.0]);
/// let mut sim = RingSim::new(env, DolbieConfig::new(), FixedLatency::lan());
/// let trace = sim.run(10);
/// // 2N + 1 messages per round for N = 3 (one fewer when worker 0
/// // happens to be the straggler, as no assignment hop is needed).
/// assert_eq!(trace.rounds[0].messages, 7);
/// ```
#[derive(Debug)]
pub struct RingSim<E, L> {
    env: E,
    latency: L,
    shares: Vec<f64>,
    local_alphas: Vec<f64>,
    plan: FaultPlan,
    membership: MembershipSchedule,
}

impl<E: Environment, L: LatencyModel> RingSim<E, L> {
    /// Creates the simulator with the uniform initial partition.
    ///
    /// # Panics
    ///
    /// Panics if the environment has fewer than two workers.
    pub fn new(env: E, config: DolbieConfig, latency: L) -> Self {
        let n = env.num_workers();
        assert!(n >= 2, "the ring protocol needs at least two workers");
        let initial = Allocation::uniform(n);
        let alpha = config.resolve_initial_alpha(&initial);
        Self {
            env,
            latency,
            shares: initial.into_inner(),
            local_alphas: vec![alpha; n],
            plan: FaultPlan::none(),
            membership: MembershipSchedule::none(),
        }
    }

    /// Installs a membership schedule: at epoch boundaries the ring is
    /// rebuilt around the new member set (lowest-indexed member becomes the
    /// head), departing shares are redistributed proportionally, joiners
    /// enter at share zero, and every member synchronizes its local step
    /// size to `min` over the outgoing members' values capped against the
    /// new member count. Replaces any schedule set earlier.
    ///
    /// # Panics
    ///
    /// Panics if the schedule names a worker out of range or would empty
    /// the active set.
    pub fn with_membership(mut self, schedule: MembershipSchedule) -> Self {
        schedule.validate(self.shares.len());
        self.membership = schedule;
        self
    }

    /// Installs a complete fault plan (crashes, lossy links). The plan's
    /// cost timeout is ignored — there is no coordinator to enforce it.
    /// Replaces any plan set earlier.
    ///
    /// # Panics
    ///
    /// Panics if a crash window names a worker index out of range.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        if let Some(max) = plan.max_crash_worker() {
            assert!(max < self.shares.len(), "crash worker out of range");
        }
        self.plan = plan;
        self
    }

    /// Injects a crash window (extension): the worker is spliced out of
    /// the ring during `[from_round, until_round)`, its share frozen, and
    /// the token circulates among the survivors.
    ///
    /// # Panics
    ///
    /// Panics if the worker index is out of range.
    pub fn with_crash(mut self, crash: Crash) -> Self {
        assert!(crash.worker < self.shares.len(), "crash worker out of range");
        self.plan.crashes.push(crash);
        self
    }

    /// Runs the protocol for `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if the environment produces malformed cost functions.
    pub fn run(&mut self, rounds: usize) -> ProtocolTrace {
        self.run_with_scheduler(rounds, &mut FifoScheduler)
    }

    /// [`run`](Self::run) under controlled nondeterminism: every event
    /// dequeue, wire-fault coin, crash window, and membership boundary is
    /// routed through `sched` (see [`crate::sched`]). With
    /// [`FifoScheduler`] this is bitwise identical to [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if the environment produces malformed cost functions, or on
    /// the deadlock check if a scheduler drives a round that cannot
    /// complete (unreachable — the `dolbie-mc` claim).
    pub fn run_with_scheduler(
        &mut self,
        rounds: usize,
        sched: &mut dyn Scheduler,
    ) -> ProtocolTrace {
        let n = self.shares.len();
        let mut trace = Vec::with_capacity(rounds);
        let mut ready_at = vec![0.0f64; n];
        // Active membership view (epoch state, distinct from crash windows).
        let mut members = vec![true; n];

        for t in 0..rounds {
            // Epoch boundary: rebuild the ring around the new member set
            // and run the shared state transition.
            let previous_members = members.clone();
            let boundary = self.membership.apply_round_sched(t, &mut members, sched);
            if boundary.changed {
                epoch_transition(
                    &mut self.shares,
                    &mut self.local_alphas,
                    &previous_members,
                    &members,
                );
                if boundary.crash_detected {
                    let detection = self.plan.cost_timeout.unwrap_or(DEFAULT_DETECTION_TIMEOUT);
                    for (r, &m) in ready_at.iter_mut().zip(&members) {
                        if m {
                            *r += detection;
                        }
                    }
                }
            }
            let member_count = members.iter().filter(|&&m| m).count();

            let fns = self.env.reveal(t);
            assert_eq!(fns.len(), n, "environment must cover every worker");
            let down: Vec<bool> = (0..n)
                .map(|i| {
                    !members[i]
                        || (self.plan.crashed(i, t)
                            && sched.decide(DecisionPoint::Crash { worker: i, round: t }, true))
                })
                .collect();
            let alive: Vec<usize> = (0..n).filter(|&i| !down[i]).collect();
            let local_costs: Vec<f64> =
                (0..n).map(|i| if down[i] { 0.0 } else { fns[i].eval(self.shares[i]) }).collect();
            let member_alpha = |alphas: &[f64]| {
                alphas
                    .iter()
                    .zip(&members)
                    .filter(|&(_, &m)| m)
                    .map(|(&a, _)| a)
                    .fold(f64::INFINITY, f64::min)
            };
            if alive.is_empty() {
                // Membership collapsed: freeze every share and continue.
                let alpha = member_alpha(&self.local_alphas);
                trace.push(frozen_round(t, &self.shares, local_costs, &ready_at, n, alpha));
                continue;
            }
            if alive.len() == 1 {
                // A ring of one has no token to pass: the survivor is
                // trivially the straggler, keeps the remainder of the
                // frozen shares, and continues (master-worker semantics).
                let survivor = alive[0];
                let finish = ready_at[survivor] + local_costs[survivor];
                ready_at[survivor] = finish;
                let others: f64 = (0..n).filter(|&j| j != survivor).map(|j| self.shares[j]).sum();
                let s_share = (1.0 - others).max(0.0);
                self.shares[survivor] = s_share;
                self.local_alphas[survivor] =
                    tighten_alpha(self.local_alphas[survivor], member_count, s_share);
                let executed = Allocation::from_update(self.shares.clone())
                    .expect("frozen shares stay feasible");
                trace.push(ProtocolRound {
                    round: t,
                    allocation: executed,
                    local_costs: local_costs.clone(),
                    global_cost: local_costs[survivor],
                    straggler: survivor,
                    messages: 0,
                    bytes: 0,
                    retries: 0,
                    acks: 0,
                    duplicates: 0,
                    compute_finished: finish,
                    control_finished: finish,
                    active: down.iter().map(|&c| !c).collect(),
                    alpha: member_alpha(&self.local_alphas),
                });
                continue;
            }

            // The ring of survivors, in ascending worker order; the
            // lowest-indexed survivor is the head (originates the token
            // and computes the straggler remainder).
            let head = alive[0];
            let mut succ = vec![usize::MAX; n];
            for (k, &w) in alive.iter().enumerate() {
                succ[w] = alive[(k + 1) % alive.len()];
            }

            // Two token passes around the ring of survivors plus each
            // survivor's compute-done marker.
            let mut queue: EventQueue<Ev> = EventQueue::with_capacity(3 * alive.len() + 1);
            for &i in &alive {
                queue.schedule(ready_at[i] + local_costs[i], Ev::ComputeDone { worker: i });
            }

            let mut computed = vec![false; n];
            // Pass-1 token state: held by `token_at` waiting for that
            // worker's compute, or in flight as a message.
            let mut pending_aggregate: Option<(usize, f64, usize, f64)> = None;
            let mut next_shares = self.shares.clone();
            let mut next_alphas = self.local_alphas.clone();
            let mut stats = LinkStats::default();
            let mut compute_finished = 0.0f64;
            let mut control_finished = 0.0f64;
            let mut round_done = false;
            let mut global_cost = f64::MIN;
            let mut straggler = 0usize;
            // The consensus α the straggler saw on its pass-2 hop, applied
            // when its assignment arrives.
            let mut straggler_alpha = f64::INFINITY;

            let send = |queue: &mut EventQueue<Ev>,
                        latency: &mut L,
                        plan: &FaultPlan,
                        stats: &mut LinkStats,
                        sched: &mut dyn Scheduler,
                        msg: Message| {
                let delay = latency.delay(&msg);
                assert!(delay >= 0.0, "latency model produced a negative delay");
                let outcome = plan.transmit_with(&msg, delay, sched);
                stats.record(&msg, &outcome);
                queue.schedule(queue.now() + outcome.delivery_delay, Ev::Deliver(msg));
            };

            while !round_done {
                if sched.wants_state() && queue.len() > 1 {
                    let mut fp = StateFp::new(0xD01B_0002);
                    fp.push_usize(t);
                    fp.push_usize(rounds);
                    fp.push_f64_slice(&self.shares);
                    fp.push_f64_slice(&self.local_alphas);
                    fp.push_f64_slice(&next_shares);
                    fp.push_f64_slice(&next_alphas);
                    fp.push_bool_slice(&members);
                    fp.push_bool_slice(&down);
                    fp.push_bool_slice(&computed);
                    match pending_aggregate {
                        None => fp.push_u64(0),
                        Some((held_by, max_cost, arg, min_alpha)) => {
                            fp.push_u64(1);
                            fp.push_usize(held_by);
                            fp.push_f64(max_cost);
                            fp.push_usize(arg);
                            fp.push_f64(min_alpha);
                        }
                    }
                    fp.push_f64(global_cost);
                    fp.push_usize(straggler);
                    fp.push_f64(straggler_alpha);
                    let mut pending = MultisetFp::new();
                    queue.for_each_pending(|ev| {
                        pending.insert(match ev {
                            Ev::ComputeDone { worker } => 1 + *worker as u64,
                            Ev::Deliver(msg) => msg.fingerprint(),
                        });
                    });
                    fp.push_u64(pending.finish());
                    sched.observe_state(fp.finish());
                }
                let Some(scheduled) = pop_with(&mut queue, sched) else {
                    break;
                };
                let now = scheduled.time;
                match scheduled.event {
                    Ev::ComputeDone { worker } => {
                        compute_finished = compute_finished.max(now);
                        computed[worker] = true;
                        if worker == head {
                            // The head originates the aggregation token.
                            send(
                                &mut queue,
                                &mut self.latency,
                                &self.plan,
                                &mut stats,
                                &mut *sched,
                                Message {
                                    from: NodeId::Worker(head),
                                    to: NodeId::Worker(succ[head]),
                                    round: t,
                                    payload: Payload::RingAggregate {
                                        max_cost: local_costs[head],
                                        straggler: head,
                                        min_alpha: self.local_alphas[head],
                                    },
                                },
                            );
                        } else if let Some((held_by, max_cost, arg, min_alpha)) =
                            pending_aggregate.take()
                        {
                            // The token was parked here waiting for this
                            // worker's compute; fold and forward now.
                            if held_by == worker {
                                let (max_cost, arg) = if local_costs[worker] > max_cost {
                                    (local_costs[worker], worker)
                                } else {
                                    (max_cost, arg)
                                };
                                let min_alpha = min_alpha.min(self.local_alphas[worker]);
                                send(
                                    &mut queue,
                                    &mut self.latency,
                                    &self.plan,
                                    &mut stats,
                                    &mut *sched,
                                    Message {
                                        from: NodeId::Worker(worker),
                                        to: NodeId::Worker(succ[worker]),
                                        round: t,
                                        payload: Payload::RingAggregate {
                                            max_cost,
                                            straggler: arg,
                                            min_alpha,
                                        },
                                    },
                                );
                            } else {
                                pending_aggregate = Some((held_by, max_cost, arg, min_alpha));
                            }
                        }
                    }
                    Ev::Deliver(msg) => {
                        let NodeId::Worker(me) = msg.to else {
                            unreachable!("the ring has no master")
                        };
                        match msg.payload {
                            Payload::RingAggregate { max_cost, straggler: arg, min_alpha } => {
                                if me == head {
                                    // Pass 1 complete: the head knows the
                                    // round scalars and starts pass 2 with
                                    // its own eq. (5) update folded in.
                                    global_cost = max_cost;
                                    straggler = arg;
                                    let alpha = min_alpha;
                                    // Adopt the consensus step size so the
                                    // round's minimum survives a later
                                    // crash of whichever worker produced
                                    // it (every node does this as the
                                    // update token passes).
                                    next_alphas[head] = alpha;
                                    let mut sum = 0.0;
                                    if straggler != head {
                                        let updated = assist_step(
                                            &fns[head],
                                            self.shares[head],
                                            global_cost,
                                            alpha,
                                        );
                                        next_shares[head] = updated;
                                        ready_at[head] = now;
                                        sum += updated;
                                    }
                                    send(
                                        &mut queue,
                                        &mut self.latency,
                                        &self.plan,
                                        &mut stats,
                                        &mut *sched,
                                        Message {
                                            from: NodeId::Worker(head),
                                            to: NodeId::Worker(succ[head]),
                                            round: t,
                                            payload: Payload::RingUpdate {
                                                global_cost,
                                                straggler,
                                                alpha,
                                                sum_shares: sum,
                                            },
                                        },
                                    );
                                } else if computed[me] {
                                    // Fold in and forward immediately.
                                    let (max_cost, arg) = if local_costs[me] > max_cost {
                                        (local_costs[me], me)
                                    } else {
                                        (max_cost, arg)
                                    };
                                    let min_alpha = min_alpha.min(self.local_alphas[me]);
                                    send(
                                        &mut queue,
                                        &mut self.latency,
                                        &self.plan,
                                        &mut stats,
                                        &mut *sched,
                                        Message {
                                            from: NodeId::Worker(me),
                                            to: NodeId::Worker(succ[me]),
                                            round: t,
                                            payload: Payload::RingAggregate {
                                                max_cost,
                                                straggler: arg,
                                                min_alpha,
                                            },
                                        },
                                    );
                                } else {
                                    // Park the token until this worker's
                                    // compute completes.
                                    pending_aggregate = Some((me, max_cost, arg, min_alpha));
                                }
                            }
                            Payload::RingUpdate {
                                global_cost: l_t,
                                straggler: s,
                                alpha,
                                sum_shares,
                            } => {
                                if me == head {
                                    // Pass 2 complete: pin the straggler
                                    // against the candidates the token
                                    // collected (every live worker's update
                                    // is in `next_shares` by now; crashed
                                    // workers' shares sit there frozen).
                                    let s_share = straggler_pin_with_guard(
                                        &self.shares,
                                        &mut next_shares,
                                        s,
                                        !sched.sabotage_overshoot_guard(),
                                    );
                                    if s == head {
                                        next_alphas[head] =
                                            tighten_alpha(alpha, member_count, s_share);
                                        ready_at[head] = now;
                                        control_finished = now;
                                        round_done = true;
                                    } else {
                                        send(
                                            &mut queue,
                                            &mut self.latency,
                                            &self.plan,
                                            &mut stats,
                                            &mut *sched,
                                            Message {
                                                from: NodeId::Worker(head),
                                                to: NodeId::Worker(s),
                                                round: t,
                                                payload: Payload::StragglerAssignment {
                                                    share: s_share,
                                                },
                                            },
                                        );
                                    }
                                } else {
                                    let mut sum = sum_shares;
                                    if me != s {
                                        let updated =
                                            assist_step(&fns[me], self.shares[me], l_t, alpha);
                                        next_shares[me] = updated;
                                        next_alphas[me] = alpha;
                                        ready_at[me] = now;
                                        sum += updated;
                                    } else {
                                        straggler_alpha = alpha;
                                    }
                                    send(
                                        &mut queue,
                                        &mut self.latency,
                                        &self.plan,
                                        &mut stats,
                                        &mut *sched,
                                        Message {
                                            from: NodeId::Worker(me),
                                            to: NodeId::Worker(succ[me]),
                                            round: t,
                                            payload: Payload::RingUpdate {
                                                global_cost: l_t,
                                                straggler: s,
                                                alpha,
                                                sum_shares: sum,
                                            },
                                        },
                                    );
                                }
                            }
                            Payload::StragglerAssignment { share } => {
                                assert!(
                                    straggler_alpha.is_finite(),
                                    "assignment must follow the update token"
                                );
                                next_shares[me] = share;
                                next_alphas[me] =
                                    tighten_alpha(straggler_alpha, member_count, share);
                                ready_at[me] = now;
                                control_finished = now;
                                round_done = true;
                            }
                            _ => unreachable!("non-ring payload in the ring protocol"),
                        }
                    }
                }
            }
            assert!(round_done, "ring protocol deadlocked in round {t}");

            let executed = Allocation::from_update(self.shares.clone())
                .expect("protocol preserves feasibility");
            trace.push(ProtocolRound {
                round: t,
                allocation: executed,
                local_costs,
                global_cost,
                straggler,
                messages: stats.messages,
                bytes: stats.bytes,
                retries: stats.retries,
                acks: stats.acks,
                duplicates: stats.duplicates,
                compute_finished,
                control_finished,
                active: down.iter().map(|&c| !c).collect(),
                alpha: member_alpha(&next_alphas),
            });
            self.shares = next_shares;
            self.local_alphas = next_alphas;
        }
        ProtocolTrace { architecture: "ring", rounds: trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::FixedLatency;
    use crate::master_worker::MasterWorkerSim;
    use dolbie_core::environment::{RotatingStragglerEnvironment, StaticLinearEnvironment};

    #[test]
    fn message_count_is_2n_plus_1() {
        for n in [2usize, 3, 5, 8] {
            let env = StaticLinearEnvironment::from_slopes((1..=n).map(|i| i as f64).collect());
            let mut sim = RingSim::new(env, DolbieConfig::new(), FixedLatency::lan());
            let trace = sim.run(4);
            for r in &trace.rounds {
                // 2N + 1, except when worker 0 is itself the straggler
                // (no final assignment hop): straggler 0 happens when it
                // has the max cost.
                let expected = if r.straggler == 0 { 2 * n } else { 2 * n + 1 };
                assert_eq!(r.messages, expected, "N = {n}, straggler {}", r.straggler);
            }
        }
    }

    #[test]
    fn message_count_is_exact_for_every_straggler_position() {
        // Engineer each straggler position in turn and assert the exact
        // count: 2N + 1 hops, minus the assignment hop when the head
        // (worker 0) is itself the straggler.
        let n = 5usize;
        for s in 0..n {
            let slopes: Vec<f64> =
                (0..n).map(|i| if i == s { 50.0 } else { 1.0 + 0.1 * i as f64 }).collect();
            let env = StaticLinearEnvironment::from_slopes(slopes);
            let trace = RingSim::new(env, DolbieConfig::new(), FixedLatency::lan()).run(1);
            let r = &trace.rounds[0];
            assert_eq!(r.straggler, s, "the engineered straggler position");
            let expected = if s == 0 { 2 * n } else { 2 * n + 1 };
            assert_eq!(r.messages, expected, "straggler at position {s}");
        }
    }

    #[test]
    fn trajectory_matches_master_worker() {
        let env = RotatingStragglerEnvironment::new(6, 4, 7.0, 1.0);
        let ring = RingSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(40);
        let mw = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan()).run(40);
        for (r, m) in ring.rounds.iter().zip(&mw.rounds) {
            assert!(
                r.allocation.l2_distance(&m.allocation) < 1e-9,
                "round {}: ring {} vs mw {}",
                r.round,
                r.allocation,
                m.allocation
            );
            assert!((r.global_cost - m.global_cost).abs() < 1e-9);
        }
    }

    #[test]
    fn control_depth_grows_with_ring_size() {
        // With constant per-hop latency and instant computes, the ring's
        // decision phase takes ~2N hops vs the master-worker's ~4.
        let hop = FixedLatency::new(0.01, f64::INFINITY);
        let sizes = [4usize, 16];
        let mut ring_overheads = Vec::new();
        let mut mw_overheads = Vec::new();
        for &n in &sizes {
            let env =
                StaticLinearEnvironment::from_slopes((1..=n).map(|i| 0.1 * i as f64).collect());
            let ring = RingSim::new(env.clone(), DolbieConfig::new(), hop).run(3);
            let mw = MasterWorkerSim::new(env, DolbieConfig::new(), hop).run(3);
            ring_overheads.push(ring.mean_control_overhead());
            mw_overheads.push(mw.mean_control_overhead());
        }
        // Ring overhead scales ~linearly with N; master-worker stays flat.
        assert!(
            ring_overheads[1] > ring_overheads[0] * 2.5,
            "ring overhead must grow with N: {ring_overheads:?}"
        );
        assert!(
            mw_overheads[1] < mw_overheads[0] * 2.0,
            "master-worker overhead must stay near-constant: {mw_overheads:?}"
        );
    }

    #[test]
    fn bytes_are_linear_in_n() {
        let n = 12;
        let env = StaticLinearEnvironment::from_slopes((1..=n).map(|i| i as f64).collect());
        let trace = RingSim::new(env, DolbieConfig::new(), FixedLatency::lan()).run(5);
        // 2N+1 messages of <= 44 bytes each.
        assert!(trace.rounds[0].bytes <= (2 * n + 1) * 44);
    }

    #[test]
    fn decisions_survive_lossy_links_unchanged() {
        let env = StaticLinearEnvironment::from_slopes(vec![4.0, 1.0, 2.0, 3.0]);
        let clean = RingSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(15);
        let lossy = RingSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(
                FaultPlan::seeded(11).with_drop_probability(0.25).with_duplicate_probability(0.05),
            )
            .run(15);
        for (a, b) in clean.rounds.iter().zip(&lossy.rounds) {
            assert!(a.allocation.l2_distance(&b.allocation) == 0.0, "round {}", a.round);
            assert_eq!(a.messages, b.messages, "logical counts agree");
        }
        assert!(lossy.total_retries() > 0);
        assert!(lossy.makespan() > clean.makespan());
    }

    #[test]
    fn crash_splices_worker_out_of_the_ring() {
        let env = StaticLinearEnvironment::from_slopes(vec![4.0, 1.0, 2.0, 1.5]);
        let trace = RingSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_crash(Crash { worker: 2, from_round: 6, until_round: 14 })
            .run(25);
        let frozen = trace.rounds[6].allocation.share(2);
        for t in 6..14 {
            let r = &trace.rounds[t];
            assert!(!r.active[2], "round {t}");
            assert!((r.allocation.share(2) - frozen).abs() < 1e-12, "round {t}");
            let sum: f64 = r.allocation.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            // The token circulates among A = 3 survivors: 2A hops plus
            // the assignment hop unless the head is the straggler.
            let expected = if r.straggler == 0 { 6 } else { 7 };
            assert_eq!(r.messages, expected, "round {t}");
        }
        assert!(trace.rounds[24].active[2], "worker rejoined");
    }

    #[test]
    fn crashed_head_hands_the_ring_to_the_next_survivor() {
        // Worker 0 (the usual head/originator) crashes: worker 1 must
        // take over token origination and remainder computation.
        let env = StaticLinearEnvironment::from_slopes(vec![4.0, 1.0, 2.0, 1.5]);
        let crash = Crash { worker: 0, from_round: 3, until_round: 8 };
        let ring = RingSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
            .with_crash(crash)
            .run(15);
        let mw = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_crash(crash)
            .run(15);
        for t in 3..8 {
            let r = &ring.rounds[t];
            assert!(!r.active[0], "round {t}");
            let sum: f64 = r.allocation.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        for (r, m) in ring.rounds.iter().zip(&mw.rounds) {
            assert!(
                r.allocation.l2_distance(&m.allocation) < 1e-9,
                "round {}: ring and MW degrade identically",
                r.round
            );
        }
    }

    #[test]
    fn crash_equivalence_with_master_worker() {
        let env = StaticLinearEnvironment::from_slopes(vec![5.0, 1.0, 2.0, 3.0, 1.2]);
        let crash = Crash { worker: 1, from_round: 4, until_round: 10 };
        let ring = RingSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
            .with_crash(crash)
            .run(20);
        let mw = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_crash(crash)
            .run(20);
        for (r, m) in ring.rounds.iter().zip(&mw.rounds) {
            assert!(
                r.allocation.l2_distance(&m.allocation) < 1e-9,
                "round {}: ring {} vs mw {}",
                r.round,
                r.allocation,
                m.allocation
            );
        }
    }

    #[test]
    fn lone_survivor_and_empty_membership_freeze_and_continue() {
        let env = StaticLinearEnvironment::from_slopes(vec![3.0, 1.0, 2.0]);
        let trace = RingSim::new(env, DolbieConfig::new(), FixedLatency::lan())
            .with_crash(Crash { worker: 0, from_round: 4, until_round: 7 })
            .with_crash(Crash { worker: 2, from_round: 4, until_round: 7 })
            .with_crash(Crash { worker: 1, from_round: 5, until_round: 6 })
            .run(12);
        // Round 4 and 6: one survivor; round 5: nobody alive.
        for t in [4usize, 6] {
            let r = &trace.rounds[t];
            assert_eq!(r.active, vec![false, true, false], "round {t}");
            assert_eq!(r.messages, 0, "round {t}: a ring of one passes no token");
            let sum: f64 = r.allocation.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        let dead = &trace.rounds[5];
        assert!(dead.active.iter().all(|&a| !a));
        assert_eq!(dead.messages, 0);
        let sum: f64 = dead.allocation.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "frozen shares stay feasible");
        // The lone survivor keeps its share for the whole collapse window
        // (a ring of one has nobody to rebalance with), and the frozen
        // peers' shares come out of it untouched.
        for w in 0..3 {
            for t in 5..7 {
                assert!(
                    (trace.rounds[t].allocation.share(w) - trace.rounds[4].allocation.share(w))
                        .abs()
                        < 1e-12,
                    "round {t}: worker {w}'s share drifted during the collapse"
                );
            }
        }
        assert!(trace.rounds[11].active.iter().all(|&a| a), "everyone rejoined");
        let mut prev = f64::INFINITY;
        for r in &trace.rounds {
            assert!(r.alpha <= prev, "round {}: alpha rose through collapse", r.round);
            prev = r.alpha;
        }
    }

    #[test]
    #[should_panic(expected = "at least two workers")]
    fn single_worker_is_rejected() {
        let env = StaticLinearEnvironment::from_slopes(vec![1.0]);
        let _ = RingSim::new(env, DolbieConfig::new(), FixedLatency::lan());
    }
}
