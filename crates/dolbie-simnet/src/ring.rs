//! A token-ring architecture for DOLBIE (extension).
//!
//! The paper gives two architectures: master-worker (`3N` messages,
//! constant protocol depth, single point of failure) and fully-distributed
//! (`~N²` messages, constant depth, no coordinator). This module adds a
//! third point in the design space — a leaderless **token ring** with
//! `O(N)` messages but `O(N)` protocol depth:
//!
//! - **pass 1 (aggregate)**: a token circulates `0 → 1 → … → N−1 → 0`,
//!   folding in each worker's local cost and local step size; when it
//!   returns, worker 0 knows `l_t`, `s_t`, and `α_t = min_j ᾱ_j` —
//!   exactly the quantities Algorithm 2 obtains by broadcast;
//! - **pass 2 (update)**: the token carries those scalars back around the
//!   ring; each non-straggler applies eq. (5) as the token passes and adds
//!   its new share to a running sum; back at worker 0, the straggler's
//!   remainder `1 − Σ` is known and delivered (eq. (6)); the straggler
//!   tightens its local step size per eq. (8).
//!
//! Because the ring accumulates shares in ascending worker order — the
//! same order the other implementations use — the trajectory is
//! *identical* to master-worker, fully-distributed, and the sequential
//! engine (tested). Total: `2N + 1` messages per round, `Θ(N)` bytes,
//! but the decision phase takes `2N` sequential hops instead of a
//! constant number.

use crate::event::EventQueue;
use crate::latency::LatencyModel;
use crate::message::{Message, NodeId, Payload};
use crate::trace::{ProtocolRound, ProtocolTrace};
use dolbie_core::observation::max_acceptable_share;
use dolbie_core::step_size::feasibility_cap;
use dolbie_core::{Allocation, DolbieConfig, Environment};

#[derive(Debug, Clone, Copy)]
enum Ev {
    ComputeDone { worker: usize },
    Deliver(Message),
}

/// The token-ring protocol simulator.
///
/// # Examples
///
/// ```
/// use dolbie_simnet::{FixedLatency, RingSim};
/// use dolbie_core::environment::StaticLinearEnvironment;
/// use dolbie_core::DolbieConfig;
///
/// let env = StaticLinearEnvironment::from_slopes(vec![1.0, 3.0, 2.0]);
/// let mut sim = RingSim::new(env, DolbieConfig::new(), FixedLatency::lan());
/// let trace = sim.run(10);
/// // 2N + 1 messages per round for N = 3 (one fewer when worker 0
/// // happens to be the straggler, as no assignment hop is needed).
/// assert_eq!(trace.rounds[0].messages, 7);
/// ```
#[derive(Debug)]
pub struct RingSim<E, L> {
    env: E,
    latency: L,
    shares: Vec<f64>,
    local_alphas: Vec<f64>,
}

impl<E: Environment, L: LatencyModel> RingSim<E, L> {
    /// Creates the simulator with the uniform initial partition.
    ///
    /// # Panics
    ///
    /// Panics if the environment has fewer than two workers.
    pub fn new(env: E, config: DolbieConfig, latency: L) -> Self {
        let n = env.num_workers();
        assert!(n >= 2, "the ring protocol needs at least two workers");
        let initial = Allocation::uniform(n);
        let alpha = config.resolve_initial_alpha(&initial);
        Self { env, latency, shares: initial.into_inner(), local_alphas: vec![alpha; n] }
    }

    /// Runs the protocol for `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if the environment produces malformed cost functions.
    pub fn run(&mut self, rounds: usize) -> ProtocolTrace {
        let n = self.shares.len();
        let mut trace = Vec::with_capacity(rounds);
        let mut ready_at = vec![0.0f64; n];

        for t in 0..rounds {
            let fns = self.env.reveal(t);
            assert_eq!(fns.len(), n, "environment must cover every worker");
            let local_costs: Vec<f64> =
                (0..n).map(|i| fns[i].eval(self.shares[i])).collect();

            let mut queue: EventQueue<Ev> = EventQueue::new();
            for (i, (&ready, &cost)) in ready_at.iter().zip(&local_costs).enumerate() {
                queue.schedule(ready + cost, Ev::ComputeDone { worker: i });
            }

            let mut computed = vec![false; n];
            // Pass-1 token state: held by `token_at` waiting for that
            // worker's compute, or in flight as a message.
            let mut pending_aggregate: Option<(usize, f64, usize, f64)> = None;
            let mut next_shares = self.shares.clone();
            let mut next_alphas = self.local_alphas.clone();
            let mut messages = 0usize;
            let mut bytes = 0usize;
            let mut compute_finished = 0.0f64;
            let mut control_finished = 0.0f64;
            let mut round_done = false;
            let mut global_cost = f64::MIN;
            let mut straggler = 0usize;

            let send = |queue: &mut EventQueue<Ev>,
                        latency: &mut L,
                        messages: &mut usize,
                        bytes: &mut usize,
                        msg: Message| {
                *messages += 1;
                *bytes += msg.size_bytes();
                let delay = latency.delay(&msg);
                assert!(delay >= 0.0, "latency model produced a negative delay");
                queue.schedule(queue.now() + delay, Ev::Deliver(msg));
            };

            while let Some(scheduled) = queue.pop() {
                if round_done {
                    break;
                }
                let now = scheduled.time;
                match scheduled.event {
                    Ev::ComputeDone { worker } => {
                        compute_finished = compute_finished.max(now);
                        computed[worker] = true;
                        if worker == 0 {
                            // Worker 0 originates the aggregation token.
                            send(
                                &mut queue,
                                &mut self.latency,
                                &mut messages,
                                &mut bytes,
                                Message {
                                    from: NodeId::Worker(0),
                                    to: NodeId::Worker(1 % n),
                                    round: t,
                                    payload: Payload::RingAggregate {
                                        max_cost: local_costs[0],
                                        straggler: 0,
                                        min_alpha: self.local_alphas[0],
                                    },
                                },
                            );
                        } else if let Some((held_by, max_cost, arg, min_alpha)) =
                            pending_aggregate.take()
                        {
                            // The token was parked here waiting for this
                            // worker's compute; fold and forward now.
                            if held_by == worker {
                                let (max_cost, arg) = if local_costs[worker] > max_cost {
                                    (local_costs[worker], worker)
                                } else {
                                    (max_cost, arg)
                                };
                                let min_alpha = min_alpha.min(self.local_alphas[worker]);
                                send(
                                    &mut queue,
                                    &mut self.latency,
                                    &mut messages,
                                    &mut bytes,
                                    Message {
                                        from: NodeId::Worker(worker),
                                        to: NodeId::Worker((worker + 1) % n),
                                        round: t,
                                        payload: Payload::RingAggregate {
                                            max_cost,
                                            straggler: arg,
                                            min_alpha,
                                        },
                                    },
                                );
                            } else {
                                pending_aggregate = Some((held_by, max_cost, arg, min_alpha));
                            }
                        }
                    }
                    Ev::Deliver(msg) => {
                        let NodeId::Worker(me) = msg.to else {
                            unreachable!("the ring has no master")
                        };
                        match msg.payload {
                            Payload::RingAggregate { max_cost, straggler: arg, min_alpha } => {
                                if me == 0 {
                                    // Pass 1 complete: worker 0 knows the
                                    // round scalars and starts pass 2 with
                                    // its own eq. (5) update folded in.
                                    global_cost = max_cost;
                                    straggler = arg;
                                    let alpha = min_alpha;
                                    let mut sum = 0.0;
                                    if straggler != 0 {
                                        let x0 = self.shares[0];
                                        let target =
                                            max_acceptable_share(&fns[0], x0, global_cost);
                                        let updated = x0 - alpha * (x0 - target);
                                        next_shares[0] = updated;
                                        ready_at[0] = now;
                                        sum += updated;
                                    }
                                    send(
                                        &mut queue,
                                        &mut self.latency,
                                        &mut messages,
                                        &mut bytes,
                                        Message {
                                            from: NodeId::Worker(0),
                                            to: NodeId::Worker(1 % n),
                                            round: t,
                                            payload: Payload::RingUpdate {
                                                global_cost,
                                                straggler,
                                                alpha,
                                                sum_shares: sum,
                                            },
                                        },
                                    );
                                } else if computed[me] {
                                    // Fold in and forward immediately.
                                    let (max_cost, arg) = if local_costs[me] > max_cost {
                                        (local_costs[me], me)
                                    } else {
                                        (max_cost, arg)
                                    };
                                    let min_alpha = min_alpha.min(self.local_alphas[me]);
                                    send(
                                        &mut queue,
                                        &mut self.latency,
                                        &mut messages,
                                        &mut bytes,
                                        Message {
                                            from: NodeId::Worker(me),
                                            to: NodeId::Worker((me + 1) % n),
                                            round: t,
                                            payload: Payload::RingAggregate {
                                                max_cost,
                                                straggler: arg,
                                                min_alpha,
                                            },
                                        },
                                    );
                                } else {
                                    // Park the token until this worker's
                                    // compute completes.
                                    pending_aggregate = Some((me, max_cost, arg, min_alpha));
                                }
                            }
                            Payload::RingUpdate {
                                global_cost: l_t,
                                straggler: s,
                                alpha,
                                sum_shares,
                            } => {
                                if me == 0 {
                                    // Pass 2 complete: deliver the
                                    // remainder to the straggler.
                                    let s_share = (1.0 - sum_shares).max(0.0);
                                    if s == 0 {
                                        next_shares[0] = s_share;
                                        next_alphas[0] = self.local_alphas[0]
                                            .min(feasibility_cap(n, s_share));
                                        ready_at[0] = now;
                                        control_finished = now;
                                        round_done = true;
                                    } else {
                                        send(
                                            &mut queue,
                                            &mut self.latency,
                                            &mut messages,
                                            &mut bytes,
                                            Message {
                                                from: NodeId::Worker(0),
                                                to: NodeId::Worker(s),
                                                round: t,
                                                payload: Payload::StragglerAssignment {
                                                    share: s_share,
                                                },
                                            },
                                        );
                                    }
                                } else {
                                    let mut sum = sum_shares;
                                    if me != s {
                                        let x_i = self.shares[me];
                                        let target =
                                            max_acceptable_share(&fns[me], x_i, l_t);
                                        let updated = x_i - alpha * (x_i - target);
                                        next_shares[me] = updated;
                                        ready_at[me] = now;
                                        sum += updated;
                                    }
                                    send(
                                        &mut queue,
                                        &mut self.latency,
                                        &mut messages,
                                        &mut bytes,
                                        Message {
                                            from: NodeId::Worker(me),
                                            to: NodeId::Worker((me + 1) % n),
                                            round: t,
                                            payload: Payload::RingUpdate {
                                                global_cost: l_t,
                                                straggler: s,
                                                alpha,
                                                sum_shares: sum,
                                            },
                                        },
                                    );
                                }
                            }
                            Payload::StragglerAssignment { share } => {
                                next_shares[me] = share;
                                next_alphas[me] =
                                    self.local_alphas[me].min(feasibility_cap(n, share));
                                ready_at[me] = now;
                                control_finished = now;
                                round_done = true;
                            }
                            _ => unreachable!("non-ring payload in the ring protocol"),
                        }
                    }
                }
            }
            assert!(round_done, "ring protocol deadlocked in round {t}");

            let executed = Allocation::from_update(self.shares.clone())
                .expect("protocol preserves feasibility");
            trace.push(ProtocolRound {
                round: t,
                allocation: executed,
                local_costs,
                global_cost,
                straggler,
                messages,
                bytes,
                compute_finished,
                control_finished,
                active: vec![true; n],
            });
            self.shares = next_shares;
            self.local_alphas = next_alphas;
        }
        ProtocolTrace { architecture: "ring", rounds: trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::FixedLatency;
    use crate::master_worker::MasterWorkerSim;
    use dolbie_core::environment::{RotatingStragglerEnvironment, StaticLinearEnvironment};

    #[test]
    fn message_count_is_2n_plus_1() {
        for n in [2usize, 3, 5, 8] {
            let env =
                StaticLinearEnvironment::from_slopes((1..=n).map(|i| i as f64).collect());
            let mut sim = RingSim::new(env, DolbieConfig::new(), FixedLatency::lan());
            let trace = sim.run(4);
            for r in &trace.rounds {
                // 2N + 1, except when worker 0 is itself the straggler
                // (no final assignment hop): straggler 0 happens when it
                // has the max cost.
                let expected = if r.straggler == 0 { 2 * n } else { 2 * n + 1 };
                assert_eq!(r.messages, expected, "N = {n}, straggler {}", r.straggler);
            }
        }
    }

    #[test]
    fn trajectory_matches_master_worker() {
        let env = RotatingStragglerEnvironment::new(6, 4, 7.0, 1.0);
        let ring = RingSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(40);
        let mw =
            MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan()).run(40);
        for (r, m) in ring.rounds.iter().zip(&mw.rounds) {
            assert!(
                r.allocation.l2_distance(&m.allocation) < 1e-9,
                "round {}: ring {} vs mw {}",
                r.round,
                r.allocation,
                m.allocation
            );
            assert!((r.global_cost - m.global_cost).abs() < 1e-9);
        }
    }

    #[test]
    fn control_depth_grows_with_ring_size() {
        // With constant per-hop latency and instant computes, the ring's
        // decision phase takes ~2N hops vs the master-worker's ~4.
        let hop = FixedLatency::new(0.01, f64::INFINITY);
        let sizes = [4usize, 16];
        let mut ring_overheads = Vec::new();
        let mut mw_overheads = Vec::new();
        for &n in &sizes {
            let env =
                StaticLinearEnvironment::from_slopes((1..=n).map(|i| 0.1 * i as f64).collect());
            let ring = RingSim::new(env.clone(), DolbieConfig::new(), hop).run(3);
            let mw = MasterWorkerSim::new(env, DolbieConfig::new(), hop).run(3);
            ring_overheads.push(ring.mean_control_overhead());
            mw_overheads.push(mw.mean_control_overhead());
        }
        // Ring overhead scales ~linearly with N; master-worker stays flat.
        assert!(
            ring_overheads[1] > ring_overheads[0] * 2.5,
            "ring overhead must grow with N: {ring_overheads:?}"
        );
        assert!(
            mw_overheads[1] < mw_overheads[0] * 2.0,
            "master-worker overhead must stay near-constant: {mw_overheads:?}"
        );
    }

    #[test]
    fn bytes_are_linear_in_n() {
        let n = 12;
        let env = StaticLinearEnvironment::from_slopes((1..=n).map(|i| i as f64).collect());
        let trace = RingSim::new(env, DolbieConfig::new(), FixedLatency::lan()).run(5);
        // 2N+1 messages of <= 44 bytes each.
        assert!(trace.rounds[0].bytes <= (2 * n + 1) * 44);
    }

    #[test]
    #[should_panic(expected = "at least two workers")]
    fn single_worker_is_rejected() {
        let env = StaticLinearEnvironment::from_slopes(vec![1.0]);
        let _ = RingSim::new(env, DolbieConfig::new(), FixedLatency::lan());
    }
}
