//! The coordinator-over-a-member-set toolkit shared by every
//! architecture in this crate.
//!
//! Master-worker, the token ring, fully-distributed consensus, and the
//! two-level shard tier ([`crate::sharded`]) all perform the same four
//! coordination duties each round, differing only in *who* performs them
//! and over *which* member set:
//!
//! 1. **elect** — pick the straggler among the round's participants
//!    (ascending scan, strict `>`, lowest index on ties);
//! 2. **assist** — each non-straggler takes the eq. (5) risk-averse step
//!    toward the largest share it could absorb without becoming a worse
//!    straggler itself;
//! 3. **pin** — assign the straggler the eq. (6) remainder, with the
//!    engine's floating-point feasibility guard;
//! 4. **tighten** — shrink the step size per eq. (7) against the member
//!    count.
//!
//! Centralizing the four as order-exact helpers is what keeps the
//! architectures' trajectories bit-for-bit identical: the master applies
//! them over all N workers, a shard-master over its N/M slice, the ring
//! distributes (1) and (3) across token passes — but every participant
//! runs the same floating-point expressions in the same order.
//!
//! [`frozen_round`] completes the toolkit with the shared
//! membership-collapse degradation (no responsive member: freeze every
//! share, exchange nothing, continue).

use crate::trace::ProtocolRound;
use dolbie_core::cost::CostFunction;
use dolbie_core::observation::max_acceptable_share;
use dolbie_core::step_size::feasibility_cap;
use dolbie_core::Allocation;

/// The straggler elected for a round: its index and the global cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Elected {
    /// The straggler `s_t` (lowest index attaining the maximum).
    pub straggler: usize,
    /// The global cost `l_t` (the straggler's local cost).
    pub global_cost: f64,
}

/// Duty (1): elects the straggler among the participants — ascending
/// scan, strict `>`, so ties resolve to the lowest index. Returns `None`
/// when nobody participates (membership collapse; see [`frozen_round`]).
///
/// The scan's shape is what lets a shard tier decompose the election: a
/// contiguous shard's local first-maximum, combined across shards in
/// ascending shard order with the same strict `>`, elects the identical
/// worker (comparison is exact — no rounding is involved).
pub fn elect_straggler(local_costs: &[f64], participants: &[bool]) -> Option<Elected> {
    let mut best: Option<Elected> = None;
    for (i, (&cost, &in_round)) in local_costs.iter().zip(participants).enumerate() {
        if !in_round {
            continue;
        }
        match best {
            None => best = Some(Elected { straggler: i, global_cost: cost }),
            Some(b) if cost > b.global_cost => {
                best = Some(Elected { straggler: i, global_cost: cost })
            }
            Some(_) => {}
        }
    }
    best
}

/// Duty (2): one non-straggler's eq. (5) risk-averse step — toward the
/// largest share `x'` it could absorb while staying under the global
/// cost, moved `α` of the way.
///
/// Every architecture must use this exact expression (`x − α·(x − x')`,
/// not an algebraic rearrangement) for the cross-architecture bitwise
/// guarantees to hold.
pub fn assist_step(cost_fn: &dyn CostFunction, share: f64, global_cost: f64, alpha: f64) -> f64 {
    let target = max_acceptable_share(cost_fn, share, global_cost);
    share - alpha * (share - target)
}

/// Duty (4): the eq. (7) step-size tightening — never loosened, capped by
/// the feasibility bound the straggler's new share implies for the
/// current member count.
pub fn tighten_alpha(alpha: f64, member_count: usize, straggler_share: f64) -> f64 {
    alpha.min(feasibility_cap(member_count, straggler_share))
}

/// Duty (3): eq. (6) pin with the engine's feasibility guard, shared by
/// every architecture so guarded rounds stay bitwise identical across
/// them.
///
/// `next` holds every non-straggler's candidate share — the eq. (5)
/// update for the round's deciders, the frozen share for crashed,
/// timed-out, and departed workers. Eq. (7) proves the combined gain
/// fits inside the straggler's share in exact arithmetic, but a
/// zero-share joiner that becomes the straggler right after an epoch
/// boundary can hold a smaller share than the one α was last capped
/// against; mirror the engine's guard (`dolbie_core::engine`) and
/// rescale the gains so constraint (3) survives. In the wire protocol
/// the correction factor rides on the straggler assignment / pass-2
/// token; the sims apply it to the bookkeeping directly. The sums run
/// in ascending worker order at every call site, which is what keeps
/// the architectures' trajectories bit-for-bit equal — a shard tier
/// preserves the order by folding one running accumulator through the
/// shards in ascending shard order.
pub fn guarded_straggler_pin(old: &[f64], next: &mut [f64], straggler: usize) -> f64 {
    straggler_pin_with_guard(old, next, straggler, true)
}

/// [`guarded_straggler_pin`] with the overshoot guard switchable.
///
/// `guard = true` is the shipping behaviour; `guard = false` re-breaks
/// the PR 4 simplex-overshoot bug (the rescale is skipped, so a
/// zero-share straggler's round can execute `Σx > 1`). The switch exists
/// solely as the model checker's bug-injection target — a deliberately
/// planted violation its exploration, shrinking, and reproducer pipeline
/// must catch end to end. Production call sites all go through the
/// guarded wrapper; only a scheduler whose (test-only)
/// `sabotage_overshoot_guard` hook answers `true` reaches this with
/// `guard = false`.
pub fn straggler_pin_with_guard(
    old: &[f64],
    next: &mut [f64],
    straggler: usize,
    guard: bool,
) -> f64 {
    let mut total_gain = 0.0;
    for (j, (&o, &x)) in old.iter().zip(next.iter()).enumerate() {
        if j != straggler {
            total_gain += x - o;
        }
    }
    let s_old = old[straggler];
    if guard && total_gain > s_old && total_gain > 0.0 {
        let scale = s_old / total_gain;
        for (j, (&o, x)) in old.iter().zip(next.iter_mut()).enumerate() {
            if j != straggler {
                *x = o + scale * (*x - o);
            }
        }
    }
    let mut others = 0.0;
    for (j, &x) in next.iter().enumerate() {
        if j != straggler {
            others += x;
        }
    }
    let s_share = (1.0 - others).max(0.0);
    next[straggler] = s_share;
    s_share
}

/// The record of a round in which no worker was responsive: every share
/// is frozen, nothing executes, nothing is sent. Shared by all
/// architectures so membership collapse degrades identically everywhere.
pub fn frozen_round(
    t: usize,
    shares: &[f64],
    local_costs: Vec<f64>,
    ready_at: &[f64],
    n: usize,
    alpha: f64,
) -> ProtocolRound {
    // The cluster clock does not advance while everyone is down.
    let stall = ready_at.iter().fold(0.0f64, |acc, &r| acc.max(r));
    ProtocolRound {
        round: t,
        allocation: Allocation::from_update(shares.to_vec()).expect("frozen shares stay feasible"),
        local_costs,
        global_cost: 0.0,
        straggler: 0,
        messages: 0,
        bytes: 0,
        retries: 0,
        acks: 0,
        duplicates: 0,
        compute_finished: stall,
        control_finished: stall,
        active: vec![false; n],
        alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dolbie_core::cost::LinearCost;

    #[test]
    fn election_is_lowest_index_first_maximum_over_participants() {
        let costs = [1.0, 5.0, 5.0, 2.0];
        let all = [true; 4];
        let e = elect_straggler(&costs, &all).unwrap();
        assert_eq!((e.straggler, e.global_cost), (1, 5.0), "strict > keeps the first maximum");

        let masked = [true, false, true, true];
        let e = elect_straggler(&costs, &masked).unwrap();
        assert_eq!(e.straggler, 2, "non-participants are invisible");

        assert_eq!(elect_straggler(&costs, &[false; 4]), None, "collapse elects nobody");
    }

    #[test]
    fn election_decomposes_over_contiguous_shards() {
        // Shard-local first-maxima combined in shard order with the same
        // strict > elect the same worker as the flat scan — including
        // across-shard ties.
        let costs = [3.0, 7.0, 7.0, 1.0, 7.0, 2.0];
        let all = [true; 6];
        let flat = elect_straggler(&costs, &all).unwrap();
        let left = elect_straggler(&costs[..3], &all[..3]).unwrap();
        let right = elect_straggler(&costs[3..], &all[3..]).unwrap();
        let combined = if right.global_cost > left.global_cost {
            Elected { straggler: right.straggler + 3, ..right }
        } else {
            left
        };
        assert_eq!(combined, flat);
    }

    #[test]
    fn tighten_never_loosens() {
        let a = tighten_alpha(0.4, 8, 0.02);
        assert!(a <= 0.4);
        assert_eq!(tighten_alpha(a, 8, 0.9), a, "a generous cap leaves alpha unchanged");
    }

    #[test]
    fn assist_step_moves_toward_the_acceptable_share() {
        let f = LinearCost::new(2.0, 0.0);
        let share = 0.1;
        let stepped = assist_step(&f, share, 1.0, 0.5);
        let target = max_acceptable_share(&f, share, 1.0);
        assert!(target > share, "a cheap worker can absorb more");
        assert!(share < stepped && stepped < target, "risk-averse partial step");
        assert_eq!(stepped.to_bits(), (share - 0.5 * (share - target)).to_bits());
    }

    #[test]
    fn guarded_pin_preserves_the_simplex_even_when_gains_overshoot() {
        // Straggler holds 0.01 but the others' combined gain is 0.2: the
        // guard must rescale so the pinned share stays non-negative.
        let old = [0.01, 0.5, 0.49];
        let mut next = [0.01, 0.6, 0.59];
        let s = guarded_straggler_pin(&old, &mut next, 0);
        assert!(s >= 0.0);
        let sum: f64 = next.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
