//! The two-level shard tier as a message-passing protocol simulation.
//!
//! M shard-masters each run the coordinator duties
//! ([`crate::coordinator`]) over a contiguous slice of N/M workers; a
//! root coordinator runs the *same* min-max logic over shard-level
//! aggregates. Per round:
//!
//! 1. workers report local costs to their shard-master (line 4 of
//!    Algorithm 1, unchanged — a worker cannot tell which architecture
//!    sits above it);
//! 2. each shard-master elects its slice's straggler candidate and ships
//!    one [`Payload::ShardAggregate`] to the root — the root combines the
//!    M candidates in ascending shard order with the same strict `>` the
//!    flat master uses, which elects the identical global straggler;
//! 3. the root broadcasts [`Payload::ShardCoordination`] to the
//!    shard-masters, which replay ordinary `Coordination` messages to
//!    their workers; non-stragglers take the eq. (5) step and answer with
//!    their `Decision`;
//! 4. the eq. (6)/guard arithmetic needs two ascending-order sums (the
//!    combined gain, then the non-straggler total); each is computed by a
//!    [`Payload::ShardPartial`] token chained through the shard-masters
//!    in ascending shard order, every shard folding its slice
//!    *elementwise* — so the fold order is exactly the flat master's
//!    ascending worker order and the result is bitwise identical;
//! 5. the root pins the straggler (assignment routed via its
//!    shard-master) and tightens α per eq. (7).
//!
//! The root therefore exchanges O(M) messages per round — M aggregates
//! up, M coordination broadcasts down, four token hops, one assignment —
//! while the flat master exchanges Θ(N). [`ShardedRun::root_rounds`]
//! records that tier's traffic separately; the `shard_scale` experiment
//! plots it against M.
//!
//! ## Fault and membership semantics
//!
//! Crash windows, lossy links, and membership epochs carry over from the
//! flat architectures unchanged. A **shard-master crash**
//! ([`ShardedSim::with_shard_master_crash`]) takes its whole slice dark:
//! every worker of the shard is excluded for the window (shares frozen,
//! exactly as if each had crashed individually) and the shard sends
//! nothing. For the two chained sums the root replays an unresponsive
//! shard's slice from its own checkpoint *in shard order* — the root
//! already tracks every share for epoch re-normalization (the same
//! master-side bookkeeping the flat masters keep for buried workers), so
//! a dead shard costs the root O(N/M) local work but no protocol stall.
//! Membership epochs (including a schedule draining an entire shard's
//! workers) run the flat `epoch_transition` at the root over the
//! gathered slices.
//!
//! Because every cross-shard reduction is either the exact argmax or an
//! elementwise ascending chain, the sharded trajectory is **bitwise
//! identical** to [`MasterWorkerSim`](crate::MasterWorkerSim) under any
//! fault plan × membership schedule the flat simulator accepts (cost
//! timeouts excepted — a per-shard timeout would exclude by arrival time,
//! which is a deadline policy, not a round policy; the shard tier defers
//! that to the TCP runtime's deadline machinery in `dolbie-net`). The
//! chaos suite sweeps exactly that equivalence.

use crate::coordinator::{assist_step, elect_straggler, frozen_round, tighten_alpha};
use crate::faults::{Crash, FaultPlan, LinkStats};
use crate::latency::LatencyModel;
use crate::membership::{epoch_transition, MembershipSchedule, DEFAULT_DETECTION_TIMEOUT};
use crate::message::{Message, NodeId, Payload};
use crate::trace::{ProtocolRound, ProtocolTrace};
use dolbie_core::shard::ShardLayout;
use dolbie_core::{Allocation, DolbieConfig, Environment};

/// The root tier's traffic in one round — the O(M) fan-in the
/// architecture exists to demonstrate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RootTierRound {
    /// Messages with the root as an endpoint.
    pub messages: usize,
    /// Bytes of those messages.
    pub bytes: usize,
}

/// A sharded run: the ordinary protocol trace plus the root tier's
/// per-round traffic.
#[derive(Debug)]
pub struct ShardedRun {
    /// The full protocol trace (all tiers' messages combined), directly
    /// comparable with the flat architectures' traces.
    pub trace: ProtocolTrace,
    /// Per-round root-tier traffic, aligned with `trace.rounds`.
    pub root_rounds: Vec<RootTierRound>,
}

/// The two-level shard-tier protocol simulator.
///
/// # Examples
///
/// ```
/// use dolbie_simnet::{FixedLatency, MasterWorkerSim, ShardedSim};
/// use dolbie_core::environment::StaticLinearEnvironment;
/// use dolbie_core::DolbieConfig;
///
/// let env = StaticLinearEnvironment::from_slopes(vec![3.0, 1.0, 2.0, 4.0]);
/// let mut flat = MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan());
/// let mut sharded = ShardedSim::new(env, DolbieConfig::new(), FixedLatency::lan(), 2);
/// let a = flat.run(10);
/// let b = sharded.run(10);
/// for (x, y) in a.rounds.iter().zip(&b.trace.rounds) {
///     assert_eq!(x.allocation.l2_distance(&y.allocation), 0.0);
/// }
/// ```
#[derive(Debug)]
pub struct ShardedSim<E, L> {
    env: E,
    latency: L,
    layout: ShardLayout,
    shares: Vec<f64>,
    alpha: f64,
    plan: FaultPlan,
    membership: MembershipSchedule,
}

impl<E: Environment, L: LatencyModel> ShardedSim<E, L> {
    /// Creates the simulator with the uniform initial partition split
    /// into `shards` contiguous near-even shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `shards > N`.
    pub fn new(env: E, config: DolbieConfig, latency: L, shards: usize) -> Self {
        let n = env.num_workers();
        let initial = Allocation::uniform(n);
        let alpha = config.resolve_initial_alpha(&initial);
        Self {
            env,
            latency,
            layout: ShardLayout::even(n, shards),
            shares: initial.into_inner(),
            alpha,
            plan: FaultPlan::none(),
            membership: MembershipSchedule::none(),
        }
    }

    /// The shard layout in force.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Installs a membership schedule — identical semantics to the flat
    /// simulators (a schedule draining every worker of one shard models a
    /// planned shard decommission).
    ///
    /// # Panics
    ///
    /// Panics if the schedule names a worker out of range or would empty
    /// the active set.
    pub fn with_membership(mut self, schedule: MembershipSchedule) -> Self {
        schedule.validate(self.shares.len());
        self.membership = schedule;
        self
    }

    /// Installs a complete fault plan (crashes, lossy links). The plan's
    /// cost timeout is a flat-master concept and is ignored here (see the
    /// module docs).
    ///
    /// # Panics
    ///
    /// Panics if a crash window names a worker index out of range.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        if let Some(max) = plan.max_crash_worker() {
            assert!(max < self.shares.len(), "crash worker out of range");
        }
        self.plan = plan;
        self
    }

    /// Injects a worker crash window, as in the flat simulators.
    ///
    /// # Panics
    ///
    /// Panics if the worker index is out of range.
    pub fn with_crash(mut self, crash: Crash) -> Self {
        assert!(crash.worker < self.shares.len(), "crash worker out of range");
        self.plan.crashes.push(crash);
        self
    }

    /// Injects a shard-master crash window: the entire shard goes dark
    /// for `[from_round, until_round)` — every worker of the shard is
    /// excluded (its share frozen) and the shard exchanges nothing, while
    /// the root replays the slice from its checkpoint. Equivalent, by
    /// construction, to crashing each of the shard's workers individually
    /// in the flat architectures — the equivalence the chaos suite
    /// asserts bitwise.
    ///
    /// # Panics
    ///
    /// Panics if the shard index is out of range.
    pub fn with_shard_master_crash(
        mut self,
        shard: usize,
        from_round: usize,
        until_round: usize,
    ) -> Self {
        assert!(shard < self.layout.num_shards(), "shard index out of range");
        for worker in self.layout.range(shard) {
            self.plan.crashes.push(Crash { worker, from_round, until_round });
        }
        self
    }

    /// Runs the protocol for `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if the environment produces malformed cost functions.
    pub fn run(&mut self, rounds: usize) -> ShardedRun {
        let n = self.shares.len();
        let m = self.layout.num_shards();
        let mut trace = Vec::with_capacity(rounds);
        let mut root_rounds = Vec::with_capacity(rounds);
        let mut ready_at = vec![0.0f64; n];
        let mut members = vec![true; n];

        for t in 0..rounds {
            // Epoch boundary — the root runs the flat transition over the
            // gathered slices (the one O(N)-at-the-root event).
            let boundary = self.membership.apply_round(t, &mut members);
            if boundary.changed {
                let mut alpha_state = [self.alpha];
                self.alpha =
                    epoch_transition(&mut self.shares, &mut alpha_state, &[true], &members);
                if boundary.crash_detected {
                    let detection = self.plan.cost_timeout.unwrap_or(DEFAULT_DETECTION_TIMEOUT);
                    for (r, &mm) in ready_at.iter_mut().zip(&members) {
                        if mm {
                            *r += detection;
                        }
                    }
                }
            }
            let member_count = members.iter().filter(|&&mm| mm).count();

            let fns = self.env.reveal(t);
            assert_eq!(fns.len(), n, "environment must cover every worker");
            let down: Vec<bool> = (0..n).map(|i| !members[i] || self.plan.crashed(i, t)).collect();
            let alive_count = down.iter().filter(|&&c| !c).count();
            let local_costs: Vec<f64> =
                (0..n).map(|i| if down[i] { 0.0 } else { fns[i].eval(self.shares[i]) }).collect();
            if alive_count == 0 {
                trace.push(frozen_round(t, &self.shares, local_costs, &ready_at, n, self.alpha));
                root_rounds.push(RootTierRound::default());
                continue;
            }
            let participants: Vec<bool> = down.iter().map(|&c| !c).collect();

            let mut stats = LinkStats::default();
            let mut root = RootTierRound::default();
            let mut compute_finished = 0.0f64;

            // (1) workers → shard-masters: local cost reports.
            let mut shard_cost_ready = vec![f64::NEG_INFINITY; m];
            for (k, cost_ready) in shard_cost_ready.iter_mut().enumerate() {
                for i in self.layout.range(k) {
                    if down[i] {
                        continue;
                    }
                    let done = ready_at[i] + local_costs[i];
                    compute_finished = compute_finished.max(done);
                    let arrive = transmit(
                        &mut self.latency,
                        &self.plan,
                        &mut stats,
                        &mut root,
                        false,
                        Message {
                            from: NodeId::Worker(i),
                            to: NodeId::Master,
                            round: t,
                            payload: Payload::LocalCost { cost: local_costs[i] },
                        },
                        done,
                    );
                    *cost_ready = cost_ready.max(arrive);
                }
            }
            let live_shard: Vec<bool> = shard_cost_ready.iter().map(|v| v.is_finite()).collect();

            // (2) shard-masters → root: straggler candidates, combined in
            // ascending shard order with the same strict > the flat scan
            // uses — exact, so the elected straggler is identical.
            let mut t_root = f64::NEG_INFINITY;
            let mut best: Option<(f64, usize)> = None;
            for k in 0..m {
                if !live_shard[k] {
                    continue;
                }
                let range = self.layout.range(k);
                let candidate =
                    elect_straggler(&local_costs[range.clone()], &participants[range.clone()])
                        .expect("a live shard has a participant");
                let global_idx = range.start + candidate.straggler;
                let arrive = transmit(
                    &mut self.latency,
                    &self.plan,
                    &mut stats,
                    &mut root,
                    true,
                    Message {
                        from: NodeId::Master,
                        to: NodeId::Master,
                        round: t,
                        payload: Payload::ShardAggregate {
                            max_cost: candidate.global_cost,
                            straggler: global_idx,
                            share: self.shares[global_idx],
                        },
                    },
                    shard_cost_ready[k],
                );
                t_root = t_root.max(arrive);
                match best {
                    None => best = Some((candidate.global_cost, global_idx)),
                    Some((b, _)) if candidate.global_cost > b => {
                        best = Some((candidate.global_cost, global_idx))
                    }
                    Some(_) => {}
                }
            }
            let (global_cost, straggler) = best.expect("alive_count > 0 elects a straggler");
            debug_assert_eq!(
                elect_straggler(&local_costs, &participants).map(|e| e.straggler),
                Some(straggler),
                "shard-order candidate combination must reproduce the flat scan"
            );

            // (3) coordination down both tiers; eq. (5) decisions back up
            // to the shard-masters.
            let alpha_t = self.alpha;
            let mut next_shares = self.shares.clone();
            let mut shard_dec_ready = shard_cost_ready.clone();
            for k in 0..m {
                if !live_shard[k] {
                    continue;
                }
                let at_shard = transmit(
                    &mut self.latency,
                    &self.plan,
                    &mut stats,
                    &mut root,
                    true,
                    Message {
                        from: NodeId::Master,
                        to: NodeId::Master,
                        round: t,
                        payload: Payload::ShardCoordination {
                            global_cost,
                            alpha: alpha_t,
                            straggler,
                        },
                    },
                    t_root,
                );
                shard_dec_ready[k] = at_shard;
                for i in self.layout.range(k) {
                    if down[i] {
                        continue;
                    }
                    let at_worker = transmit(
                        &mut self.latency,
                        &self.plan,
                        &mut stats,
                        &mut root,
                        false,
                        Message {
                            from: NodeId::Master,
                            to: NodeId::Worker(i),
                            round: t,
                            payload: Payload::Coordination {
                                global_cost,
                                alpha: alpha_t,
                                is_straggler: i == straggler,
                            },
                        },
                        at_shard,
                    );
                    if i == straggler {
                        continue;
                    }
                    next_shares[i] = assist_step(&fns[i], self.shares[i], global_cost, alpha_t);
                    ready_at[i] = at_worker;
                    let at_master = transmit(
                        &mut self.latency,
                        &self.plan,
                        &mut stats,
                        &mut root,
                        false,
                        Message {
                            from: NodeId::Worker(i),
                            to: NodeId::Master,
                            round: t,
                            payload: Payload::Decision { share: next_shares[i] },
                        },
                        at_worker,
                    );
                    shard_dec_ready[k] = shard_dec_ready[k].max(at_master);
                }
            }

            // (4) the two ascending chained sums (see `chain_token`): the
            // guarded pin, decomposed exactly as
            // `coordinator::guarded_straggler_pin` computes it.
            let (total_gain, t_gain) = chain_token(
                &self.layout,
                &live_shard,
                &shard_dec_ready,
                straggler,
                |i| next_shares[i] - self.shares[i],
                t_root,
                t,
                &mut self.latency,
                &self.plan,
                &mut stats,
                &mut root,
            );
            let s_old = self.shares[straggler];
            let mut t_pin = t_gain;
            if total_gain > s_old && total_gain > 0.0 {
                let scale = s_old / total_gain;
                let mut rescale_done = shard_dec_ready.clone();
                for k in 0..m {
                    if !live_shard[k] {
                        continue;
                    }
                    rescale_done[k] = transmit(
                        &mut self.latency,
                        &self.plan,
                        &mut stats,
                        &mut root,
                        true,
                        Message {
                            from: NodeId::Master,
                            to: NodeId::Master,
                            round: t,
                            payload: Payload::ShardRescale { scale },
                        },
                        t_gain,
                    );
                }
                for (j, next) in next_shares.iter_mut().enumerate() {
                    if j != straggler {
                        *next = self.shares[j] + scale * (*next - self.shares[j]);
                    }
                }
                shard_dec_ready = rescale_done;
                t_pin = t_gain;
            }
            let (others, t_others) = chain_token(
                &self.layout,
                &live_shard,
                &shard_dec_ready,
                straggler,
                |i| next_shares[i],
                t_pin,
                t,
                &mut self.latency,
                &self.plan,
                &mut stats,
                &mut root,
            );
            let s_share = (1.0 - others).max(0.0);
            next_shares[straggler] = s_share;
            self.alpha = tighten_alpha(self.alpha, member_count, s_share);

            // (5) assignment routed root → shard-master → straggler.
            let at_shard = transmit(
                &mut self.latency,
                &self.plan,
                &mut stats,
                &mut root,
                true,
                Message {
                    from: NodeId::Master,
                    to: NodeId::Master,
                    round: t,
                    payload: Payload::StragglerAssignment { share: s_share },
                },
                t_others,
            );
            let control_finished = transmit(
                &mut self.latency,
                &self.plan,
                &mut stats,
                &mut root,
                false,
                Message {
                    from: NodeId::Master,
                    to: NodeId::Worker(straggler),
                    round: t,
                    payload: Payload::StragglerAssignment { share: s_share },
                },
                at_shard,
            );
            ready_at[straggler] = control_finished;

            let executed = Allocation::from_update(self.shares.clone())
                .expect("protocol preserves feasibility");
            trace.push(ProtocolRound {
                round: t,
                allocation: executed,
                local_costs,
                global_cost,
                straggler,
                messages: stats.messages,
                bytes: stats.bytes,
                retries: stats.retries,
                acks: stats.acks,
                duplicates: stats.duplicates,
                compute_finished,
                control_finished,
                active: participants,
                alpha: self.alpha,
            });
            root_rounds.push(root);
            self.shares = next_shares;
        }
        ShardedRun { trace: ProtocolTrace { architecture: "sharded", rounds: trace }, root_rounds }
    }
}

/// Sends one logical message at `at`, driving the fault plan and the
/// stats exactly as the flat simulators do; returns the delivery time.
/// Messages with the root as an endpoint are additionally booked on the
/// root tier's counters.
fn transmit<L: LatencyModel>(
    latency: &mut L,
    plan: &FaultPlan,
    stats: &mut LinkStats,
    root: &mut RootTierRound,
    touches_root: bool,
    msg: Message,
    at: f64,
) -> f64 {
    let delay = latency.delay(&msg);
    assert!(delay >= 0.0, "latency model produced a negative delay");
    let outcome = plan.transmit(&msg, delay);
    stats.record(&msg, &outcome);
    if touches_root {
        root.messages += 1;
        root.bytes += msg.size_bytes();
    }
    at + outcome.delivery_delay
}

/// Chains a running-sum token through the shards in ascending shard
/// order; every shard folds its slice **elementwise** (skipping only the
/// straggler), so the adds happen in exactly the flat ascending worker
/// order and the sum is bitwise identical to the flat master's.
///
/// Unresponsive shards are replayed by the root from its checkpoint, in
/// place: the token is routed back to the root for the dead slice and
/// onward to the next live shard, keeping the fold order intact at the
/// cost of O(slice) root work — but no extra protocol stall.
#[allow(clippy::too_many_arguments)]
fn chain_token<L: LatencyModel>(
    layout: &ShardLayout,
    live_shard: &[bool],
    shard_ready: &[f64],
    straggler: usize,
    contribution: impl Fn(usize) -> f64,
    start_time: f64,
    round: usize,
    latency: &mut L,
    plan: &FaultPlan,
    stats: &mut LinkStats,
    root: &mut RootTierRound,
) -> (f64, f64) {
    let mut sum = 0.0f64;
    let mut time = start_time;
    let mut at_root = true;
    let hop = |sum: f64,
               time: f64,
               touches_root: bool,
               latency: &mut L,
               stats: &mut LinkStats,
               root: &mut RootTierRound| {
        transmit(
            latency,
            plan,
            stats,
            root,
            touches_root,
            Message {
                from: NodeId::Master,
                to: NodeId::Master,
                round,
                payload: Payload::ShardPartial { sum },
            },
            time,
        )
    };
    for k in 0..layout.num_shards() {
        if live_shard[k] {
            // Token hop to shard k: from the root (first hop or after a
            // checkpoint replay) or from the previous live shard.
            let arrive = hop(sum, time, at_root, latency, stats, root);
            time = arrive.max(shard_ready[k]);
            at_root = false;
        } else if !at_root {
            // Route the token home so the root can replay the dead
            // shard's checkpointed slice in order.
            time = hop(sum, time, true, latency, stats, root);
            at_root = true;
        }
        for i in layout.range(k) {
            if i != straggler {
                sum += contribution(i);
            }
        }
    }
    if !at_root {
        time = hop(sum, time, true, latency, stats, root);
    }
    (sum, time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{FixedLatency, JitteredLatency};
    use crate::master_worker::MasterWorkerSim;
    use dolbie_core::environment::{RotatingStragglerEnvironment, StaticLinearEnvironment};

    fn assert_bitwise(a: &ProtocolTrace, b: &ProtocolTrace) {
        assert_eq!(a.rounds.len(), b.rounds.len());
        for (x, y) in a.rounds.iter().zip(&b.rounds) {
            for (u, v) in x.allocation.iter().zip(y.allocation.iter()) {
                assert_eq!(u.to_bits(), v.to_bits(), "round {}", x.round);
            }
            assert_eq!(x.straggler, y.straggler, "round {}", x.round);
            assert_eq!(x.global_cost.to_bits(), y.global_cost.to_bits(), "round {}", x.round);
            assert_eq!(x.alpha.to_bits(), y.alpha.to_bits(), "round {}", x.round);
            assert_eq!(x.active, y.active, "round {}", x.round);
        }
    }

    #[test]
    fn sharded_matches_master_worker_bitwise_lossless() {
        for shards in [1usize, 2, 3, 4] {
            let env = RotatingStragglerEnvironment::new(12, 5, 8.0, 1.0);
            let flat =
                MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(60);
            let sharded =
                ShardedSim::new(env, DolbieConfig::new(), FixedLatency::lan(), shards).run(60);
            assert_bitwise(&sharded.trace, &flat);
        }
    }

    #[test]
    fn sharded_decisions_survive_lossy_links_unchanged() {
        let env = StaticLinearEnvironment::from_slopes(vec![5.0, 1.0, 2.0, 3.0, 2.5, 1.5]);
        let clean =
            MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(25);
        let mut lossy = ShardedSim::new(env, DolbieConfig::new(), FixedLatency::lan(), 3)
            .with_fault_plan(
                FaultPlan::seeded(42).with_drop_probability(0.3).with_duplicate_probability(0.1),
            );
        let run = lossy.run(25);
        assert_bitwise(&run.trace, &clean);
        assert!(run.trace.total_retries() > 0, "30% loss must retransmit");
        assert!(run.trace.makespan() > clean.makespan(), "retransmission waits cost wall-clock");
    }

    #[test]
    fn sharded_matches_master_worker_bitwise_under_crashes() {
        let env = RotatingStragglerEnvironment::new(10, 4, 6.0, 1.0);
        let plan = FaultPlan::seeded(7)
            .with_drop_probability(0.2)
            .with_crash(Crash { worker: 3, from_round: 5, until_round: 11 })
            .with_crash(Crash { worker: 8, from_round: 9, until_round: 14 });
        let flat = MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(plan.clone())
            .run(30);
        let sharded = ShardedSim::new(env, DolbieConfig::new(), FixedLatency::lan(), 4)
            .with_fault_plan(plan)
            .run(30);
        assert_bitwise(&sharded.trace, &flat);
    }

    #[test]
    fn sharded_matches_master_worker_bitwise_through_epochs() {
        let env = RotatingStragglerEnvironment::new(9, 4, 6.0, 1.0);
        let schedule = MembershipSchedule::random(0xD01B, 9, 40, 0.1, 0.12);
        let flat = MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
            .with_membership(schedule.clone())
            .run(40);
        let sharded = ShardedSim::new(env, DolbieConfig::new(), FixedLatency::lan(), 3)
            .with_membership(schedule)
            .run(40);
        assert_bitwise(&sharded.trace, &flat);
    }

    #[test]
    fn shard_master_crash_is_the_slicewise_crash_of_the_flat_architecture() {
        // Shard 1 of three (workers 3..6) dies for rounds 4..9; the flat
        // reference crashes those workers individually. Trajectories must
        // agree bitwise, and the dark slice's shares must stay frozen.
        let env = RotatingStragglerEnvironment::new(9, 4, 6.0, 1.0);
        let mut flat_plan = FaultPlan::seeded(3).with_drop_probability(0.15);
        for worker in 3..6 {
            flat_plan.crashes.push(Crash { worker, from_round: 4, until_round: 9 });
        }
        let flat = MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(flat_plan)
            .run(20);
        let sharded = ShardedSim::new(env, DolbieConfig::new(), FixedLatency::lan(), 3)
            .with_fault_plan(FaultPlan::seeded(3).with_drop_probability(0.15))
            .with_shard_master_crash(1, 4, 9)
            .run(20);
        assert_bitwise(&sharded.trace, &flat);
        let frozen: Vec<f64> =
            (3..6).map(|i| sharded.trace.rounds[4].allocation.share(i)).collect();
        for t in 4..9 {
            let r = &sharded.trace.rounds[t];
            for (j, i) in (3..6).enumerate() {
                assert!(!r.active[i], "round {t}: dark shard must not participate");
                assert_eq!(
                    r.allocation.share(i).to_bits(),
                    frozen[j].to_bits(),
                    "round {t}: dark shard's share must stay frozen"
                );
            }
        }
        assert!(sharded.trace.rounds[19].active.iter().all(|&a| a), "shard recovered");
    }

    #[test]
    fn whole_shard_membership_drain_redistributes_onto_siblings() {
        // A schedule decommissions shard 1's workers (3..6) at round 6:
        // their shares must drain into the surviving shards (simplex
        // preserved), and the flat reference agrees bitwise.
        let env = RotatingStragglerEnvironment::new(9, 4, 6.0, 1.0);
        let mut schedule = MembershipSchedule::none();
        for worker in 3..6 {
            schedule = schedule.with_leave(6, worker, crate::membership::LeaveKind::Graceful);
        }
        let flat = MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
            .with_membership(schedule.clone())
            .run(16);
        let sharded = ShardedSim::new(env, DolbieConfig::new(), FixedLatency::lan(), 3)
            .with_membership(schedule)
            .run(16);
        assert_bitwise(&sharded.trace, &flat);
        for t in 6..16 {
            let r = &sharded.trace.rounds[t];
            for i in 3..6 {
                assert_eq!(r.allocation.share(i), 0.0, "round {t}: departed worker holds zero");
            }
            let sum: f64 = r.allocation.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "round {t}: drained mass stays on the simplex");
        }
    }

    #[test]
    fn root_tier_traffic_is_o_of_m_not_o_of_n() {
        // Lossless, everyone alive: per round the root exchanges exactly
        // 2M + 5 messages (M aggregates, M coordination broadcasts, two
        // hops per chained sum, one assignment) regardless of N — while
        // total traffic, like the flat master's, scales with N.
        let n = 24;
        for shards in [1usize, 2, 4, 8] {
            let env = RotatingStragglerEnvironment::new(n, 5, 8.0, 1.0);
            let run = ShardedSim::new(env, DolbieConfig::new(), FixedLatency::lan(), shards).run(8);
            for (t, r) in run.root_rounds.iter().enumerate() {
                assert_eq!(r.messages, 2 * shards + 5, "round {t}, M={shards}");
            }
            // N costs + M aggregates + (M + N) coordinations + (N − 1)
            // decisions + 2(M + 1) chain hops + 2 assignment hops.
            for r in &run.trace.rounds {
                assert_eq!(r.messages, 3 * n + 4 * shards + 3, "total tier traffic");
            }
        }
    }

    #[test]
    fn sharded_wall_clock_is_latency_dependent_but_decisions_are_not() {
        let env = StaticLinearEnvironment::from_slopes(vec![5.0, 1.0, 2.0, 3.0]);
        let fast =
            ShardedSim::new(env.clone(), DolbieConfig::new(), FixedLatency::instant(), 2).run(15);
        let slow = ShardedSim::new(
            env,
            DolbieConfig::new(),
            JitteredLatency::new(FixedLatency::new(0.5, 1e3), 0.2, 7),
            2,
        )
        .run(15);
        assert_bitwise(&fast.trace, &slow.trace);
        assert!(slow.trace.makespan() > fast.trace.makespan());
    }
}
