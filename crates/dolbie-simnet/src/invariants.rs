//! The five chaos invariants, defined once.
//!
//! PR 4's chaos sweep and PR 9's net-tier sweep each carried a private
//! copy of the same five machine-checked invariants; the model checker
//! would have been a third. This module is the single definition all
//! three consume:
//!
//! 1. **Simplex feasibility** — every executed allocation sums to 1
//!    within [`SIMPLEX_TOL`] with no negative share.
//! 2. **α monotonicity** — the eq. (7) step size never rises.
//! 3. **No stranded share** — a departed worker holds exactly `0.0` and
//!    is never marked active.
//! 4. **Architecture agreement** — compared pairs of rounds match
//!    *bitwise* ([`rounds_agree_bitwise`]). Which pairs are compared is
//!    policy and stays at the call sites (the chaos sweep's type A/B
//!    split, the net sweep's sequential twin, the model checker's
//!    confluence groups).
//! 5. **Termination** — a run produces exactly the requested number of
//!    rounds (a sim that deadlocks panics instead; harnesses catch the
//!    unwind and report it under this invariant too).
//!
//! Detectors come in two layers: structured predicates (pure logic,
//! callers own the wording — the net sweep's "buried worker" vs the
//! sim sweeps' "departed worker") and the [`check_trace`] convenience
//! that runs invariants 1, 2, 3, and 5 over a whole [`ProtocolTrace`]
//! with the chaos sweep's canonical wording.

use crate::trace::{ProtocolRound, ProtocolTrace};

/// Per-round simplex tolerance shared by every harness (`|Σx − 1| <
/// 1e-9`; the tighter 1e-12 bound applies only at final-state checks,
/// where compensated summation has no in-flight rounding to absorb).
pub const SIMPLEX_TOL: f64 = 1e-9;

/// Invariant 1 violation: the allocation left the probability simplex.
#[derive(Debug, Clone, PartialEq)]
pub enum SimplexViolation {
    /// `Σx` strayed from 1 by at least the tolerance.
    Sum(f64),
    /// A share went negative.
    Negative {
        /// The offending worker.
        worker: usize,
        /// Its (negative) share.
        share: f64,
    },
}

/// Checks invariant 1 over one executed allocation. Checks the sum
/// first, then scans for negative shares in ascending worker order —
/// the detection order both sweeps always used, kept so shrunk
/// reproducers print the same first violation as before the dedup.
#[must_use]
pub fn simplex_violation(shares: &[f64], tol: f64) -> Option<SimplexViolation> {
    let sum: f64 = shares.iter().sum();
    if (sum - 1.0).abs() >= tol {
        return Some(SimplexViolation::Sum(sum));
    }
    shares
        .iter()
        .enumerate()
        .find(|(_, &x)| x < 0.0)
        .map(|(worker, &share)| SimplexViolation::Negative { worker, share })
}

/// Invariant 2 violation: α rose between consecutive rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaRise {
    /// α before the offending round.
    pub previous: f64,
    /// The (larger) α the round reported.
    pub alpha: f64,
}

/// Running invariant-2 monitor: feed it each round's α in order.
#[derive(Debug, Clone)]
pub struct AlphaMonotone {
    previous: f64,
}

impl AlphaMonotone {
    /// Starts a fresh monitor (any first α is admissible).
    #[must_use]
    pub fn new() -> Self {
        Self { previous: f64::INFINITY }
    }

    /// Observes the next round's α; reports a violation if it rose.
    pub fn observe(&mut self, alpha: f64) -> Option<AlphaRise> {
        if alpha > self.previous {
            return Some(AlphaRise { previous: self.previous, alpha });
        }
        self.previous = alpha;
        None
    }
}

impl Default for AlphaMonotone {
    fn default() -> Self {
        Self::new()
    }
}

/// Invariant 3 violation: state left on a worker outside the membership.
#[derive(Debug, Clone, PartialEq)]
pub enum StrandedShare {
    /// A departed worker still holds a non-zero share.
    Share {
        /// The departed worker.
        worker: usize,
        /// The share stranded on it (must be exactly `0.0`).
        share: f64,
    },
    /// A departed worker was marked active in the decision phase.
    Active {
        /// The departed worker.
        worker: usize,
    },
}

/// Checks invariant 3 for one round: every non-member must hold exactly
/// `0.0` (bitwise — redistribution lands departing shares at a true
/// zero, not a rounding residue) and must not appear in the round's
/// active set. Pass `active = None` when the representation has no
/// per-round activity record (the net sweep's stitched allocations).
#[must_use]
pub fn stranded_violation(
    members: &[bool],
    shares: &[f64],
    active: Option<&[bool]>,
) -> Option<StrandedShare> {
    for (worker, &m) in members.iter().enumerate() {
        if m {
            continue;
        }
        if shares[worker] != 0.0 {
            return Some(StrandedShare::Share { worker, share: shares[worker] });
        }
        if active.is_some_and(|a| a[worker]) {
            return Some(StrandedShare::Active { worker });
        }
    }
    None
}

/// Invariant 4 comparator: two rounds agree *bitwise* — identical
/// allocation (`l2 == 0` exactly), identical straggler, identical α bit
/// pattern. Which rounds must agree is the caller's policy.
#[must_use]
pub fn rounds_agree_bitwise(a: &ProtocolRound, b: &ProtocolRound) -> bool {
    a.allocation.l2_distance(&b.allocation) == 0.0
        && a.straggler == b.straggler
        && a.alpha.to_bits() == b.alpha.to_bits()
}

/// Invariant 5: `produced` rounds must equal `expected`.
#[must_use]
pub fn termination_violation(produced: usize, expected: usize) -> bool {
    produced != expected
}

/// Runs invariants 5, 1, 2, and 3 over a full trace with the chaos
/// sweep's canonical wording and detection order (termination, then per
/// round: simplex sum, negative share, α rise, stranded share, stranded
/// active). `members_at(t)` must return the membership mask in force at
/// round `t`.
///
/// Invariant 4 is deliberately absent: it compares *across* runs.
pub fn check_trace(
    trace: &ProtocolTrace,
    expected_rounds: usize,
    mut members_at: impl FnMut(usize) -> Vec<bool>,
) -> Result<(), String> {
    if termination_violation(trace.rounds.len(), expected_rounds) {
        return Err(format!(
            "termination: {} produced {} of {} rounds",
            trace.architecture,
            trace.rounds.len(),
            expected_rounds
        ));
    }
    let mut alpha = AlphaMonotone::new();
    for r in &trace.rounds {
        if let Some(v) = simplex_violation(r.allocation.as_slice(), SIMPLEX_TOL) {
            return Err(match v {
                SimplexViolation::Sum(sum) => format!(
                    "feasibility: {} round {} sums to {sum:.12}",
                    trace.architecture, r.round
                ),
                SimplexViolation::Negative { worker, share } => format!(
                    "feasibility: {} round {} gives worker {worker} share {share:e}",
                    trace.architecture, r.round
                ),
            });
        }
        if let Some(rise) = alpha.observe(r.alpha) {
            return Err(format!(
                "alpha: {} round {} raised α {:.12} -> {:.12}",
                trace.architecture, r.round, rise.previous, rise.alpha
            ));
        }
        let members = members_at(r.round);
        if let Some(v) = stranded_violation(&members, r.allocation.as_slice(), Some(&r.active)) {
            return Err(match v {
                StrandedShare::Share { worker, share } => format!(
                    "stranded share: {} round {} leaves {share:.3e} on departed worker {worker}",
                    trace.architecture, r.round
                ),
                StrandedShare::Active { worker } => format!(
                    "stranded share: {} round {} marks departed worker {worker} active",
                    trace.architecture, r.round
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simplex_catches_sum_and_negativity_in_that_order() {
        assert_eq!(simplex_violation(&[0.5, 0.5], SIMPLEX_TOL), None);
        assert_eq!(simplex_violation(&[0.7, 0.5], SIMPLEX_TOL), Some(SimplexViolation::Sum(1.2)));
        // Sum is fine, one share negative.
        assert_eq!(
            simplex_violation(&[1.25, -0.25], SIMPLEX_TOL),
            Some(SimplexViolation::Negative { worker: 1, share: -0.25 })
        );
    }

    #[test]
    fn alpha_monotone_allows_flat_and_falling_only() {
        let mut m = AlphaMonotone::new();
        assert_eq!(m.observe(0.5), None);
        assert_eq!(m.observe(0.5), None);
        assert_eq!(m.observe(0.3), None);
        assert_eq!(m.observe(0.4), Some(AlphaRise { previous: 0.3, alpha: 0.4 }));
    }

    #[test]
    fn stranded_checks_share_then_activity() {
        let members = [true, false];
        assert_eq!(stranded_violation(&members, &[1.0, 0.0], None), None);
        assert_eq!(
            stranded_violation(&members, &[0.9, 0.1], None),
            Some(StrandedShare::Share { worker: 1, share: 0.1 })
        );
        assert_eq!(
            stranded_violation(&members, &[1.0, 0.0], Some(&[true, true])),
            Some(StrandedShare::Active { worker: 1 })
        );
        // Exact-zero contract: a subnormal residue is a violation.
        assert!(stranded_violation(&members, &[1.0, f64::MIN_POSITIVE], None).is_some());
    }

    #[test]
    fn termination_is_exact() {
        assert!(!termination_violation(5, 5));
        assert!(termination_violation(4, 5));
        assert!(termination_violation(6, 5));
    }
}
