//! A deterministic discrete-event queue.
//!
//! Events are ordered by simulated time with a monotonically increasing
//! sequence number as the tie-breaker, so two runs over the same inputs
//! produce identical schedules — the property the trajectory-equivalence
//! tests rely on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulated time.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Simulated time at which the event fires.
    pub time: f64,
    seq: u64,
    /// The event itself.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use dolbie_simnet::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// q.schedule(1.0, "early-second");
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: f64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0, now: 0.0 }
    }

    /// Creates an empty queue with room for `capacity` events.
    ///
    /// The protocol simulations know each round's expected message count
    /// up front (e.g. `3N` for master–worker, `N(N−1) + N − 1` for
    /// fully-distributed), so pre-reserving here removes every heap
    /// reallocation from the per-round hot path.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { heap: BinaryHeap::with_capacity(capacity), next_seq: 0, now: 0.0 }
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `event` at absolute simulated time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is non-finite or earlier than the current time
    /// (events cannot fire in the past).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(time + 1e-12 >= self.now, "cannot schedule into the past: {time} < {}", self.now);
        self.heap.push(Scheduled { time: time.max(self.now), seq: self.next_seq, event });
        self.next_seq += 1;
    }

    /// Pops the earliest event, advancing the simulated clock to its time.
    ///
    /// The clock never runs backwards: after an out-of-order
    /// [`pop_nth`](Self::pop_nth) jumped `now` past earlier pending
    /// events, popping one of those stragglers keeps the later clock. In
    /// FIFO-only use the `max` is a no-op — the heap minimum is always
    /// `>= now` — so historical traces are unaffected bitwise.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let next = self.heap.pop()?;
        self.now = next.time.max(self.now);
        Some(next)
    }

    /// Pops the event of `rank` in the canonical `(time, seq)` order
    /// (`pop_nth(0)` is exactly [`pop`](Self::pop)), skipping over the
    /// `rank` earlier events, which stay pending with their original
    /// times and sequence numbers.
    ///
    /// This is the model checker's delivery-order injection point: a
    /// scheduler enumerating ranks enumerates every delivery
    /// interleaving. Out-of-order delivery advances the clock to the
    /// *chosen* event's time (simulated time is observational here — the
    /// protocol's behaviour must not depend on it, which is exactly what
    /// the model checker verifies), and skipped events deliver later
    /// under the never-backwards clock rule.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= len()`.
    pub fn pop_nth(&mut self, rank: usize) -> Option<Scheduled<E>> {
        assert!(rank < self.heap.len(), "pop_nth rank {rank} out of range {}", self.heap.len());
        if rank == 0 {
            return self.pop();
        }
        let mut skipped = Vec::with_capacity(rank);
        for _ in 0..rank {
            skipped.push(self.heap.pop().expect("rank checked against len"));
        }
        let chosen = self.heap.pop().expect("rank checked against len");
        // Re-push directly (not through `schedule`): the skipped events
        // keep their original seq numbers, so the canonical order of the
        // remaining multiset is unchanged.
        for s in skipped {
            self.heap.push(s);
        }
        self.now = chosen.time.max(self.now);
        Some(chosen)
    }

    /// Visits every pending event in unspecified order — the model
    /// checker folds these into an order-independent multiset
    /// fingerprint, so iteration order must not matter to the caller.
    pub fn for_each_pending(&self, mut visit: impl FnMut(&E)) {
        for s in self.heap.iter() {
            visit(&s.event);
        }
    }

    /// Pops every event with `time <= deadline` into `out`, in schedule
    /// order, advancing the clock to the last drained event's time.
    ///
    /// This is the batch fast path for "deliver everything due by `t`":
    /// one call replaces a peek/pop loop at the call site, and `out` is
    /// appended to (not cleared) so a caller-owned buffer can be recycled
    /// across rounds without reallocating.
    pub fn drain_until(&mut self, deadline: f64, out: &mut Vec<Scheduled<E>>) {
        while let Some(next) = self.heap.peek() {
            if next.time > deadline {
                break;
            }
            let next = self.heap.pop().expect("peeked event must pop");
            self.now = next.time;
            out.push(next);
        }
    }

    /// The current simulated time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        let expected: Vec<i32> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.schedule(4.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 1.0);
        // Scheduling relative to now is fine.
        q.schedule(q.now() + 0.5, ());
        q.pop();
        assert_eq!(q.now(), 1.5);
        q.pop();
        assert_eq!(q.now(), 4.0);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
    }

    #[test]
    fn drain_until_takes_due_events_in_order_and_advances_the_clock() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(3.0, 3);
        q.schedule(2.0, 2);
        q.schedule(2.0, 22);
        let mut due = Vec::new();
        q.drain_until(2.0, &mut due);
        assert_eq!(due.iter().map(|s| s.event).collect::<Vec<_>>(), vec![1, 2, 22]);
        assert_eq!(q.now(), 2.0);
        assert_eq!(q.len(), 1);
        // The buffer is appended to, not cleared, so it can be recycled.
        q.drain_until(5.0, &mut due);
        assert_eq!(due.iter().map(|s| s.event).collect::<Vec<_>>(), vec![1, 2, 22, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_until_before_first_event_is_a_no_op() {
        let mut q = EventQueue::new();
        q.schedule(4.0, ());
        let mut due = Vec::new();
        q.drain_until(3.9, &mut due);
        assert!(due.is_empty());
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.len(), 1);
    }

    /// Pre-reserving the round's expected message count means scheduling
    /// that many events never grows the heap — the capacity regression
    /// guard for the per-round hot path.
    #[test]
    fn with_capacity_prevents_reallocation_for_the_expected_load() {
        let expected = 3 * 100; // master–worker round at N = 100
        let mut q = EventQueue::with_capacity(expected);
        let initial = q.capacity();
        assert!(initial >= expected);
        for i in 0..expected {
            q.schedule(i as f64 * 0.25, i);
        }
        assert_eq!(q.capacity(), initial, "scheduling the expected load must not reallocate");
        let mut drained = Vec::with_capacity(expected);
        q.drain_until(f64::INFINITY, &mut drained);
        assert_eq!(drained.len(), expected);
    }

    #[test]
    fn reserve_grows_capacity() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.reserve(64);
        assert!(q.capacity() >= 64);
    }

    #[test]
    fn pop_nth_zero_is_pop() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for (t, e) in [(2.0, 2), (1.0, 1), (1.0, 11)] {
            a.schedule(t, e);
            b.schedule(t, e);
        }
        while !a.is_empty() {
            let x = a.pop_nth(0).unwrap();
            let y = b.pop().unwrap();
            assert_eq!(x.event, y.event);
            assert_eq!(x.time.to_bits(), y.time.to_bits());
            assert_eq!(a.now().to_bits(), b.now().to_bits());
        }
    }

    #[test]
    fn pop_nth_skips_earlier_events_and_preserves_their_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        q.schedule(3.0, 3);
        q.schedule(3.0, 33); // FIFO tie with 3
        assert_eq!(q.pop_nth(2).unwrap().event, 3);
        assert_eq!(q.now(), 3.0);
        // Skipped events remain, in canonical order; the clock holds.
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.now(), 3.0);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 33);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_nth_then_schedule_relative_to_now_is_legal() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(5.0, 5);
        assert_eq!(q.pop_nth(1).unwrap().event, 5);
        // A reply scheduled "now + delay" lands after the jumped clock,
        // not before the still-pending earlier event.
        q.schedule(q.now() + 0.5, 55);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 55);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pop_nth_out_of_range_panics() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.pop_nth(1);
    }

    #[test]
    fn for_each_pending_visits_every_event_once() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(10.0 - i as f64, i);
        }
        let mut sum = 0;
        let mut count = 0;
        q.for_each_pending(|&e| {
            sum += e;
            count += 1;
        });
        assert_eq!(count, 10);
        assert_eq!(sum, 45);
    }
}
