//! A deterministic discrete-event queue.
//!
//! Events are ordered by simulated time with a monotonically increasing
//! sequence number as the tie-breaker, so two runs over the same inputs
//! produce identical schedules — the property the trajectory-equivalence
//! tests rely on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulated time.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Simulated time at which the event fires.
    pub time: f64,
    seq: u64,
    /// The event itself.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use dolbie_simnet::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// q.schedule(1.0, "early-second");
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: f64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0, now: 0.0 }
    }

    /// Creates an empty queue with room for `capacity` events.
    ///
    /// The protocol simulations know each round's expected message count
    /// up front (e.g. `3N` for master–worker, `N(N−1) + N − 1` for
    /// fully-distributed), so pre-reserving here removes every heap
    /// reallocation from the per-round hot path.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { heap: BinaryHeap::with_capacity(capacity), next_seq: 0, now: 0.0 }
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `event` at absolute simulated time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is non-finite or earlier than the current time
    /// (events cannot fire in the past).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(time + 1e-12 >= self.now, "cannot schedule into the past: {time} < {}", self.now);
        self.heap.push(Scheduled { time: time.max(self.now), seq: self.next_seq, event });
        self.next_seq += 1;
    }

    /// Pops the earliest event, advancing the simulated clock to its time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let next = self.heap.pop()?;
        self.now = next.time;
        Some(next)
    }

    /// Pops every event with `time <= deadline` into `out`, in schedule
    /// order, advancing the clock to the last drained event's time.
    ///
    /// This is the batch fast path for "deliver everything due by `t`":
    /// one call replaces a peek/pop loop at the call site, and `out` is
    /// appended to (not cleared) so a caller-owned buffer can be recycled
    /// across rounds without reallocating.
    pub fn drain_until(&mut self, deadline: f64, out: &mut Vec<Scheduled<E>>) {
        while let Some(next) = self.heap.peek() {
            if next.time > deadline {
                break;
            }
            let next = self.heap.pop().expect("peeked event must pop");
            self.now = next.time;
            out.push(next);
        }
    }

    /// The current simulated time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        let expected: Vec<i32> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.schedule(4.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 1.0);
        // Scheduling relative to now is fine.
        q.schedule(q.now() + 0.5, ());
        q.pop();
        assert_eq!(q.now(), 1.5);
        q.pop();
        assert_eq!(q.now(), 4.0);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
    }

    #[test]
    fn drain_until_takes_due_events_in_order_and_advances_the_clock() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(3.0, 3);
        q.schedule(2.0, 2);
        q.schedule(2.0, 22);
        let mut due = Vec::new();
        q.drain_until(2.0, &mut due);
        assert_eq!(due.iter().map(|s| s.event).collect::<Vec<_>>(), vec![1, 2, 22]);
        assert_eq!(q.now(), 2.0);
        assert_eq!(q.len(), 1);
        // The buffer is appended to, not cleared, so it can be recycled.
        q.drain_until(5.0, &mut due);
        assert_eq!(due.iter().map(|s| s.event).collect::<Vec<_>>(), vec![1, 2, 22, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_until_before_first_event_is_a_no_op() {
        let mut q = EventQueue::new();
        q.schedule(4.0, ());
        let mut due = Vec::new();
        q.drain_until(3.9, &mut due);
        assert!(due.is_empty());
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.len(), 1);
    }

    /// Pre-reserving the round's expected message count means scheduling
    /// that many events never grows the heap — the capacity regression
    /// guard for the per-round hot path.
    #[test]
    fn with_capacity_prevents_reallocation_for_the_expected_load() {
        let expected = 3 * 100; // master–worker round at N = 100
        let mut q = EventQueue::with_capacity(expected);
        let initial = q.capacity();
        assert!(initial >= expected);
        for i in 0..expected {
            q.schedule(i as f64 * 0.25, i);
        }
        assert_eq!(q.capacity(), initial, "scheduling the expected load must not reallocate");
        let mut drained = Vec::with_capacity(expected);
        q.drain_until(f64::INFINITY, &mut drained);
        assert_eq!(drained.len(), expected);
    }

    #[test]
    fn reserve_grows_capacity() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.reserve(64);
        assert!(q.capacity() >= 64);
    }
}
