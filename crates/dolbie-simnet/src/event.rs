//! A deterministic discrete-event queue.
//!
//! Events are ordered by simulated time with a monotonically increasing
//! sequence number as the tie-breaker, so two runs over the same inputs
//! produce identical schedules — the property the trajectory-equivalence
//! tests rely on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulated time.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Simulated time at which the event fires.
    pub time: f64,
    seq: u64,
    /// The event itself.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use dolbie_simnet::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// q.schedule(1.0, "early-second");
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: f64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0, now: 0.0 }
    }

    /// Schedules `event` at absolute simulated time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is non-finite or earlier than the current time
    /// (events cannot fire in the past).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(time + 1e-12 >= self.now, "cannot schedule into the past: {time} < {}", self.now);
        self.heap.push(Scheduled { time: time.max(self.now), seq: self.next_seq, event });
        self.next_seq += 1;
    }

    /// Pops the earliest event, advancing the simulated clock to its time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let next = self.heap.pop()?;
        self.now = next.time;
        Some(next)
    }

    /// The current simulated time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        let expected: Vec<i32> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.schedule(4.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 1.0);
        // Scheduling relative to now is fine.
        q.schedule(q.now() + 0.5, ());
        q.pop();
        assert_eq!(q.now(), 1.5);
        q.pop();
        assert_eq!(q.now(), 4.0);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
    }
}
