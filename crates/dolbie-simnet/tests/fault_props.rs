//! Property tests for the shared fault-injection subsystem: random seeded
//! fault plans (crash windows, lossy links, cost timeouts) never break
//! feasibility or deadlock any of the three protocol architectures, and
//! an empty plan reproduces the fault-free trace bitwise.

use dolbie_core::cost::{DynCost, LatencyCost, LinearCost};
use dolbie_core::environment::FnEnvironment;
use dolbie_core::DolbieConfig;
use dolbie_simnet::{
    Crash, FaultPlan, FixedLatency, FullyDistributedSim, MasterWorkerSim, Message, NodeId, Payload,
    ProtocolTrace, RetryPolicy, RingSim,
};
use proptest::prelude::*;

const ROUNDS: usize = 12;

/// Deterministic, seed-derived per-round latency costs.
fn seeded_costs(seed: u64, round: usize, n: usize) -> Vec<DynCost> {
    (0..n)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((round as u64) << 24)
                .wrapping_add(i as u64)
                .wrapping_mul(0x2545_F491_4F6C_DD1D);
            if h & 1 == 0 {
                let speed = 50.0 + (h % 2000) as f64;
                let comm = ((h >> 13) % 100) as f64 / 1000.0;
                Box::new(LatencyCost::new(256.0, speed, comm)) as DynCost
            } else {
                let slope = 0.1 + (h % 500) as f64 / 100.0;
                Box::new(LinearCost::new(slope, ((h >> 9) % 5) as f64 * 0.02)) as DynCost
            }
        })
        .collect()
}

fn env_for(seed: u64, n: usize) -> FnEnvironment<impl FnMut(usize) -> Vec<DynCost>> {
    FnEnvironment::new(n, move |round| seeded_costs(seed, round, n))
}

/// Derives up to `count` random-but-reproducible crash windows for an
/// `n`-worker cluster (avoids depending on collection strategies in the
/// vendored proptest subset).
fn seeded_crashes(crash_seed: u64, count: usize, n: usize) -> Vec<Crash> {
    (0..count)
        .map(|k| {
            let h = crash_seed.wrapping_add(k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let from = (h >> 8) as usize % ROUNDS;
            let len = 1 + (h >> 24) as usize % (ROUNDS / 2);
            Crash {
                worker: h as usize % n,
                from_round: from,
                until_round: (from + len).min(ROUNDS),
            }
        })
        .collect()
}

/// Every executed allocation must stay a feasible simplex point.
fn assert_feasible(trace: &ProtocolTrace) {
    prop_assert_eq!(trace.rounds.len(), ROUNDS, "no round may deadlock or be skipped");
    for r in &trace.rounds {
        let sum: f64 = r.allocation.iter().sum();
        prop_assert!(
            (sum - 1.0).abs() < 1e-9,
            "{} round {}: shares sum to {sum}",
            trace.architecture,
            r.round
        );
        for (i, &x) in r.allocation.iter().enumerate() {
            prop_assert!(
                x >= 0.0,
                "{} round {}: worker {i} got a negative share {x}",
                trace.architecture,
                r.round
            );
        }
        prop_assert!(
            r.control_finished >= 0.0 && r.compute_finished >= 0.0,
            "timestamps must be non-negative"
        );
    }
}

/// Bitwise equality of everything a fault-free plan must not perturb.
fn assert_bitwise_equal(a: &ProtocolTrace, b: &ProtocolTrace) {
    prop_assert_eq!(a.rounds.len(), b.rounds.len());
    for (x, y) in a.rounds.iter().zip(&b.rounds) {
        for (&p, &q) in x.allocation.iter().zip(y.allocation.iter()) {
            prop_assert_eq!(p.to_bits(), q.to_bits(), "{} round {}", a.architecture, x.round);
        }
        prop_assert_eq!(x.global_cost.to_bits(), y.global_cost.to_bits());
        prop_assert_eq!(x.compute_finished.to_bits(), y.compute_finished.to_bits());
        prop_assert_eq!(x.control_finished.to_bits(), y.control_finished.to_bits());
        prop_assert_eq!(x.straggler, y.straggler);
        prop_assert_eq!(x.messages, y.messages);
        prop_assert_eq!(x.bytes, y.bytes);
        prop_assert_eq!(x.retries + x.acks + x.duplicates, 0);
        prop_assert_eq!(y.retries + y.acks + y.duplicates, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary seeded fault plans — crash windows plus lossy links —
    /// keep every round of every architecture feasible and deadlock-free.
    #[test]
    fn random_fault_plans_never_break_feasibility(
        seed in 0u64..u64::MAX,
        fault_seed in 0u64..u64::MAX,
        crash_seed in 0u64..u64::MAX,
        num_crashes in 0usize..3,
        drop_p in 0.0f64..0.6,
        dup_p in 0.0f64..0.3,
        n in 2usize..6,
    ) {
        let mut plan = FaultPlan::seeded(fault_seed)
            .with_drop_probability(drop_p)
            .with_duplicate_probability(dup_p);
        for crash in seeded_crashes(crash_seed, num_crashes, n) {
            plan = plan.with_crash(crash);
        }
        let plan_has_no_crashes = plan.crashes.is_empty();

        let mw = MasterWorkerSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(plan.clone())
            .run(ROUNDS);
        let fd = FullyDistributedSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(plan.clone())
            .run(ROUNDS);
        let ring = RingSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(plan)
            .run(ROUNDS);
        assert_feasible(&mw);
        assert_feasible(&fd);
        assert_feasible(&ring);

        // The leaderless architectures share one recovery policy — they
        // agree through any crash/loss pattern. The master-worker protocol
        // agrees too unless a straggler tightens α and crashes before its
        // next broadcast (the master remembers what the peers physically
        // cannot), so its equality is asserted only for crash-free plans
        // here and pinned for concrete crash scenarios in the unit tests.
        for t in 0..ROUNDS {
            prop_assert!(fd.rounds[t].allocation.l2_distance(&ring.rounds[t].allocation) < 1e-9);
            if plan_has_no_crashes {
                prop_assert!(mw.rounds[t].allocation.l2_distance(&fd.rounds[t].allocation) < 1e-9);
            }
        }
    }

    /// Master-worker cost timeouts (coordinator-side exclusion) preserve
    /// feasibility and never deadlock, including combined with loss.
    #[test]
    fn random_timeout_plans_never_break_feasibility(
        seed in 0u64..u64::MAX,
        fault_seed in 0u64..u64::MAX,
        timeout in 0.02f64..1.0,
        drop_p in 0.0f64..0.4,
    ) {
        let n = 5;
        let plan = FaultPlan::seeded(fault_seed)
            .with_cost_timeout(timeout)
            .with_drop_probability(drop_p);
        let mw = MasterWorkerSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(plan)
            .run(ROUNDS);
        assert_feasible(&mw);
        // Exclusion accounting: a timeout round still books the excluded
        // worker's abandoned compute, so compute can only outlast control
        // when someone was excluded — and overhead is never negative.
        for r in &mw.rounds {
            prop_assert!(r.control_overhead() >= 0.0);
            if r.compute_finished > r.control_finished {
                prop_assert!(
                    r.active.iter().any(|&a| !a),
                    "round {}: compute outlasted control without an exclusion",
                    r.round
                );
            }
        }
    }

    /// An empty fault plan is bitwise invisible: every architecture
    /// reproduces its fault-free trace exactly, timestamps included.
    #[test]
    fn empty_plans_reproduce_fault_free_traces_bitwise(
        seed in 0u64..u64::MAX,
        plan_seed in 0u64..u64::MAX,
        n in 2usize..6,
    ) {
        // Seeded but lossless, crash-free: must take the zero-overhead
        // path, exactly like FaultPlan::none().
        let empty = FaultPlan::seeded(plan_seed);

        let mw_plain = MasterWorkerSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .run(ROUNDS);
        let mw_planned = MasterWorkerSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(empty.clone())
            .run(ROUNDS);
        assert_bitwise_equal(&mw_plain, &mw_planned);

        let fd_plain = FullyDistributedSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .run(ROUNDS);
        let fd_planned = FullyDistributedSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(empty.clone())
            .run(ROUNDS);
        assert_bitwise_equal(&fd_plain, &fd_planned);

        let ring_plain = RingSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .run(ROUNDS);
        let ring_planned = RingSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(empty)
            .run(ROUNDS);
        assert_bitwise_equal(&ring_plain, &ring_planned);
    }

    /// Loss alone (no crashes, no timeouts) never changes any decision:
    /// the retry layer makes lossy links a pure latency effect.
    #[test]
    fn loss_is_decision_invariant(
        seed in 0u64..u64::MAX,
        fault_seed in 0u64..u64::MAX,
        drop_p in 0.01f64..0.6,
        n in 2usize..6,
    ) {
        let plan = FaultPlan::seeded(fault_seed).with_drop_probability(drop_p);
        let clean = MasterWorkerSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .run(ROUNDS);
        let lossy = MasterWorkerSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(plan.clone())
            .run(ROUNDS);
        for (a, b) in clean.rounds.iter().zip(&lossy.rounds) {
            for (&p, &q) in a.allocation.iter().zip(b.allocation.iter()) {
                prop_assert_eq!(p.to_bits(), q.to_bits());
            }
            prop_assert_eq!(a.messages, b.messages, "logical counts are loss-invariant");
        }
        let ring_lossy = RingSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .with_fault_plan(plan)
            .run(ROUNDS);
        for (a, b) in clean.rounds.iter().zip(&ring_lossy.rounds) {
            prop_assert!(a.allocation.l2_distance(&b.allocation) < 1e-9);
        }
    }

    /// `FaultPlan::transmit` is a pure function of (plan, message): with
    /// drop, duplication, and a custom retry policy all active at once,
    /// transmitting the same message twice — in any order, interleaved
    /// with other traffic — yields identical outcomes, and the wire
    /// accounting stays internally consistent.
    #[test]
    fn transmit_is_deterministic_under_combined_faults(
        fault_seed in 0u64..u64::MAX,
        drop_p in 0.01f64..0.7,
        dup_p in 0.01f64..0.5,
        ack_timeout in 0.01f64..0.2,
        max_attempts in 2usize..12,
    ) {
        let plan = FaultPlan::seeded(fault_seed)
            .with_drop_probability(drop_p)
            .with_duplicate_probability(dup_p)
            .with_retry(RetryPolicy::new(ack_timeout, 2.0, max_attempts));
        let latency = 0.003;
        let messages: Vec<Message> = (0..ROUNDS)
            .flat_map(|t| {
                [
                    Message {
                        from: NodeId::Worker(t % 4),
                        to: NodeId::Master,
                        round: t,
                        payload: Payload::LocalCost { cost: 0.5 + t as f64 },
                    },
                    Message {
                        from: NodeId::Master,
                        to: NodeId::Worker((t + 1) % 4),
                        round: t,
                        payload: Payload::Coordination {
                            global_cost: 1.0,
                            alpha: 0.25,
                            is_straggler: t % 2 == 0,
                        },
                    },
                    Message {
                        from: NodeId::Worker(t % 4),
                        to: NodeId::Worker((t + 2) % 4),
                        round: t,
                        payload: Payload::Decision { share: 0.3 },
                    },
                ]
            })
            .collect();
        // First sweep in order, second sweep in reverse: path-independence
        // is what lets the event-driven simulators replay identically no
        // matter how deliveries interleave.
        let first: Vec<_> = messages.iter().map(|m| plan.transmit(m, latency)).collect();
        let second: Vec<_> = messages.iter().rev().map(|m| plan.transmit(m, latency)).collect();
        for (m, (a, b)) in messages.iter().zip(first.iter().zip(second.iter().rev())) {
            prop_assert_eq!(
                a.delivery_delay.to_bits(),
                b.delivery_delay.to_bits(),
                "round {} payload replayed differently",
                m.round
            );
            prop_assert_eq!(a.retries, b.retries);
            prop_assert_eq!(a.acks, b.acks);
            prop_assert_eq!(a.duplicates, b.duplicates);
            prop_assert_eq!(a.extra_bytes, b.extra_bytes);
            // Accounting invariants of the retry machinery.
            prop_assert!(a.delivery_delay >= latency, "delivery includes the link latency");
            prop_assert!(a.retries < max_attempts, "attempts are bounded");
            prop_assert!(a.acks >= 1, "the forced final attempt is always acked");
            prop_assert!(
                a.acks <= a.retries + 1 + a.duplicates,
                "every ack answers an arriving data copy"
            );
        }
        // A different seed must not replay the same outcomes wholesale.
        let other = FaultPlan::seeded(fault_seed ^ 0x5bd1_e995)
            .with_drop_probability(drop_p)
            .with_duplicate_probability(dup_p)
            .with_retry(RetryPolicy::new(ack_timeout, 2.0, max_attempts));
        let replayed: Vec<_> = messages.iter().map(|m| other.transmit(m, latency)).collect();
        prop_assert!(
            first != replayed,
            "seed-insensitive link layer: all {} outcomes identical",
            first.len()
        );
    }
}
