//! Elastic-membership equivalence: all three protocol architectures carry
//! identical state through worker leave/join epochs, and they agree with
//! the sequential engine driven through `apply_membership` +
//! `Observation::from_costs_masked`.

use dolbie_core::environment::{RotatingStragglerEnvironment, StaticLinearEnvironment};
use dolbie_core::{Dolbie, DolbieConfig, Environment, LoadBalancer, Observation};
use dolbie_simnet::{
    FixedLatency, FullyDistributedSim, LeaveKind, MasterWorkerSim, MembershipSchedule,
    ProtocolTrace, RingSim,
};

const ROUNDS: usize = 40;

fn schedule() -> MembershipSchedule {
    MembershipSchedule::none()
        .with_leave(8, 2, LeaveKind::Graceful)
        .with_leave(15, 0, LeaveKind::CrashDetected)
        .with_join(24, 2)
        .with_join(31, 0)
}

fn env() -> RotatingStragglerEnvironment {
    RotatingStragglerEnvironment::new(6, 4, 7.0, 1.0)
}

/// The five per-trace churn facts every architecture must exhibit:
/// feasibility each round, exact zeros for non-members, non-increasing
/// recorded `α`, and participation matching the schedule.
fn assert_churn_invariants(trace: &ProtocolTrace, sched: &MembershipSchedule, n: usize) {
    let mut prev_alpha = f64::INFINITY;
    for r in &trace.rounds {
        let members = sched.members_at(n, r.round);
        let sum: f64 = r.allocation.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "{} round {}: sum {sum}", trace.architecture, r.round);
        for (i, &m) in members.iter().enumerate() {
            if !m {
                assert_eq!(
                    r.allocation.share(i),
                    0.0,
                    "{} round {}: non-member {i} holds share",
                    trace.architecture,
                    r.round
                );
                assert!(
                    !r.active[i],
                    "{} round {}: non-member {i} active",
                    trace.architecture, r.round
                );
            }
        }
        assert!(
            r.alpha <= prev_alpha,
            "{} round {}: alpha rose {prev_alpha} -> {}",
            trace.architecture,
            r.round,
            r.alpha
        );
        prev_alpha = r.alpha;
    }
}

#[test]
fn three_architectures_agree_bitwise_through_churn() {
    let mw = MasterWorkerSim::new(env(), DolbieConfig::new(), FixedLatency::lan())
        .with_membership(schedule())
        .run(ROUNDS);
    let fd = FullyDistributedSim::new(env(), DolbieConfig::new(), FixedLatency::lan())
        .with_membership(schedule())
        .run(ROUNDS);
    let ring = RingSim::new(env(), DolbieConfig::new(), FixedLatency::lan())
        .with_membership(schedule())
        .run(ROUNDS);

    let sched = schedule();
    for trace in [&mw, &fd, &ring] {
        assert_churn_invariants(trace, &sched, 6);
    }
    for ((m, f), r) in mw.rounds.iter().zip(&fd.rounds).zip(&ring.rounds) {
        assert!(
            m.allocation.l2_distance(&f.allocation) == 0.0,
            "round {}: MW {} vs FD {}",
            m.round,
            m.allocation,
            f.allocation
        );
        assert!(
            f.allocation.l2_distance(&r.allocation) == 0.0,
            "round {}: FD {} vs ring {}",
            f.round,
            f.allocation,
            r.allocation
        );
        assert_eq!(m.straggler, f.straggler, "round {}", m.round);
        assert_eq!(f.straggler, r.straggler, "round {}", f.round);
        assert_eq!(m.alpha.to_bits(), f.alpha.to_bits(), "round {}", m.round);
        assert_eq!(f.alpha.to_bits(), r.alpha.to_bits(), "round {}", f.round);
    }
}

#[test]
fn sequential_engine_matches_master_worker_through_churn() {
    let mw = MasterWorkerSim::new(env(), DolbieConfig::new(), FixedLatency::lan())
        .with_membership(schedule())
        .run(ROUNDS);

    let sched = schedule();
    let mut driver = env();
    let mut d = Dolbie::new(6);
    let mut members = vec![true; 6];
    for t in 0..ROUNDS {
        if sched.apply_round(t, &mut members).changed {
            d.apply_membership(&members);
        }
        let fns = driver.reveal(t);
        let played = d.allocation().clone();
        let obs = Observation::from_costs_masked(t, &played, &fns, &members, Vec::new());
        let r = &mw.rounds[t];
        assert!(
            r.allocation.l2_distance(&played) < 1e-9,
            "round {t}: MW {} vs sequential {played}",
            r.allocation
        );
        assert_eq!(r.straggler, obs.straggler(), "round {t}");
        d.observe(&obs);
        assert!(
            (r.alpha - d.alpha()).abs() < 1e-9,
            "round {t}: MW alpha {} vs sequential {}",
            r.alpha,
            d.alpha()
        );
    }
}

#[test]
fn rejoined_worker_regrows_its_share_from_zero() {
    let sched = MembershipSchedule::none().with_leave(5, 1, LeaveKind::Graceful).with_join(12, 1);
    let trace = MasterWorkerSim::new(env(), DolbieConfig::new(), FixedLatency::lan())
        .with_membership(sched)
        .run(30);
    for t in 5..12 {
        assert_eq!(trace.rounds[t].allocation.share(1), 0.0, "round {t}: departed");
    }
    assert_eq!(trace.rounds[12].allocation.share(1), 0.0, "rejoins at exactly zero");
    assert!(
        trace.rounds[29].allocation.share(1) > 0.01,
        "eq. (5)/(6) regrow the joiner: {}",
        trace.rounds[29].allocation.share(1)
    );
}

#[test]
fn crash_detected_leave_costs_wall_clock_but_not_decisions() {
    let base = MembershipSchedule::none();
    let graceful = base.clone().with_leave(6, 3, LeaveKind::Graceful).with_join(14, 3);
    let detected = base.with_leave(6, 3, LeaveKind::CrashDetected).with_join(14, 3);
    let a = MasterWorkerSim::new(env(), DolbieConfig::new(), FixedLatency::lan())
        .with_membership(graceful)
        .run(20);
    let b = MasterWorkerSim::new(env(), DolbieConfig::new(), FixedLatency::lan())
        .with_membership(detected)
        .run(20);
    for (x, y) in a.rounds.iter().zip(&b.rounds) {
        assert!(
            x.allocation.l2_distance(&y.allocation) == 0.0,
            "round {}: detection latency must not change decisions",
            x.round
        );
    }
    assert!(
        b.makespan() > a.makespan(),
        "crash detection stalls the survivors: {} vs {}",
        b.makespan(),
        a.makespan()
    );
}

#[test]
fn empty_schedule_reproduces_the_plain_trace_bitwise() {
    let env = StaticLinearEnvironment::from_slopes(vec![4.0, 1.0, 2.0, 3.0]);
    let plain = MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(15);
    let with_none = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
        .with_membership(MembershipSchedule::none())
        .run(15);
    for (a, b) in plain.rounds.iter().zip(&with_none.rounds) {
        assert!(a.allocation.l2_distance(&b.allocation) == 0.0, "round {}", a.round);
        assert_eq!(a.alpha.to_bits(), b.alpha.to_bits(), "round {}", a.round);
        assert_eq!(a.messages, b.messages, "round {}", a.round);
    }
}
