//! Property tests: all protocol implementations agree with the sequential
//! engine on randomized time-varying environments, under randomized
//! network conditions.

use dolbie_core::cost::{DynCost, LatencyCost, LinearCost};
use dolbie_core::environment::FnEnvironment;
use dolbie_core::{run_episode, Dolbie, DolbieConfig, EpisodeOptions};
use dolbie_simnet::threaded::run_threaded_master_worker;
use dolbie_simnet::{FixedLatency, FullyDistributedSim, JitteredLatency, MasterWorkerSim, RingSim};
use proptest::prelude::*;

/// Deterministic, seed-derived per-round latency costs.
fn seeded_costs(seed: u64, round: usize, n: usize) -> Vec<DynCost> {
    (0..n)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((round as u64) << 24)
                .wrapping_add(i as u64)
                .wrapping_mul(0x2545_F491_4F6C_DD1D);
            if h & 1 == 0 {
                let speed = 50.0 + (h % 2000) as f64;
                let comm = ((h >> 13) % 100) as f64 / 1000.0;
                Box::new(LatencyCost::new(256.0, speed, comm)) as DynCost
            } else {
                let slope = 0.1 + (h % 500) as f64 / 100.0;
                Box::new(LinearCost::new(slope, ((h >> 9) % 5) as f64 * 0.02)) as DynCost
            }
        })
        .collect()
}

fn env_for(seed: u64, n: usize) -> FnEnvironment<impl FnMut(usize) -> Vec<DynCost>> {
    FnEnvironment::new(n, move |round| seeded_costs(seed, round, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Master-worker, fully-distributed, ring, and the threaded runtime
    /// all reproduce the sequential trajectory on arbitrary environments.
    #[test]
    fn all_protocols_match_sequential(seed in 0u64..u64::MAX, n in 2usize..8) {
        const ROUNDS: usize = 15;
        let mw = MasterWorkerSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .run(ROUNDS);
        let fd = FullyDistributedSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .run(ROUNDS);
        let ring = RingSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .run(ROUNDS);
        let threaded = run_threaded_master_worker(env_for(seed, n), DolbieConfig::new(), ROUNDS)
            .expect("healthy workers never disconnect");

        let mut sequential = Dolbie::new(n);
        let mut driver = env_for(seed, n);
        let reference = run_episode(&mut sequential, &mut driver, EpisodeOptions::new(ROUNDS));

        for (t, th) in threaded.iter().enumerate() {
            let r = &reference.records[t].allocation;
            prop_assert!(mw.rounds[t].allocation.l2_distance(r) < 1e-9, "mw diverged at {t}");
            prop_assert!(fd.rounds[t].allocation.l2_distance(r) < 1e-9, "fd diverged at {t}");
            prop_assert!(ring.rounds[t].allocation.l2_distance(r) < 1e-9, "ring diverged at {t}");
            prop_assert!(th.allocation.l2_distance(r) < 1e-9, "threaded diverged at {t}");
        }
    }

    /// Random network jitter never changes any protocol's decisions.
    #[test]
    fn jitter_invariance(seed in 0u64..u64::MAX, net_seed in 0u64..u64::MAX, n in 2usize..7) {
        const ROUNDS: usize = 10;
        let calm = MasterWorkerSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::instant())
            .run(ROUNDS);
        let jitter = JitteredLatency::new(FixedLatency::new(0.02, 1e5), 0.1, net_seed);
        let stormy = MasterWorkerSim::new(env_for(seed, n), DolbieConfig::new(), jitter.clone())
            .run(ROUNDS);
        for (a, b) in calm.rounds.iter().zip(&stormy.rounds) {
            prop_assert!(a.allocation.l2_distance(&b.allocation) < 1e-12);
        }
        let ring_calm = RingSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::instant())
            .run(ROUNDS);
        let ring_stormy = RingSim::new(env_for(seed, n), DolbieConfig::new(), jitter).run(ROUNDS);
        for (a, b) in ring_calm.rounds.iter().zip(&ring_stormy.rounds) {
            prop_assert!(a.allocation.l2_distance(&b.allocation) < 1e-12);
        }
    }

    /// Message counts are exactly the §IV-C formulas for every N.
    #[test]
    fn message_counts_are_exact(seed in 0u64..u64::MAX, n in 2usize..10) {
        const ROUNDS: usize = 5;
        let mw = MasterWorkerSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .run(ROUNDS);
        prop_assert_eq!(mw.total_messages(), ROUNDS * 3 * n);
        let fd = FullyDistributedSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .run(ROUNDS);
        prop_assert_eq!(fd.total_messages(), ROUNDS * (n * n - 1));
        let ring = RingSim::new(env_for(seed, n), DolbieConfig::new(), FixedLatency::lan())
            .run(ROUNDS);
        for r in &ring.rounds {
            prop_assert!(r.messages == 2 * n || r.messages == 2 * n + 1);
        }
    }
}
