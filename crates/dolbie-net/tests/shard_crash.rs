//! Fault-tolerance acceptance tests for the sharded control plane: a
//! worker killed mid-run (pre- and post-commit), a shard-master killed
//! mid-run (pre- and post-commit), and a quorum loss — each over real
//! loopback TCP, each bounded in wall clock (never a hang), and each
//! with the surviving trajectory **bitwise identical** to a sequential
//! twin replaying the recorded membership schedule.
//!
//! The twin recipe is the contract the root's epoch records promise:
//! before observing round `t`, apply every recorded `RootEpoch` with
//! `round == t` (in order); observe through
//! `Observation::from_costs_masked` under the current mask; epochs
//! recorded at `round == T` (a death during the final commit) apply
//! after the last observation.

use dolbie_core::cost::DynCost;
use dolbie_core::{Allocation, Dolbie, DolbieConfig, LoadBalancer, Observation};
use dolbie_net::env::{EnvKind, WireEnvSpec};
use dolbie_net::shard::{
    run_sharded_loopback, RootEpoch, ShardKill, ShardedConfig, ShardedLoopbackRun,
};
use std::time::{Duration, Instant};

/// Generous "no hang" bound: every case here finishes in well under a
/// second of protocol time; the bound only has to beat a dev-profile,
/// loaded-CI worst case while still catching a stuck deadline loop.
const WALL_BOUND: Duration = Duration::from_secs(60);

/// Replays the flat sequential engine under the recorded membership
/// schedule: element `t` is the allocation played in round `t`, plus a
/// final post-horizon entry — the same shape as
/// [`ShardedLoopbackRun::allocations`].
fn twin_allocations(
    env: WireEnvSpec,
    n: usize,
    rounds: usize,
    epochs: &[RootEpoch],
) -> Vec<Vec<f64>> {
    let mut twin = Dolbie::with_config(Allocation::uniform(n), DolbieConfig::new());
    let mut members = vec![true; n];
    let mut out = Vec::with_capacity(rounds + 1);
    for t in 0..rounds {
        for e in epochs.iter().filter(|e| e.round == t) {
            members.copy_from_slice(&e.members);
            twin.apply_membership(&members);
        }
        let shares = twin.allocation().clone();
        out.push((0..n).map(|i| shares.share(i)).collect());
        let cost_fns: Vec<DynCost> = (0..n).map(|i| env.cost_for(t, i)).collect();
        let obs = Observation::from_costs_masked(t, &shares, &cost_fns, &members, Vec::new());
        twin.observe(&obs);
    }
    for e in epochs.iter().filter(|e| e.round == rounds) {
        members.copy_from_slice(&e.members);
        twin.apply_membership(&members);
    }
    out.push((0..n).map(|i| twin.allocation().share(i)).collect());
    out
}

fn assert_bitwise_twin(run: &ShardedLoopbackRun, env: WireEnvSpec, n: usize, rounds: usize) {
    let stitched = run.allocations();
    let reference = twin_allocations(env, n, rounds, &run.root.epochs);
    assert_eq!(stitched.len(), reference.len(), "horizon mismatch");
    for (t, (net, seq)) in stitched.iter().zip(&reference).enumerate() {
        for i in 0..n {
            assert_eq!(
                net[i].to_bits(),
                seq[i].to_bits(),
                "round {t}, worker {i}: sharded trajectory diverged from the membership twin"
            );
        }
    }
}

fn assert_on_simplex(run: &ShardedLoopbackRun) {
    let last = run.allocations().pop().expect("final entry");
    let sum: f64 = last.iter().sum();
    assert!((sum - 1.0).abs() <= 1e-12, "final Σx = {sum}");
    for (i, (&x, &alive)) in last.iter().zip(&run.root.members).enumerate() {
        assert!(x >= 0.0, "worker {i} holds a negative share");
        if !alive {
            assert_eq!(x, 0.0, "dead worker {i} still holds share {x}");
        }
    }
}

/// Picks the global straggler of `round` from a healthy rehearsal run —
/// the kill fires *after* that round's costs are reported, so the
/// rehearsal's election at that round matches the kill run's.
fn straggler_at(env: WireEnvSpec, n: usize, m: usize, round: usize) -> usize {
    let cfg = ShardedConfig::new(n, m, round + 1, env);
    let run = run_sharded_loopback(&cfg).expect("healthy rehearsal");
    run.root.rounds[round].straggler
}

fn killed_worker_case(n: usize, m: usize, rounds: usize, victim: usize, kill_round: usize) {
    let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0xC4A54 + n as u64 };
    let mut cfg = ShardedConfig::new(n, m, rounds, env).with_worker_kill(victim, kill_round);
    cfg.frame_timeout = Duration::from_secs(2);
    let started = Instant::now();
    let run = run_sharded_loopback(&cfg).expect("a worker crash must not sink the run");
    assert!(started.elapsed() < WALL_BOUND, "the run stalled past the hang bound");

    assert_eq!(run.root.rounds.len(), rounds, "the horizon completes despite the crash");
    assert_eq!(run.root.epochs.len(), 1, "one death, one epoch");
    let epoch = &run.root.epochs[0];
    assert!(!epoch.members[victim], "the epoch must bury the victim");
    assert_eq!(epoch.members.iter().filter(|&&a| !a).count(), 1);
    assert!(
        (kill_round..=kill_round + 2).contains(&epoch.round),
        "the death fired at round {kill_round} but the epoch landed at round {}",
        epoch.round
    );
    assert!(run.root.dead_shards.is_empty(), "no shard-master died");

    assert_bitwise_twin(&run, env, n, rounds);
    assert_on_simplex(&run);

    // Every surviving worker crossed exactly the one epoch; the victim's
    // thread ended early (cleanly or with a transport error).
    for report in run.workers.iter().flatten() {
        if report.worker_id != victim {
            assert_eq!(report.epochs_seen, 1, "survivor {} missed the epoch", report.worker_id);
        }
    }
}

/// A non-straggler worker killed mid-run: the death surfaces at the
/// decision collect — *before* the round commits — so the root unwinds
/// `begin_round` and replays the kill round under the new membership.
#[test]
fn pre_commit_worker_kill_is_one_epoch_and_bitwise() {
    const N: usize = 8;
    const M: usize = 2;
    const ROUNDS: usize = 30;
    const KILL_ROUND: usize = 11;
    let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0xC4A54 + N as u64 };
    // Any non-straggler victim exercises the pre-commit path.
    let straggler = straggler_at(env, N, M, KILL_ROUND);
    let victim = (0..N).find(|&i| i != straggler).expect("N >= 2");
    killed_worker_case(N, M, ROUNDS, victim, KILL_ROUND);
}

/// The round's *straggler* killed mid-run: it owes no decision frame,
/// so the death is discovered only at the commit-delivery drain or the
/// next cost collect — *after* the round committed. The committed round
/// stands; the epoch lands at `kill_round + 1` (or `+ 2` when the
/// drain's write outruns the kernel's reset).
#[test]
fn post_commit_straggler_kill_is_one_epoch_and_bitwise() {
    const N: usize = 8;
    const M: usize = 2;
    const ROUNDS: usize = 30;
    const KILL_ROUND: usize = 11;
    let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0xC4A54 + N as u64 };
    let victim = straggler_at(env, N, M, KILL_ROUND);
    killed_worker_case(N, M, ROUNDS, victim, KILL_ROUND);
}

fn killed_shard_case(kill: ShardKill, n: usize, m: usize, rounds: usize) {
    let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0x5DEAD + n as u64 };
    let mut cfg = ShardedConfig::new(n, m, rounds, env).with_shard_kill(kill);
    cfg.frame_timeout = Duration::from_secs(2);
    let started = Instant::now();
    let run = run_sharded_loopback(&cfg).expect("a shard-master crash must not sink the run");
    assert!(started.elapsed() < WALL_BOUND, "the run stalled past the hang bound");

    assert_eq!(run.root.rounds.len(), rounds, "the horizon completes degraded");
    assert_eq!(run.root.dead_shards, vec![kill.shard], "exactly the killed shard was buried");
    assert_eq!(run.root.epochs.len(), 1, "one mass epoch buries the whole range");
    let epoch = &run.root.epochs[0];
    let range = run.root.layout.range(kill.shard);
    for i in 0..n {
        assert_eq!(
            epoch.members[i],
            !range.contains(&i),
            "the mass epoch must bury exactly the dead shard's range"
        );
    }
    // Pre-commit (mid-round) kills abandon the kill round: the epoch
    // replays it. Post-commit kills stand: the epoch opens the next
    // round (detection waits for the next aggregation).
    let expected_round = if kill.mid_round { kill.after_round } else { kill.after_round + 1 };
    assert_eq!(epoch.round, expected_round, "the epoch landed on the wrong round");

    // The killed shard-master still yields a partial report whose last
    // committed round respects the pre/post-commit boundary.
    let dead_report = &run.shards[kill.shard];
    let committed = if kill.mid_round { kill.after_round } else { kill.after_round + 1 };
    assert_eq!(dead_report.rounds.len(), committed, "partial report length");

    assert_bitwise_twin(&run, env, n, rounds);
    assert_on_simplex(&run);
}

/// A shard-master killed *post-commit* (after its round's commit and
/// drain): the root discovers the dead link at the next aggregation,
/// buries the whole range as one mass epoch, and the survivors carry
/// the full unit of work to the horizon.
#[test]
fn post_commit_shard_kill_buries_the_range_as_one_mass_epoch() {
    killed_shard_case(ShardKill { shard: 1, after_round: 9, mid_round: false }, 12, 3, 24);
}

/// A shard-master killed *mid-round* (right after its aggregate, before
/// the commit): the root aborts the attempt bitwise — `begin_round` is
/// unwound — and the kill round replays under the mass epoch.
#[test]
fn mid_round_shard_kill_aborts_the_attempt_and_replays_the_round() {
    killed_shard_case(ShardKill { shard: 0, after_round: 7, mid_round: true }, 12, 3, 24);
}

/// With `min_live_shards = 2` and one of two shards killed, the quorum
/// policy terminates the run with a structured error naming the dead
/// shard and the policy — never a hang, never a panic.
#[test]
fn quorum_loss_terminates_with_a_structured_error() {
    let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0xBAD0_C0DE };
    let mut cfg = ShardedConfig::new(8, 2, 40, env)
        .with_shard_kill(ShardKill { shard: 1, after_round: 5, mid_round: false })
        .with_min_live_shards(2);
    cfg.frame_timeout = Duration::from_secs(2);
    let started = Instant::now();
    let err = run_sharded_loopback(&cfg).expect_err("quorum loss must be a structured error");
    assert!(started.elapsed() < WALL_BOUND, "the failing run stalled past the hang bound");
    let message = err.to_string();
    assert!(
        message.contains("quorum") && message.contains("[1]") && message.contains("2"),
        "the error must name the policy and the dead shard: {message}"
    );
}
