//! Regression pins for the head-of-line bug family the event-driven
//! master fixes: rogue handshakes must not abort the run (either
//! master), admission must be concurrent, K simultaneously stalled
//! workers must cost one `frame_timeout` total, and a four-digit fleet
//! must survive the OS listen backlog.

use dolbie_net::env::{EnvKind, WireEnvSpec};
use dolbie_net::evented::run_master_evented;
use dolbie_net::loopback::{run_loopback, LoopbackOptions};
use dolbie_net::master::{run_master, MasterConfig, MasterKind};
use dolbie_net::transport::connect_with_backoff;
use dolbie_net::worker::{run_worker, WorkerOptions};
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

fn spawn_worker(addr: SocketAddr, seed: u64) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let stream = connect_with_backoff(addr, 10, Duration::from_millis(10), seed).unwrap();
        run_worker(stream, &WorkerOptions::default()).unwrap();
    })
}

/// Rogue connections — garbage bytes, an immediate close, a well-formed
/// non-Hello opener — are rejected socket-by-socket while the run
/// completes with the real fleet. Pinned for BOTH masters: the blocking
/// one used to abort the whole run on the first bad handshake.
#[test]
fn rogue_handshakes_are_rejected_not_fatal() {
    for kind in [MasterKind::Blocking, MasterKind::Evented] {
        const N: usize = 3;
        const ROUNDS: usize = 5;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0x0905 };
        let mut cfg = MasterConfig::new(N, ROUNDS, env);
        cfg.frame_timeout = Duration::from_millis(500);

        // Three flavors of rogue, all racing the real fleet to the
        // listener.
        let rogues: Vec<std::thread::JoinHandle<()>> = (0..3)
            .map(|flavor| {
                std::thread::spawn(move || {
                    let Ok(mut stream) =
                        connect_with_backoff(addr, 10, Duration::from_millis(10), 90 + flavor)
                    else {
                        return;
                    };
                    match flavor {
                        0 => {
                            // Garbage: bytes that fail the magic check.
                            let _ = stream.write_all(b"GET / HTTP/1.1\r\n\r\n");
                            std::thread::sleep(Duration::from_millis(200));
                        }
                        1 => {} // immediate close
                        _ => {
                            // A well-formed frame that is not Hello.
                            let bytes = dolbie_net::wire::Frame::Shutdown.encode();
                            let _ = stream.write_all(&bytes);
                            std::thread::sleep(Duration::from_millis(200));
                        }
                    }
                })
            })
            .collect();
        let workers: Vec<_> = (0..N).map(|k| spawn_worker(addr, k as u64)).collect();

        let report = match kind {
            MasterKind::Blocking => run_master(&listener, &cfg),
            MasterKind::Evented => run_master_evented(&listener, &cfg),
        }
        .expect("rogue connections must not abort the run");
        assert_eq!(report.trace.rounds.len(), ROUNDS);
        assert_eq!(report.epochs, 0, "no real worker died");
        for handle in rogues.into_iter().chain(workers) {
            handle.join().unwrap();
        }
    }
}

/// Admission is concurrent: six connected-but-silent rogues hold sockets
/// open while the real fleet handshakes. The blocking master would spend
/// one `frame_timeout` per rogue reached before each worker (worst case
/// 6 × 500 ms before the run even starts); the evented master admits the
/// fleet immediately and lets the rogue deadlines expire in parallel.
#[test]
fn silent_rogues_do_not_serialize_admission() {
    const N: usize = 3;
    const ROUNDS: usize = 5;
    const SILENT_ROGUES: usize = 6;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0x51E7 };
    let mut cfg = MasterConfig::new(N, ROUNDS, env);
    cfg.frame_timeout = Duration::from_millis(500);

    // The rogues connect FIRST, so an accept-order serial handshake
    // would stall on every one of them before reaching a real worker.
    let rogues: Vec<std::thread::JoinHandle<()>> = (0..SILENT_ROGUES)
        .map(|r| {
            std::thread::spawn(move || {
                let Ok(stream) =
                    connect_with_backoff(addr, 10, Duration::from_millis(5), 70 + r as u64)
                else {
                    return;
                };
                // Silent: hold the socket open past our own rejection.
                std::thread::sleep(Duration::from_millis(1500));
                drop(stream);
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50)); // let the rogues land first
    let workers: Vec<_> = (0..N).map(|k| spawn_worker(addr, k as u64)).collect();

    let started = Instant::now();
    let report = run_master_evented(&listener, &cfg).expect("run must complete");
    let elapsed = started.elapsed();
    assert_eq!(report.trace.rounds.len(), ROUNDS);
    assert_eq!(report.epochs, 0);
    // Serial admission would need ≥ 6 × 500 ms = 3 s before round 0;
    // concurrent admission finishes the whole run far sooner.
    assert!(
        elapsed < Duration::from_millis(2000),
        "admission serialized behind silent rogues: took {elapsed:?}"
    );
    for handle in rogues.into_iter().chain(workers) {
        handle.join().unwrap();
    }
}

/// K workers stalling in the same round cost the run ~one `frame_timeout`
/// total, not K of them: every expired deadline of a sweep is collected
/// before the round aborts, so the four deaths bury together. The
/// blocking master pays ≥ 4 × 600 ms = 2.4 s in this exact scenario.
#[test]
fn simultaneous_stalls_cost_one_frame_timeout_not_k() {
    const N: usize = 8;
    const ROUNDS: usize = 8;
    const STALL_ROUND: usize = 3;
    let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0x57A1 };
    let mut cfg = MasterConfig::new(N, ROUNDS, env);
    cfg.frame_timeout = Duration::from_millis(600);
    let mut opts = LoopbackOptions::new(cfg).with_master_kind(MasterKind::Evented);
    let hold = Duration::from_millis(2500);
    opts.stalls = vec![
        (1, STALL_ROUND, hold),
        (3, STALL_ROUND, hold),
        (5, STALL_ROUND, hold),
        (6, STALL_ROUND, hold),
    ];
    let run = run_loopback(&opts).expect("stalls must not sink the run");
    let report = &run.report;

    assert_eq!(report.trace.rounds.len(), ROUNDS, "the horizon completes despite the stalls");
    assert_eq!(report.epochs, 4, "four stalls, four epochs");
    assert_eq!(report.members.iter().filter(|&&m| !m).count(), 4);
    // One shared deadline (two if a stalled worker was the round's
    // straggler and its silence only surfaced on the retry), never four
    // serial ones. 1.8 s sits 3× above the expected ~0.65 s and well
    // under the blocking master's 2.4 s floor.
    assert!(
        report.wall_clock < 1.8,
        "stalled workers serialized the round: {:.3} s wall clock",
        report.wall_clock
    );
}

/// A 1024-worker fleet connects through the N-scaled backlog schedule
/// (staggered SYNs, log-scaled retry budget) and completes a short run —
/// the regression for fixed 10-attempt backoff exhausting under listen
/// backlog overflow at four-digit N.
#[test]
fn thousand_worker_fleet_survives_the_listen_backlog() {
    const N: usize = 1024;
    const ROUNDS: usize = 2;
    let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0xBAC6 };
    let opts = LoopbackOptions::new(MasterConfig::new(N, ROUNDS, env))
        .with_master_kind(MasterKind::Evented);
    let run = run_loopback(&opts).expect("the full fleet must connect and finish");
    assert_eq!(run.report.trace.rounds.len(), ROUNDS);
    assert_eq!(run.report.epochs, 0, "no worker lost to connect-retry exhaustion");
    assert_eq!(run.workers.len(), N);
    for worker in &run.workers {
        assert!(worker.is_ok(), "a worker failed to connect or finish");
    }
}
