//! Wire-protocol robustness: round-trip property tests over every frame
//! type, and strict rejection of malformed bytes.

use dolbie_net::env::{EnvKind, WireEnvSpec};
use dolbie_net::wire::{CursorPhase, Frame, WireError, MAX_FRAME_BYTES, VERSION};
use proptest::prelude::*;

/// Builds one frame of each kind from fuzzed scalars. `f64` fields come
/// from raw bit patterns so the whole value space (subnormals, infinities,
/// NaNs) crosses the codec.
fn frame_zoo(seq: u64, a: u64, b: u64, flag: bool, members: &[bool]) -> Vec<Frame> {
    let (x, y) = (f64::from_bits(a), f64::from_bits(b));
    vec![
        Frame::Hello { version: VERSION },
        Frame::Welcome {
            worker_id: (seq % 1024) as u32,
            num_workers: (a % 4096) as u32,
            rounds: b,
            env: WireEnvSpec {
                kind: if flag { EnvKind::ChaosMix } else { EnvKind::StaticRamp },
                seed: a ^ b,
            },
            initial_share: x,
            drop_probability: y,
            duplicate_probability: x,
            fault_seed: seq,
        },
        Frame::RoundStart { epoch: (a % 97) as u32, round: b },
        Frame::LocalCost { epoch: (b % 97) as u32, round: a, cost: y },
        Frame::Coordination { round: seq, global_cost: x, alpha: y, is_straggler: flag },
        Frame::Decision { epoch: (a % 7) as u32, round: seq, share: x, gain: y },
        Frame::Assignment { round: a, share: y },
        Frame::Adjust { round: b, scale: x },
        Frame::Epoch { epoch: (seq % 31) as u32, round: a, share: y, members: members.to_vec() },
        Frame::Shutdown,
        Frame::Data {
            seq,
            attempt: (a % 16) as u32,
            inner: Box::new(Frame::LocalCost { epoch: 0, round: b, cost: x }),
        },
        Frame::Ack { seq },
        Frame::ShardHello { shard: (seq % 64) as u32, num_shards: (a % 64) as u32 },
        Frame::ShardAggregate { round: seq, max_cost: x, straggler: a % 4096, share: y },
        Frame::ShardCoord { round: seq, global_cost: y, alpha: x, straggler: b % 4096 },
        Frame::ShardCursor {
            round: seq,
            phase: if flag { CursorPhase::Gains } else { CursorPhase::Shares },
            partial_sum: x,
            partial_compensation: y,
            partial_len: (a % 65536) as u32,
            stack: vec![(a % 1024, y), (b % 1024, x)],
        },
        Frame::ShardRescale { round: seq, scale: x },
        Frame::ShardCommit { round: seq, straggler: a % 4096, straggler_share: y, refresh: flag },
        Frame::ShardDead { round: seq, workers: vec![a % 4096, b % 4096, seq % 4096] },
        Frame::ShardEpoch { epoch: (a % 97) as u32, round: seq, members: members.to_vec() },
        Frame::ShardSlice { epoch: (b % 97) as u32, start: (a % 4096) as u32, shares: vec![x, y] },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every frame kind round-trips: decode(encode(f)) reproduces the
    /// exact bytes (bit-stable even through NaN payloads) and consumes
    /// the whole buffer.
    #[test]
    fn all_frame_types_round_trip(
        seq in 0u64..u64::MAX,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        flag in proptest::bool::ANY,
        members in proptest::collection::vec(proptest::bool::ANY, 0..9),
    ) {
        for frame in frame_zoo(seq, a, b, flag, &members) {
            let bytes = frame.encode();
            let (decoded, used) = Frame::decode(&bytes).expect("well-formed frame");
            prop_assert_eq!(used, bytes.len());
            // Bytes, not PartialEq: NaN-carrying frames compare unequal
            // under IEEE semantics yet must round-trip bit-exactly.
            prop_assert_eq!(decoded.encode(), bytes);
        }
    }

    /// Every strict prefix of every frame is rejected as truncated —
    /// never mis-parsed.
    #[test]
    fn every_truncation_is_rejected(
        seq in 0u64..u64::MAX,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        flag in proptest::bool::ANY,
        members in proptest::collection::vec(proptest::bool::ANY, 0..5),
    ) {
        for frame in frame_zoo(seq, a, b, flag, &members) {
            let bytes = frame.encode();
            for cut in 0..bytes.len() {
                prop_assert_eq!(
                    Frame::decode(&bytes[..cut]),
                    Err(WireError::Truncated),
                    "prefix of {} bytes must be truncated", cut
                );
            }
        }
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = Frame::Hello { version: VERSION }.encode();
    // Magic sits right after the 4-byte prefix and 1-byte kind.
    bytes[5..9].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    assert_eq!(Frame::decode(&bytes), Err(WireError::BadMagic { got: 0xDEAD_BEEF }));
}

#[test]
fn wrong_version_is_rejected() {
    let mut bytes = Frame::Hello { version: VERSION }.encode();
    bytes[9..11].copy_from_slice(&999u16.to_le_bytes());
    assert_eq!(Frame::decode(&bytes), Err(WireError::BadVersion { got: 999 }));
}

#[test]
fn welcome_checks_magic_and_version_too() {
    let welcome = Frame::Welcome {
        worker_id: 0,
        num_workers: 4,
        rounds: 10,
        env: WireEnvSpec { kind: EnvKind::ChaosMix, seed: 1 },
        initial_share: 0.25,
        drop_probability: 0.0,
        duplicate_probability: 0.0,
        fault_seed: 0,
    };
    let mut bad_magic = welcome.encode();
    bad_magic[5..9].copy_from_slice(&1u32.to_le_bytes());
    assert_eq!(Frame::decode(&bad_magic), Err(WireError::BadMagic { got: 1 }));
    let mut bad_version = welcome.encode();
    bad_version[9..11].copy_from_slice(&0u16.to_le_bytes());
    assert_eq!(Frame::decode(&bad_version), Err(WireError::BadVersion { got: 0 }));
}

#[test]
fn oversized_length_prefix_is_rejected_before_any_body() {
    let len = (MAX_FRAME_BYTES + 1) as u32;
    let bytes = len.to_le_bytes();
    assert_eq!(Frame::decode(&bytes), Err(WireError::Oversized { len: MAX_FRAME_BYTES + 1 }));
    // Even u32::MAX — no allocation attempt, just a clean error.
    assert_eq!(
        Frame::decode(&u32::MAX.to_le_bytes()),
        Err(WireError::Oversized { len: u32::MAX as usize })
    );
}

#[test]
fn unknown_kind_is_rejected() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.push(0x7F);
    assert_eq!(Frame::decode(&bytes), Err(WireError::UnknownKind(0x7F)));
}

#[test]
fn trailing_bytes_are_rejected() {
    let shutdown = Frame::Shutdown.encode();
    let mut padded = Vec::new();
    padded.extend_from_slice(&2u32.to_le_bytes()); // claims kind + 1 junk byte
    padded.push(shutdown[4]);
    padded.push(0xAB);
    assert_eq!(Frame::decode(&padded), Err(WireError::TrailingBytes));
}

#[test]
fn out_of_range_booleans_are_rejected() {
    let mut bytes =
        Frame::Coordination { round: 1, global_cost: 1.0, alpha: 0.5, is_straggler: true }.encode();
    let last = bytes.len() - 1;
    bytes[last] = 7; // is_straggler must be 0 or 1
    assert_eq!(Frame::decode(&bytes), Err(WireError::BadValue("is_straggler flag")));
}
