//! The tentpole acceptance tests: over lossless loopback TCP the runtime's
//! trajectory is bitwise identical to the sequential engine for 500 rounds
//! at N ∈ {4, 16}; under a seeded lossy link the run terminates and
//! satisfies the chaos-sweep invariants; and a worker killed mid-run
//! triggers a membership epoch instead of a hang.

use dolbie_core::{run_episode, Allocation, Dolbie, DolbieConfig, EpisodeOptions, LoadBalancer};
use dolbie_net::env::{EnvKind, WireEnvSpec};
use dolbie_net::loopback::{run_loopback, LoopbackOptions};
use dolbie_net::master::{MasterConfig, MasterKind, NetRunReport};
use dolbie_simnet::faults::{FaultPlan, RetryPolicy};
use dolbie_simnet::{FixedLatency, MasterWorkerSim};
use std::time::Duration;

fn sequential_allocations(env: WireEnvSpec, n: usize, rounds: usize) -> Vec<Allocation> {
    let mut sequential = Dolbie::with_config(Allocation::uniform(n), DolbieConfig::new());
    let mut driver = env.environment(n);
    let trace = run_episode(&mut sequential, &mut driver, EpisodeOptions::new(rounds));
    let mut allocations: Vec<Allocation> =
        trace.records.iter().map(|r| r.allocation.clone()).collect();
    // One more than the horizon: the engine's state after the last round.
    allocations.push(sequential.allocation().clone());
    allocations
}

fn assert_bitwise(report: &NetRunReport, reference: &[Allocation], n: usize) {
    for (t, round) in report.trace.rounds.iter().enumerate() {
        for i in 0..n {
            assert_eq!(
                round.allocation.share(i).to_bits(),
                reference[t].share(i).to_bits(),
                "round {t}, worker {i}: TCP trajectory diverged from the sequential engine"
            );
        }
    }
    let last = reference.last().expect("non-empty reference");
    for i in 0..n {
        assert_eq!(
            report.final_allocation.share(i).to_bits(),
            last.share(i).to_bits(),
            "final allocation diverged at worker {i}"
        );
    }
}

/// Lossless loopback at N = 4 and N = 16 for 500 rounds: bitwise parity
/// with the sequential engine, and 1e-9 agreement with the simulated
/// master-worker protocol (which uses an algebraically equivalent but
/// differently associated straggler pin).
#[test]
fn loopback_is_bitwise_identical_to_sequential_for_500_rounds() {
    const ROUNDS: usize = 500;
    for kind in [MasterKind::Evented, MasterKind::Blocking] {
        for n in [4usize, 16] {
            let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0xD01B_1E05 + n as u64 };
            let opts =
                LoopbackOptions::new(MasterConfig::new(n, ROUNDS, env)).with_master_kind(kind);
            let run = run_loopback(&opts).expect("lossless loopback run");
            assert_eq!(run.report.trace.rounds.len(), ROUNDS);
            assert_eq!(run.report.epochs, 0);

            // Both masters against the same reference: bitwise equality
            // to the sequential engine and therefore to each other.
            let reference = sequential_allocations(env, n, ROUNDS);
            assert_bitwise(&run.report, &reference, n);

            // The simnet master-worker trace agrees to numerical
            // tolerance (its guarded pin sums naively; the engine
            // compensates). One master kind suffices — the other is
            // bitwise identical.
            if kind == MasterKind::Evented {
                let sim = MasterWorkerSim::new(
                    env.environment(n),
                    DolbieConfig::new(),
                    FixedLatency::lan(),
                )
                .run(ROUNDS);
                for (net_round, sim_round) in run.report.trace.rounds.iter().zip(&sim.rounds) {
                    assert!(
                        net_round.allocation.l2_distance(&sim_round.allocation) < 1e-9,
                        "round {}: TCP vs simnet master-worker drifted",
                        net_round.round
                    );
                    let max = sim_round.local_costs.iter().cloned().fold(f64::MIN, f64::max);
                    let near =
                        sim_round.local_costs.iter().filter(|&&c| (c - max).abs() < 1e-9).count();
                    if near == 1 {
                        assert_eq!(net_round.straggler, sim_round.straggler);
                    }
                }
            }

            // Every worker saw the whole run and finished on its engine
            // share.
            for worker in &run.workers {
                let report = worker.as_ref().expect("healthy worker");
                assert_eq!(report.rounds_seen, ROUNDS);
                assert_eq!(
                    report.final_share.to_bits(),
                    run.report.final_allocation.share(report.worker_id).to_bits(),
                    "worker-held share must equal the master engine's"
                );
            }
        }
    }
}

/// A seeded lossy link (real socket-level drops, duplicates, ack losses,
/// and retransmission delays) terminates and satisfies the chaos-sweep
/// invariants — including the strongest form of architecture agreement:
/// the trajectory is still bitwise the sequential one, because loss only
/// ever delays frames.
#[test]
fn lossy_loopback_terminates_and_keeps_the_chaos_invariants() {
    // The blocking master serializes the stop-and-wait envelope across
    // workers, so its N = 16 case runs a shorter horizon to stay brisk;
    // the evented master retransmits concurrently and takes the full one.
    for (kind, n, rounds) in [
        (MasterKind::Evented, 4usize, 40usize),
        (MasterKind::Evented, 16, 40),
        (MasterKind::Blocking, 4, 40),
        (MasterKind::Blocking, 16, 12),
    ] {
        let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0xC4A05 + n as u64 };
        let retry = RetryPolicy::new(0.01, 1.5, 6);
        let plan = FaultPlan::seeded(21)
            .with_drop_probability(0.12)
            .with_duplicate_probability(0.05)
            .with_retry(retry);
        let mut opts =
            LoopbackOptions::new(MasterConfig::new(n, rounds, env).with_fault_plan(plan))
                .with_master_kind(kind);
        opts.worker.retry = Some(retry);
        let run = run_loopback(&opts).expect("lossy run must terminate");
        let report = &run.report;

        // Invariant 5 (termination) is the run completing at the horizon.
        assert_eq!(report.trace.rounds.len(), rounds);
        // The faults genuinely fired at the socket layer.
        let wire = &report.wire;
        assert!(wire.retransmissions > 0, "12% drop must force retransmissions");
        assert!(wire.acks > 0, "lossy links must ack");

        let mut prev_alpha = f64::INFINITY;
        for round in &report.trace.rounds {
            // Invariant 1: simplex feasibility every round.
            let sum: f64 = round.allocation.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "round {}: Σx = {sum}", round.round);
            assert!(round.allocation.iter().all(|&x| x >= 0.0));
            // Invariant 2: the α schedule never increases.
            assert!(round.alpha <= prev_alpha + 1e-15, "round {}: α rose", round.round);
            prev_alpha = round.alpha;
            // Invariant 3: no stranded share — every worker stayed
            // active, so the full unit of work is always assigned to
            // live members.
            assert!(round.active.iter().all(|&a| a));
        }

        // Invariant 4: architecture agreement, in its strongest form —
        // loss only delays frames, so even the lossy trajectory is
        // bitwise the sequential one, under either master.
        let reference = sequential_allocations(env, n, rounds);
        assert_bitwise(report, &reference, n);
    }
}

/// A worker killed mid-run triggers a membership epoch: the run completes
/// the full horizon without hanging, exactly one epoch is crossed, and the
/// allocation stays on the simplex within 1e-12 afterward.
#[test]
fn killed_worker_triggers_a_membership_epoch_without_hanging() {
    for kind in [MasterKind::Evented, MasterKind::Blocking] {
        killed_worker_case(kind);
    }
}

fn killed_worker_case(kind: MasterKind) {
    const ROUNDS: usize = 30;
    const N: usize = 4;
    const KILL_ROUND: usize = 11;
    let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0xFEED };
    let mut cfg = MasterConfig::new(N, ROUNDS, env);
    // A dead socket is detected by deadline or reset; keep the deadline
    // short so the test is brisk either way.
    cfg.frame_timeout = Duration::from_secs(2);
    let mut opts = LoopbackOptions::new(cfg).with_master_kind(kind);
    opts.kill = Some((2, KILL_ROUND));
    let run = run_loopback(&opts).expect("crash must not sink the run");
    let report = &run.report;

    assert_eq!(report.trace.rounds.len(), ROUNDS, "the horizon completes despite the crash");
    assert_eq!(report.epochs, 1, "one death, one epoch");
    assert_eq!(report.members.iter().filter(|&&m| !m).count(), 1);
    let dead = report.members.iter().position(|&m| !m).expect("one dead worker");

    for round in &report.trace.rounds {
        let sum: f64 = round.allocation.iter().sum();
        if round.active.iter().all(|&a| a) {
            assert!((sum - 1.0).abs() < 1e-9);
        } else {
            // Post-epoch: the survivors carry the whole unit of work.
            assert!((sum - 1.0).abs() < 1e-12, "round {}: Σx = {sum}", round.round);
            assert_eq!(round.allocation.share(dead), 0.0, "the dead worker's share is gone");
            assert!(!round.active[dead]);
        }
    }
    let final_sum: f64 = report.final_allocation.iter().sum();
    assert!((final_sum - 1.0).abs() < 1e-12);

    // Exactly one worker died early; the survivors all reached shutdown
    // and saw the epoch. A survivor counts the aborted attempt of the
    // crash round again after the restart, so it sees ROUNDS or ROUNDS+1
    // round starts depending on where the death was detected.
    let mut survivors = 0;
    for worker in run.workers.iter().flatten() {
        if worker.epochs_seen == 1 {
            assert!(
                worker.rounds_seen == ROUNDS || worker.rounds_seen == ROUNDS + 1,
                "survivor {} saw {} round starts",
                worker.worker_id,
                worker.rounds_seen
            );
            survivors += 1;
        }
    }
    assert_eq!(survivors, N - 1);
}
