//! The sharded-control-plane acceptance tests: over loopback TCP the
//! two-level (root → shard-masters → workers) trajectory is bitwise
//! identical to the flat sequential engine for 500 rounds at
//! M ∈ {1, 2, 4} × N ∈ {16, 64}, lossless and seeded-lossy, and the
//! root tier's per-round message count is a pure function of M — it
//! never scales with N.
//!
//! The 500-round horizon deliberately crosses the engine's
//! `TOTAL_REFRESH_INTERVAL = 256`, so the refresh cursor chain (the one
//! extra backbone hop) is exercised on every run.

use dolbie_core::{run_episode, Allocation, Dolbie, DolbieConfig, EpisodeOptions, LoadBalancer};
use dolbie_net::env::{EnvKind, WireEnvSpec};
use dolbie_net::shard::{run_sharded_loopback, ShardedConfig, ShardedLoopbackRun};
use dolbie_simnet::faults::{FaultPlan, RetryPolicy};

const ROUNDS: usize = 500;
const MATRIX: [(usize, usize); 6] = [(16, 1), (16, 2), (16, 4), (64, 1), (64, 2), (64, 4)];

fn sequential_allocations(env: WireEnvSpec, n: usize, rounds: usize) -> Vec<Allocation> {
    let mut sequential = Dolbie::with_config(Allocation::uniform(n), DolbieConfig::new());
    let mut driver = env.environment(n);
    let trace = run_episode(&mut sequential, &mut driver, EpisodeOptions::new(rounds));
    let mut allocations: Vec<Allocation> =
        trace.records.iter().map(|r| r.allocation.clone()).collect();
    allocations.push(sequential.allocation().clone());
    allocations
}

fn assert_bitwise(run: &ShardedLoopbackRun, reference: &[Allocation], n: usize, m: usize) {
    let stitched = run.allocations();
    assert_eq!(stitched.len(), reference.len(), "horizon mismatch at N={n}, M={m}");
    for (t, (flat, expected)) in stitched.iter().zip(reference).enumerate() {
        assert_eq!(flat.len(), n);
        for (i, &x) in flat.iter().enumerate() {
            assert_eq!(
                x.to_bits(),
                expected.share(i).to_bits(),
                "round {t}, worker {i}: sharded trajectory diverged (N={n}, M={m})"
            );
        }
    }
}

/// The root's per-round logical frame count is determined by M and the
/// round's flags alone: M aggregates up, M coordinations down, 2M gains
/// cursor hops, M commits, plus 3M on a rescale re-chain and 2M on a
/// Σx-refresh round. No term involves N.
fn assert_root_messages_are_o_m(run: &ShardedLoopbackRun, m: usize) {
    let mut refreshes = 0usize;
    for round in &run.root.rounds {
        let mut expected = 5 * m;
        if round.rescaled {
            expected += 3 * m;
        }
        if round.refreshed {
            expected += 2 * m;
            refreshes += 1;
        }
        assert_eq!(
            round.messages, expected,
            "round {}: root exchanged {} backbone frames, expected {} (M={m})",
            round.round, round.messages, expected
        );
    }
    assert_eq!(refreshes, ROUNDS / 256, "the refresh chain must fire on schedule");
}

fn assert_workers_healthy(run: &ShardedLoopbackRun, n: usize) {
    let last = run.allocations().pop().expect("final entry");
    assert_eq!(run.workers.len(), n);
    for worker in &run.workers {
        let report = worker.as_ref().expect("healthy worker");
        assert_eq!(report.rounds_seen, ROUNDS);
        assert_eq!(report.epochs_seen, 0);
        assert_eq!(
            report.final_share.to_bits(),
            last[report.worker_id].to_bits(),
            "worker {} finished off its shard-master's share",
            report.worker_id
        );
    }
}

/// Lossless sharded loopback at every (N, M) of the acceptance matrix:
/// 500-round bitwise parity with the flat sequential engine, O(M) root
/// messaging, and every worker finishing on its engine share.
#[test]
fn sharded_loopback_is_bitwise_identical_to_sequential_for_500_rounds() {
    for (n, m) in MATRIX {
        let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0xD01B_1E05 + n as u64 };
        let cfg = ShardedConfig::new(n, m, ROUNDS, env);
        let run = run_sharded_loopback(&cfg).expect("lossless sharded run");
        assert_eq!(run.root.rounds.len(), ROUNDS);
        assert_eq!(run.shards.len(), m);

        let reference = sequential_allocations(env, n, ROUNDS);
        assert_bitwise(&run, &reference, n, m);
        assert_root_messages_are_o_m(&run, m);
        assert_workers_healthy(&run, n);

        // The backbone is declared lossless: no retransmissions, ever.
        assert_eq!(run.root.wire.retransmissions, 0);
    }
}

/// The same matrix under a seeded lossy worker tier (socket-level drops,
/// duplicates, ack losses, retransmission delays on every worker link):
/// the run terminates, the faults demonstrably fired, and the trajectory
/// is *still* bitwise the sequential one — loss only delays frames. The
/// backbone stays lossless by design.
#[test]
fn lossy_sharded_loopback_stays_bitwise_identical_for_500_rounds() {
    for (n, m) in MATRIX {
        let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0xD01B_1E05 + n as u64 };
        // Loopback RTT is tens of microseconds, so a 1 ms ack timeout is
        // still far above any genuine round trip — it compresses the
        // injected retransmission delays, not the fault semantics.
        let retry = RetryPolicy::new(0.001, 1.5, 6);
        let plan = FaultPlan::seeded(21 + m as u64)
            .with_drop_probability(0.12)
            .with_duplicate_probability(0.05)
            .with_retry(retry);
        let cfg = ShardedConfig::new(n, m, ROUNDS, env).with_fault_plan(plan);
        let run = run_sharded_loopback(&cfg).expect("lossy sharded run must terminate");
        assert_eq!(run.root.rounds.len(), ROUNDS);

        // The faults genuinely fired at the worker tier...
        let mut worker_wire_retries = 0u64;
        let mut worker_wire_acks = 0u64;
        for shard in &run.shards {
            worker_wire_retries += shard.wire.retransmissions;
            worker_wire_acks += shard.wire.acks;
            // ...but never on the backbone.
            assert_eq!(shard.root_wire.retransmissions, 0);
        }
        assert!(worker_wire_retries > 0, "12% drop must force retransmissions");
        assert!(worker_wire_acks > 0, "lossy links must ack");

        // Chaos invariants 1–2 on the root-tier scalar trajectory; 4–5
        // are the bitwise assertion and termination themselves.
        let mut prev_alpha = f64::INFINITY;
        for round in &run.root.rounds {
            assert!(round.alpha <= prev_alpha + 1e-15, "round {}: α rose", round.round);
            prev_alpha = round.alpha;
        }
        let reference = sequential_allocations(env, n, ROUNDS);
        assert_bitwise(&run, &reference, n, m);
        assert_root_messages_are_o_m(&run, m);
        assert_workers_healthy(&run, n);
    }
}

/// Root-tier work is O(M), not O(N): quadrupling the fleet at fixed M
/// leaves the root's per-round message count and backbone byte volume
/// essentially unchanged (bytes may differ only by the O(log N) cursor
/// stack), while the flat master's fan-in grows linearly with N.
#[test]
fn root_tier_message_count_is_independent_of_fleet_size() {
    let rounds = 40;
    let mut per_n: Vec<(usize, usize, u64)> = Vec::new();
    for n in [16usize, 64] {
        let m = 4;
        let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 0x0_5CA1E + n as u64 };
        let cfg = ShardedConfig::new(n, m, rounds, env);
        let run = run_sharded_loopback(&cfg).expect("lossless sharded run");
        let messages: usize = run.root.rounds.iter().map(|r| r.messages).sum();
        let bytes: u64 = run.root.rounds.iter().map(|r| r.bytes as u64).sum();
        per_n.push((n, messages, bytes));
    }
    let (_, messages_16, bytes_16) = per_n[0];
    let (_, messages_64, bytes_64) = per_n[1];
    // Message counts: a pure function of M and per-round flags. The two
    // sweeps can differ only through rescale rounds, which are rare;
    // allow that slack but nothing N-proportional.
    let slack = 3 * 4 * rounds / 10;
    assert!(
        messages_64 <= messages_16 + slack,
        "root messages grew with N: {messages_16} at N=16 vs {messages_64} at N=64"
    );
    // Bytes: the cursor stack is O(log N), so 4× the fleet may add at
    // most a few stack entries per hop — far below a linear blowup.
    assert!(
        (bytes_64 as f64) < (bytes_16 as f64) * 2.0,
        "root backbone bytes scaled with N: {bytes_16} vs {bytes_64}"
    );
}
