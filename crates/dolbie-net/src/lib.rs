//! # dolbie-net
//!
//! A real TCP runtime for DOLBIE's Algorithm 1 (master-worker): versioned
//! length-prefixed wire protocol, blocking `std::net` transport with
//! deadlines and seeded reconnect, deterministic socket-level fault
//! replay, and crash-detected worker loss mapped onto membership epochs.
//!
//! The headline property is **bitwise trajectory parity**: over a
//! lossless link — loopback threads or separate OS processes — the
//! distributed run's allocation sequence is bit-for-bit the sequential
//! [`Dolbie`](dolbie_core::Dolbie) engine's, because
//!
//! 1. every scalar crosses the wire as its exact IEEE-754 bits
//!    ([`wire`]),
//! 2. the workers apply the engine's exact update arithmetic
//!    ([`worker`]), and
//! 3. the master mirrors the rounds through
//!    [`Dolbie::observe_reported`](dolbie_core::Dolbie::observe_reported),
//!    whose reported-round contract guarantees state identical to a
//!    locally observed round ([`master`]).
//!
//! Under a lossy link ([`transport::Link`] replaying a
//! [`FaultPlan`](dolbie_simnet::faults::FaultPlan) at the socket layer),
//! loss only delays frames, so the trajectory is unchanged and the
//! chaos-sweep invariants hold over real I/O.
//!
//! ## Module map
//!
//! - [`wire`] — frames, magic/version handshake, strict decode.
//! - [`mod@env`] — wire-encodable seeded environments.
//! - [`transport`] — framed connections, deadlines, the lossy envelope,
//!   seeded reconnect backoff.
//! - [`master`] / [`worker`] — the two node roles.
//! - [`evented`] — the event-driven master: non-blocking sockets,
//!   concurrent admission, coalesced broadcasts, timer-wheel deadlines;
//!   the default master, bitwise identical to the blocking one.
//! - `fleet` / `handshake` (crate-internal) — the shared
//!   coordinator-over-a-member-set machinery: connection sweeps, timer
//!   wheel, lossy envelope, and the single home of the `Hello → Welcome`
//!   admission rules, reused by the evented master and every
//!   shard-master.
//! - [`shard`] — the two-level control plane: `M` shard-masters each
//!   coordinate `N/M` workers, a root coordinator runs the identical
//!   min-max step over `O(M)` shard aggregates; bitwise identical to
//!   the flat masters and the sequential engine.
//! - [`loopback`] — in-process master + workers over 127.0.0.1.
//!
//! The `dolbie_node` binary exposes every role on the command line:
//! `dolbie_node master --listen 127.0.0.1:4100 --workers 4` in one
//! terminal, `dolbie_node worker --connect 127.0.0.1:4100` in the
//! others — or, sharded, `dolbie_node root --listen 127.0.0.1:4200
//! --shards 4 --workers 64` with four `dolbie_node shard` processes
//! between the root and the workers.
//!
//! ## Quick start
//!
//! ```
//! use dolbie_net::env::{EnvKind, WireEnvSpec};
//! use dolbie_net::loopback::{run_loopback, LoopbackOptions};
//! use dolbie_net::master::MasterConfig;
//!
//! let env = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 7 };
//! let run = run_loopback(&LoopbackOptions::new(MasterConfig::new(3, 10, env))).unwrap();
//! assert_eq!(run.report.trace.rounds.len(), 10);
//! let total: f64 = run.report.final_allocation.iter().sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod evented;
pub(crate) mod fleet;
pub(crate) mod handshake;
pub mod loopback;
pub mod master;
pub mod shard;
pub mod transport;
pub mod wire;
pub mod worker;

use transport::TransportError;

/// A runtime failure of either node role.
#[derive(Debug)]
pub enum NetError {
    /// The socket layer failed (I/O, malformed bytes, raw protocol
    /// violations).
    Transport(TransportError),
    /// The peer spoke well-formed frames out of protocol order.
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Transport(e) => write!(f, "transport: {e}"),
            Self::Protocol(what) => write!(f, "protocol: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<TransportError> for NetError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}
