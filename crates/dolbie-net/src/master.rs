//! The master node role: Algorithm 1's coordinator over real sockets,
//! mirroring the sequential engine bitwise.
//!
//! The master holds a real [`Dolbie`] engine and drives it with the gains
//! the workers report ([`Dolbie::observe_reported`]), so its state after
//! every round is — by the engine's reported-round contract — bitwise
//! identical to a sequential run fed the same costs. Workers hold the
//! authoritative shares; the master's engine is the mirrored bookkeeper
//! that computes the straggler pin, the α schedule, and the rare simplex
//! guard rescale.
//!
//! ## Crash handling
//!
//! A worker whose socket times out, resets, or closes mid-round is
//! declared dead and mapped onto a membership epoch
//! ([`Dolbie::apply_membership`]): its share is redistributed over the
//! survivors, α re-caps, the epoch counter increments, and every survivor
//! receives an [`Frame::Epoch`] carrying its authoritative
//! post-renormalization share (overriding any tentative in-round state).
//! If the engine had not yet committed the round, the round restarts under
//! the new epoch; if death surfaces only while delivering the commit
//! (`Adjust`/`Assignment` sends), the round stands and the run continues.
//! Stale frames from abandoned round attempts are filtered by the epoch
//! tag they carry. The run never hangs on a dead worker.

use crate::env::WireEnvSpec;
use crate::handshake;
use crate::transport::{Link, TransportError, WireStats, DEFAULT_FRAME_TIMEOUT};
use crate::wire::Frame;
use crate::NetError;
use dolbie_core::{Allocation, Dolbie, DolbieConfig, LoadBalancer};
use dolbie_simnet::faults::FaultPlan;
use dolbie_simnet::{ProtocolRound, ProtocolTrace};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Configuration of a master run.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// Fleet size `N` (connections to accept before round 0).
    pub num_workers: usize,
    /// Horizon `T`.
    pub rounds: usize,
    /// The seeded environment shipped to the workers in `Welcome`.
    pub env: WireEnvSpec,
    /// Engine configuration (step-size schedule).
    pub dolbie: DolbieConfig,
    /// Socket-layer fault plan; only its drop/duplicate probabilities,
    /// seed, and retry policy apply (crash windows are the business of
    /// real process lifetimes here).
    pub fault: FaultPlan,
    /// Per-frame read deadline; expiry on a worker's socket declares it
    /// dead. Must exceed the fault plan's worst-case retransmission
    /// schedule, or loss delays masquerade as crashes.
    pub frame_timeout: Duration,
}

impl MasterConfig {
    /// A lossless master over `n` workers for `rounds` rounds.
    pub fn new(n: usize, rounds: usize, env: WireEnvSpec) -> Self {
        Self {
            num_workers: n,
            rounds,
            env,
            dolbie: DolbieConfig::new(),
            fault: FaultPlan::none(),
            frame_timeout: DEFAULT_FRAME_TIMEOUT,
        }
    }

    /// Replays `plan` at the socket layer of every connection.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }
}

/// Which master implementation drives a run. Both speak the identical
/// wire protocol and produce bitwise-identical trajectories; they differ
/// only in I/O discipline and therefore in how wall time scales with `N`
/// and with stalled peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MasterKind {
    /// Sequential blocking I/O: one blocking read per worker in id
    /// order. Simple, but admission and rounds serialize behind the
    /// slowest connection.
    Blocking,
    /// The event-driven readiness loop over non-blocking sockets
    /// ([`crate::evented`]): concurrent admission, coalesced broadcasts,
    /// timer-wheel deadlines. The default.
    #[default]
    Evented,
}

impl MasterKind {
    /// Parses a command-line selector value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "blocking" => Some(Self::Blocking),
            "evented" => Some(Self::Evented),
            _ => None,
        }
    }
}

/// Totals and trajectory of one completed master run.
#[derive(Debug)]
pub struct NetRunReport {
    /// Per-round records in the shared simnet schema (allocation, costs,
    /// straggler, per-round wire accounting, wall-clock timestamps).
    pub trace: ProtocolTrace,
    /// The engine's final allocation.
    pub final_allocation: Allocation,
    /// Membership epochs crossed (0 when no worker died).
    pub epochs: u32,
    /// The final member mask over original worker ids.
    pub members: Vec<bool>,
    /// Run-total wire counters summed over every connection.
    pub wire: WireStats,
    /// Wall-clock seconds from the first round barrier to shutdown.
    pub wall_clock: f64,
}

/// How a round attempt ended, when not in a completed record.
enum RoundAbort {
    /// `worker`'s socket died. If the engine had already committed the
    /// round, the completed record rides along and the round stands.
    Dead { worker: usize, committed: Option<Box<ProtocolRound>> },
    /// Unrecoverable failure (protocol violation, malformed bytes).
    Fatal(NetError),
}

impl From<TransportError> for RoundAbort {
    fn from(e: TransportError) -> Self {
        Self::Fatal(NetError::Transport(e))
    }
}

/// Accepts `cfg.num_workers` connections on `listener`, runs Algorithm 1
/// to the horizon, and shuts the fleet down.
///
/// # Panics
///
/// Panics if the configuration names an empty fleet or a zero horizon.
pub fn run_master(listener: &TcpListener, cfg: &MasterConfig) -> Result<NetRunReport, NetError> {
    let n = cfg.num_workers;
    assert!(n > 0, "at least one worker required");
    assert!(cfg.rounds > 0, "at least one round required");

    let mut engine = Dolbie::with_config(Allocation::uniform(n), cfg.dolbie);

    // Handshake phase, through the shared admission helper: strict
    // magic/version checks, ids in admission order, rogue sockets
    // rejected without consuming a slot of the real fleet.
    let mut links = handshake::admit_blocking(
        listener,
        n,
        cfg.frame_timeout,
        &cfg.fault,
        |worker_id| {
            handshake::welcome_frame(
                worker_id as u32,
                n as u32,
                cfg.rounds as u64,
                cfg.env,
                engine.allocation().share(worker_id),
                &cfg.fault,
            )
        },
        |worker_id| worker_id as u64 + 1,
    )?;

    let mut members = vec![true; n];
    let mut epoch: u32 = 0;
    let mut retired = WireStats::default();
    let mut records: Vec<ProtocolRound> = Vec::with_capacity(cfg.rounds);
    let started = Instant::now();

    let mut t = 0;
    while t < cfg.rounds {
        match run_round(t, epoch, &mut engine, &mut links, &members, cfg, started) {
            Ok(record) => {
                records.push(record);
                t += 1;
            }
            Err(RoundAbort::Fatal(e)) => return Err(e),
            Err(RoundAbort::Dead { worker, committed }) => {
                if let Some(record) = committed {
                    // The engine had committed before the death surfaced:
                    // the round stands and the run continues at t + 1.
                    records.push(*record);
                    t += 1;
                }
                bury(worker, &mut members, &mut links, &mut retired, &mut engine, &mut epoch, t)?;
            }
        }
    }

    // Orderly shutdown; a worker dying at the very end is not an error.
    // After the send, linger until the worker closes: a lossy peer whose
    // final frame's ack was eaten is still in its retransmission
    // schedule, and the recv loop keeps re-acking those duplicates —
    // closing the socket mid-schedule would fire a reset into its send.
    for link in links.iter_mut().flatten() {
        let _ = link.send(&Frame::Shutdown);
        while link.recv(cfg.frame_timeout).is_ok() {}
    }
    let mut wire = retired;
    for link in links.iter().flatten() {
        wire.absorb(&link.stats());
    }
    Ok(NetRunReport {
        trace: ProtocolTrace { architecture: "tcp-master-worker", rounds: records },
        final_allocation: engine.allocation().clone(),
        epochs: epoch,
        members,
        wire,
        wall_clock: started.elapsed().as_secs_f64(),
    })
}

/// Declares `worker` dead, crosses a membership epoch, and announces it to
/// the survivors — cascading if an announcement discovers further deaths.
fn bury(
    worker: usize,
    members: &mut [bool],
    links: &mut [Option<Link>],
    retired: &mut WireStats,
    engine: &mut Dolbie,
    epoch: &mut u32,
    next_round: usize,
) -> Result<(), NetError> {
    let mut pending = vec![worker];
    while let Some(dead) = pending.pop() {
        if !members[dead] {
            continue;
        }
        members[dead] = false;
        if let Some(link) = links[dead].take() {
            retired.absorb(&link.stats());
        }
        if !members.iter().any(|&m| m) {
            return Err(NetError::Protocol("every worker has died".into()));
        }
        engine.apply_membership(members);
        *epoch += 1;
        let mask: Vec<bool> = members.to_vec();
        for (i, link) in links.iter_mut().enumerate() {
            if !members[i] {
                continue;
            }
            let frame = Frame::Epoch {
                epoch: *epoch,
                round: next_round as u64,
                share: engine.allocation().share(i),
                members: mask.clone(),
            };
            if link.as_mut().expect("members have links").send(&frame).is_err() {
                pending.push(i);
            }
        }
    }
    Ok(())
}

/// One attempt at round `t` under the current epoch.
fn run_round(
    t: usize,
    epoch: u32,
    engine: &mut Dolbie,
    links: &mut [Option<Link>],
    members: &[bool],
    cfg: &MasterConfig,
    started: Instant,
) -> Result<ProtocolRound, RoundAbort> {
    let n = members.len();
    let active: Vec<usize> = (0..n).filter(|&i| members[i]).collect();
    let allocation = engine.allocation().clone();
    let before: WireStats = wire_snapshot(links);

    fn link(links: &mut [Option<Link>], i: usize) -> &mut Link {
        links[i].as_mut().expect("active workers have links")
    }

    // Barrier: every active worker starts round t under this epoch.
    for &i in &active {
        if link(links, i).send(&Frame::RoundStart { epoch, round: t as u64 }).is_err() {
            return Err(RoundAbort::Dead { worker: i, committed: None });
        }
    }

    // Lines 9–11: collect local costs, filtering stale pre-epoch frames.
    let mut local_costs = vec![0.0f64; n];
    let mut logical = active.len(); // the RoundStart barrier frames
    for &i in &active {
        loop {
            match link(links, i).recv(cfg.frame_timeout) {
                Ok(Frame::LocalCost { epoch: e, round, cost }) => {
                    if e == epoch && round == t as u64 {
                        local_costs[i] = cost;
                        logical += 1;
                        break;
                    } // else: stale frame from an abandoned attempt
                }
                Ok(Frame::Decision { epoch: e, .. }) if e < epoch => {} // stale
                Ok(_) => {
                    return Err(RoundAbort::Fatal(NetError::Protocol(format!(
                        "worker {i} sent an unexpected frame during cost collection"
                    ))))
                }
                Err(TransportError::Io(_)) => {
                    return Err(RoundAbort::Dead { worker: i, committed: None })
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
    let compute_finished = started.elapsed().as_secs_f64();

    // Straggler: ascending argmax over the active members, strict `>` —
    // the same tie-breaking as `Observation::from_costs_masked`.
    let mut global_cost = f64::MIN;
    let mut straggler = active[0];
    for &i in &active {
        if local_costs[i] > global_cost {
            global_cost = local_costs[i];
            straggler = i;
        }
    }

    // Line 12: broadcast the coordination scalars.
    let alpha = engine.alpha();
    for &i in &active {
        let frame = Frame::Coordination {
            round: t as u64,
            global_cost,
            alpha,
            is_straggler: i == straggler,
        };
        if link(links, i).send(&frame).is_err() {
            return Err(RoundAbort::Dead { worker: i, committed: None });
        }
        logical += 1;
    }

    // Lines 13–14: collect the non-stragglers' reported gains.
    let mut gains = vec![0.0f64; n];
    for &i in &active {
        if i == straggler {
            continue;
        }
        loop {
            match link(links, i).recv(cfg.frame_timeout) {
                Ok(Frame::Decision { epoch: e, round, gain, .. }) => {
                    if e == epoch && round == t as u64 {
                        gains[i] = gain;
                        logical += 1;
                        break;
                    }
                }
                Ok(Frame::LocalCost { epoch: e, .. }) if e < epoch => {} // stale
                Ok(_) => {
                    return Err(RoundAbort::Fatal(NetError::Protocol(format!(
                        "worker {i} sent an unexpected frame during decision collection"
                    ))))
                }
                Err(TransportError::Io(_)) => {
                    return Err(RoundAbort::Dead { worker: i, committed: None })
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    // The engine commits the round — from here the round stands even if a
    // delivery below discovers a death.
    let outcome = engine.observe_reported(straggler, &gains);

    let delta = |links: &[Option<Link>], before: &WireStats| -> WireStats {
        let after = wire_snapshot(links);
        WireStats {
            frames_sent: after.frames_sent - before.frames_sent,
            frames_received: after.frames_received - before.frames_received,
            bytes_sent: after.bytes_sent - before.bytes_sent,
            bytes_received: after.bytes_received - before.bytes_received,
            retransmissions: after.retransmissions - before.retransmissions,
            duplicates: after.duplicates - before.duplicates,
            acks: after.acks - before.acks,
        }
    };
    let record = |links: &[Option<Link>], logical: usize, control_finished: f64| -> ProtocolRound {
        let wire = delta(links, &before);
        ProtocolRound {
            round: t,
            allocation: allocation.clone(),
            local_costs: local_costs.clone(),
            global_cost,
            straggler,
            messages: logical,
            bytes: (wire.bytes_sent + wire.bytes_received) as usize,
            retries: wire.retransmissions as usize,
            acks: wire.acks as usize,
            duplicates: wire.duplicates as usize,
            compute_finished,
            control_finished,
            active: members.to_vec(),
            alpha: engine.alpha(),
        }
    };

    // The rare simplex-guard rescale: non-stragglers replay
    // `x = x_old + gain · scale`.
    if let Some(scale) = outcome.rescale {
        for &i in &active {
            if i == straggler {
                continue;
            }
            if link(links, i).send(&Frame::Adjust { round: t as u64, scale }).is_err() {
                let committed = record(links, logical, started.elapsed().as_secs_f64());
                return Err(RoundAbort::Dead { worker: i, committed: Some(Box::new(committed)) });
            }
            logical += 1;
        }
    }

    // Line 15: the straggler's pinned share.
    let assignment = Frame::Assignment { round: t as u64, share: outcome.straggler_share };
    if link(links, straggler).send(&assignment).is_err() {
        let committed = record(links, logical, started.elapsed().as_secs_f64());
        return Err(RoundAbort::Dead { worker: straggler, committed: Some(Box::new(committed)) });
    }
    logical += 1;

    Ok(record(links, logical, started.elapsed().as_secs_f64()))
}

fn wire_snapshot(links: &[Option<Link>]) -> WireStats {
    let mut total = WireStats::default();
    for link in links.iter().flatten() {
        total.absorb(&link.stats());
    }
    total
}
