//! The two-level sharded control plane over real TCP: `M` shard-masters
//! each run DOLBIE's per-round coordination over `N/M` workers, and a
//! root coordinator runs the *same* min-max step over shard-level
//! aggregates — breaking the flat master's `Θ(N)` fan-in while staying
//! bitwise identical to the flat masters and the sequential engine.
//!
//! ## Roles
//!
//! - **Root** ([`run_root`]): blocking links to `M` shard-masters. Per
//!   round it sees `O(M)` frames and touches `O(1)` engine state
//!   ([`RootEngine`]): elect the global straggler from `M` candidates,
//!   broadcast the coordination scalars, chain the fixed-shape gains
//!   cursor through the shards, run the guard/pin tail, and commit. It
//!   never sees a per-worker array outside an epoch transition.
//! - **Shard-master** ([`run_shard_master`]): a real evented TCP master
//!   over its contiguous worker range — the same `Fleet` readiness
//!   machinery, concurrent admission, coalesced broadcasts, and
//!   timer-wheel deadlines as the flat evented master — plus one
//!   blocking upstream link to the root. Workers speak the unchanged
//!   flat worker protocol; a worker cannot tell a shard-master from the
//!   flat master.
//!
//! ## Per-round backbone dialect (root ↔ shard-master)
//!
//! `ShardAggregate` up (local max, candidate, share) → `ShardCoord` down
//! (global cost, `α_t`, straggler) → the `Gains` [`ShardCursor`] chained
//! through the shards in index order → optional `ShardRescale` +
//! re-chain → `ShardCommit` (pinned share, refresh flag) → on refresh
//! rounds a `Shares` cursor chain. Every backbone frame is `O(1)` or
//! `O(log N)` (the cursor stack), so the root's per-round work is `O(M)`
//! frames and `O(M log N)` bytes.
//!
//! ## Determinism
//!
//! The trajectory is **bitwise** identical to the flat sequential
//! engine: workers apply the engine's exact eq. (5) arithmetic
//! (unchanged), candidate election composes associatively under the
//! ascending strict-`>` argmax because shard ranges are ascending, the
//! chained [`SumCursor`] reproduces the engine's fixed-shape pairwise
//! compensated sum bit-for-bit regardless of where the chain is cut, and
//! [`RootEngine`] replays the flat engine's order-sensitive tail
//! operation for operation. No `1e-12` concession is needed; the parity
//! tests assert `to_bits()` equality round by round.
//!
//! ## Crash handling
//!
//! Both failure classes the simnet tier models are survived by the real
//! tree (DESIGN.md §12):
//!
//! - **Worker crash → membership epoch.** A shard-master that discovers
//!   dead worker sockets in a collect reports them upstream as
//!   `ShardDead` instead of failing; the root replies with a
//!   `ShardEpoch` announcement, gathers every surviving shard's
//!   committed share slice (`ShardSlice` chunks), replays the engine's
//!   exact renormalization ([`RootEngine::apply_membership`]), and
//!   scatters the authoritative slices back. A death discovered before
//!   the round's commit restarts the round under the new epoch; a death
//!   discovered after the commit stands and the epoch takes effect at
//!   `t + 1` — the same boundary as the flat masters. Frames of an
//!   abandoned attempt are filtered by their stale epoch/round tags at
//!   every tier (shard-masters skip the root's stale round frames while
//!   awaiting an epoch; workers' stale `LocalCost`/`Decision` frames
//!   are filtered by the fleet's epoch-tagged collect).
//! - **Shard-master crash → one mass epoch, or a structured error.**
//!   Every backbone interaction carries a per-link deadline
//!   (`frame_timeout`, plus the seeded retry budget when the backbone
//!   envelope is lossy), so a dead or wedged shard-master is detected
//!   within a bounded window instead of hanging the tree. The root
//!   classifies I/O failures (EOF, reset, expired deadline) as a crash,
//!   buries the whole shard range as one mass membership epoch, and
//!   redistributes the departing share over the survivors — unless the
//!   [`ShardedConfig::min_live_shards`] quorum policy says the degraded
//!   tree is no longer worth running, in which case the root shuts the
//!   survivors down and returns a structured [`NetError`] naming the
//!   dead shards. Never a hang, never a panic.
//!
//! The bitwise boundary survives both: an aborted attempt unwinds the
//! root engine ([`RootEngine::abort_round`]) so it leaves no trace in
//! the α record or the refresh schedule, and the renormalization is
//! applied only once the gather is complete — a transition that fails
//! mid-gather restarts with a fresh epoch number and an untouched
//! engine. Worker-link *loss* (drop/duplicate with ack/retry) remains
//! fully supported and trajectory-invariant, and the backbone itself
//! may be lossy ([`ShardedConfig::with_backbone_fault_plan`]).
//!
//! [`ShardCursor`]: crate::wire::Frame::ShardCursor
//! [`SumCursor`]: dolbie_core::numeric::SumCursor
//! [`RootEngine`]: dolbie_core::shard::RootEngine
//! [`RootEngine::apply_membership`]: dolbie_core::shard::RootEngine::apply_membership
//! [`RootEngine::abort_round`]: dolbie_core::shard::RootEngine::abort_round

use crate::env::WireEnvSpec;
use crate::fleet::{Fleet, Phase, SweepFail};
use crate::handshake::{admit_concurrent, welcome_frame};
use crate::transport::{
    connect_schedule, connect_with_backoff, FrameConn, Link, TransportError, WireStats,
    DEFAULT_FRAME_TIMEOUT,
};
use crate::wire::{CursorPhase, Frame, SHARD_SLICE_CHUNK};
use crate::worker::{run_worker, WorkerOptions, WorkerReport};
use crate::NetError;
use dolbie_core::numeric::{CursorState, SumCursor};
use dolbie_core::shard::{combine_candidates, RootEngine, ShardCandidate, ShardLayout};
use dolbie_core::{Allocation, DolbieConfig};
use dolbie_simnet::faults::{FaultPlan, RetryPolicy};
use std::net::{TcpListener, TcpStream};
use std::ops::Range;
use std::time::{Duration, Instant};

/// Worker threads carry tiny state; shard-master threads own a fleet of
/// connections but keep it on the heap — both run on small fixed stacks
/// so a 4096-worker loopback tree fits comfortably.
const WORKER_STACK_BYTES: usize = 256 * 1024;
const SHARD_STACK_BYTES: usize = 1024 * 1024;

/// The root's lossy-envelope identity on the backbone. Worker links key
/// their envelope hashes on `worker_id + 1` vs `0`; the backbone uses a
/// disjoint code space so a seeded plan shared by both tiers never
/// replays the same drop schedule on both.
pub const BACKBONE_ROOT_CODE: u64 = 0xB0B0_0000_0000_FFFF;

/// Shard-master `k`'s lossy-envelope identity on the backbone.
pub fn backbone_shard_code(k: usize) -> u64 {
    0xB0B0_0000_0000_0000 + k as u64 + 1
}

/// A scheduled shard-master kill for crash tests: the shard-master
/// returns (dropping its root link and its whole worker fleet) either
/// right after sending its round-`after_round` aggregate (`mid_round`,
/// a pre-commit death) or right after committing round `after_round`
/// (a post-commit death).
#[derive(Debug, Clone, Copy)]
pub struct ShardKill {
    /// Which shard-master dies.
    pub shard: usize,
    /// The round the kill is keyed on.
    pub after_round: usize,
    /// `true`: die mid-round (after the aggregate, before the commit).
    pub mid_round: bool,
}

/// Configuration of a sharded run, shared by the root and (through
/// `ShardWelcome`) every shard-master.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Total fleet size `N`.
    pub num_workers: usize,
    /// Shard count `M` (`1 ≤ M ≤ N`).
    pub num_shards: usize,
    /// Horizon `T`.
    pub rounds: usize,
    /// The seeded environment, shipped to shard-masters in
    /// `ShardWelcome` and on to workers in `Welcome`.
    pub env: WireEnvSpec,
    /// Engine configuration (step-size schedule), used by the root.
    pub dolbie: DolbieConfig,
    /// Worker-link fault plan; its drop/duplicate probabilities, seed,
    /// and retry pacing are shipped to the shard-masters, which replay
    /// it on their worker links.
    pub fault: FaultPlan,
    /// Backbone fault plan (root ↔ shard-master links). Not shipped in
    /// `ShardWelcome`: both ends are configured peers and each side
    /// simulates losses on the frames *it* sends, so the plans need not
    /// even agree. The loopback harness hands the same plan to both.
    pub backbone_fault: FaultPlan,
    /// Quorum policy: when fewer than this many shard-masters survive a
    /// transition, the root shuts the remainder down and returns a
    /// structured error instead of degrading further. `1` (the default)
    /// degrades as long as any shard survives.
    pub min_live_shards: usize,
    /// Scheduled worker kills `(global worker id, die_after_round)`,
    /// injected through [`WorkerOptions::die_after_round`].
    pub worker_kills: Vec<(usize, usize)>,
    /// Scheduled shard-master kills.
    pub shard_kills: Vec<ShardKill>,
    /// Per-frame read deadline on every link of both tiers — also the
    /// crash-detection window of the backbone.
    pub frame_timeout: Duration,
}

impl ShardedConfig {
    /// A lossless sharded run: `n` workers in `m` shards for `rounds`
    /// rounds.
    pub fn new(n: usize, m: usize, rounds: usize, env: WireEnvSpec) -> Self {
        Self {
            num_workers: n,
            num_shards: m,
            rounds,
            env,
            dolbie: DolbieConfig::new(),
            fault: FaultPlan::none(),
            backbone_fault: FaultPlan::none(),
            min_live_shards: 1,
            worker_kills: Vec::new(),
            shard_kills: Vec::new(),
            frame_timeout: DEFAULT_FRAME_TIMEOUT,
        }
    }

    /// Replays `plan` at the socket layer of every worker link.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Replays `plan` at the socket layer of every backbone link.
    pub fn with_backbone_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.backbone_fault = plan;
        self
    }

    /// Sets the shard quorum below which the root terminates with a
    /// structured error instead of degrading.
    pub fn with_min_live_shards(mut self, quorum: usize) -> Self {
        self.min_live_shards = quorum;
        self
    }

    /// Schedules worker `global_id` to vanish right after reporting its
    /// round-`round` local cost.
    pub fn with_worker_kill(mut self, global_id: usize, round: usize) -> Self {
        self.worker_kills.push((global_id, round));
        self
    }

    /// Schedules a shard-master kill.
    pub fn with_shard_kill(mut self, kill: ShardKill) -> Self {
        self.shard_kills.push(kill);
        self
    }
}

/// One committed round as the root saw it: scalars only — the root-tier
/// analogue of a `ProtocolRound` without any per-worker array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootRound {
    /// Round index `t`.
    pub round: usize,
    /// The elected global straggler.
    pub straggler: usize,
    /// The round's global cost `l_t`.
    pub global_cost: f64,
    /// The step size the round was played with.
    pub alpha: f64,
    /// Whether the simplex guard rescaled the gains.
    pub rescaled: bool,
    /// Whether this was a Σx-refresh round (extra cursor chain).
    pub refreshed: bool,
    /// Logical backbone frames the root sent + received this round —
    /// the `O(M)` headline quantity.
    pub messages: usize,
    /// Backbone bytes (sent + received) this round.
    pub bytes: usize,
    /// Seconds since the backbone admission completed, taken at this
    /// round's commit. Differences between consecutive rounds give
    /// steady-state per-round latency; round 0 additionally absorbs the
    /// shard-masters' worker admission, so latency accounting starts at
    /// round 1.
    pub elapsed: f64,
}

/// One membership epoch the root applied: the schedule entry a
/// sequential twin needs to replay the run bitwise.
#[derive(Debug, Clone, PartialEq)]
pub struct RootEpoch {
    /// The epoch number announced on the backbone.
    pub epoch: u32,
    /// The round the epoch took effect before (that round was played —
    /// or replayed — under the new membership).
    pub round: usize,
    /// The full membership mask after the transition.
    pub members: Vec<bool>,
}

/// Totals and per-round trajectory of one completed root run.
#[derive(Debug)]
pub struct RootReport {
    /// Per-round scalar records (aborted attempts leave no record).
    pub rounds: Vec<RootRound>,
    /// The shard layout the run was partitioned under.
    pub layout: ShardLayout,
    /// Every membership epoch applied, in order — the membership
    /// schedule a sequential twin replays for bitwise parity.
    pub epochs: Vec<RootEpoch>,
    /// The final membership mask.
    pub members: Vec<bool>,
    /// Shards whose backbone link died and whose whole range was buried
    /// as a mass epoch, in burial order.
    pub dead_shards: Vec<usize>,
    /// Run-total backbone wire counters (dead links included).
    pub wire: WireStats,
    /// Wall-clock seconds from the end of admission to shutdown.
    pub wall_clock: f64,
}

fn cursor_frame(round: usize, phase: CursorPhase, state: &CursorState) -> Frame {
    Frame::ShardCursor {
        round: round as u64,
        phase,
        partial_sum: state.partial_sum,
        partial_compensation: state.partial_compensation,
        partial_len: state.partial_len,
        stack: state.stack.clone(),
    }
}

fn cursor_state(
    partial_sum: f64,
    partial_compensation: f64,
    partial_len: u32,
    stack: Vec<(u64, f64)>,
) -> CursorState {
    CursorState { stack, partial_sum, partial_compensation, partial_len }
}

/// How a backbone interaction failed: a dead link (I/O error, reset, or
/// an expired deadline — the bounded crash-detection window) versus an
/// unrecoverable protocol violation.
enum LinkFail {
    Dead,
    Fatal(NetError),
}

fn classify(e: TransportError) -> LinkFail {
    match e {
        TransportError::Io(_) => LinkFail::Dead,
        other => LinkFail::Fatal(NetError::Transport(other)),
    }
}

/// Deaths discovered during one attempt or transition, not yet turned
/// into a membership epoch.
#[derive(Debug, Default)]
struct Pending {
    workers: Vec<usize>,
    shards: Vec<usize>,
}

impl Pending {
    fn is_empty(&self) -> bool {
        self.workers.is_empty() && self.shards.is_empty()
    }

    fn shard(k: usize) -> Self {
        Self { workers: Vec::new(), shards: vec![k] }
    }

    fn dead_workers(ws: &[u64]) -> Self {
        Self { workers: ws.iter().map(|&w| w as usize).collect(), shards: Vec::new() }
    }
}

/// How one round attempt at the root ended.
enum Attempt {
    /// The round committed; `post` holds post-commit shard deaths that
    /// take effect as an epoch at `t + 1`.
    Committed { record: RootRound, post: Pending },
    /// The round was abandoned before its commit point; the engine was
    /// unwound and the round restarts after the transition.
    Aborted(Pending),
}

/// The gains/shares cursor chain either completed or broke on the first
/// failure (a dead link or an upstream `ShardDead` report).
enum ChainOutcome {
    Sum(f64),
    Broken(Pending),
}

/// The root tier's live state: engine, backbone links, and membership.
struct Root<'a> {
    cfg: &'a ShardedConfig,
    layout: ShardLayout,
    engine: RootEngine,
    /// Backbone links by shard id; `None` marks a buried shard-master.
    links: Vec<Option<Link>>,
    /// Wire counters absorbed from buried links, so run totals stay
    /// monotone across burials.
    retired: WireStats,
    members: Vec<bool>,
    epoch: u32,
    epochs: Vec<RootEpoch>,
    dead_shards: Vec<usize>,
    records: Vec<RootRound>,
    /// Zero scratch for folding a dead shard's fixed-shape cursor hop.
    zeros: Vec<f64>,
    started: Instant,
}

impl Root<'_> {
    fn totals(&self) -> WireStats {
        let mut total = self.retired;
        for link in self.links.iter().flatten() {
            total.absorb(&link.stats());
        }
        total
    }

    fn populated(&self, k: usize) -> bool {
        self.layout.range(k).any(|i| self.members[i])
    }

    /// Drops shard `k`'s backbone link, absorbing its wire counters.
    /// Idempotent; membership flips happen in [`Root::transition`].
    fn bury_link(&mut self, k: usize) {
        if let Some(link) = self.links[k].take() {
            self.retired.absorb(&link.stats());
            self.dead_shards.push(k);
        }
    }

    /// Chains one fixed-shape cursor through every shard in index
    /// order, folding a buried shard's slice as zeros locally — bitwise
    /// the engine's pairwise compensated reduction over the
    /// concatenated slices, regardless of where links have died.
    fn chain(
        &mut self,
        t: usize,
        phase: CursorPhase,
        logical: &mut usize,
    ) -> Result<ChainOutcome, NetError> {
        let timeout = self.cfg.frame_timeout;
        let Self { links, layout, zeros, .. } = self;
        let mut state = SumCursor::new().state();
        for (k, slot) in links.iter_mut().enumerate() {
            let Some(link) = slot.as_mut() else {
                let mut local = SumCursor::from_state(&state);
                local.extend(&zeros[..layout.range(k).len()]);
                state = local.state();
                continue;
            };
            if let Err(e) = link.send(&cursor_frame(t, phase, &state)) {
                return match classify(e) {
                    LinkFail::Dead => Ok(ChainOutcome::Broken(Pending::shard(k))),
                    LinkFail::Fatal(err) => Err(err),
                };
            }
            *logical += 1;
            match link.recv(timeout) {
                Ok(Frame::ShardCursor {
                    round,
                    phase: p,
                    partial_sum,
                    partial_compensation,
                    partial_len,
                    stack,
                }) if round == t as u64 && p == phase => {
                    state = cursor_state(partial_sum, partial_compensation, partial_len, stack);
                    *logical += 1;
                }
                Ok(Frame::ShardDead { workers, .. }) => {
                    return Ok(ChainOutcome::Broken(Pending::dead_workers(&workers)))
                }
                Ok(_) => {
                    return Err(NetError::Protocol(format!(
                        "shard {k} broke the round-{t} cursor chain"
                    )))
                }
                Err(e) => {
                    return match classify(e) {
                        LinkFail::Dead => Ok(ChainOutcome::Broken(Pending::shard(k))),
                        LinkFail::Fatal(err) => Err(err),
                    }
                }
            }
        }
        Ok(ChainOutcome::Sum(SumCursor::from_state(&state).value()))
    }

    /// Runs one round attempt to its commit — or to the failure that
    /// abandoned it. Everything before [`RootEngine::pin`] is
    /// abortable; `pin` mutates the running total irreversibly, so
    /// failures past it are post-commit and take effect at `t + 1`.
    fn attempt(&mut self, t: usize) -> Result<Attempt, NetError> {
        let m = self.cfg.num_shards;
        let timeout = self.cfg.frame_timeout;
        let before = self.totals();
        let mut logical = 0usize;

        // (1) Candidate election over the populated shards' aggregates.
        // Received in *descending* shard order — shard 0's workers are
        // scheduled first, so aggregates land in roughly ascending order
        // and the first blocking recv parks once, on the latest shard.
        // The election itself stays in ascending shard order (the
        // `candidates` vector is indexed, not ordered by arrival).
        let mut candidates: Vec<Option<ShardCandidate>> = (0..m).map(|_| None).collect();
        for k in (0..m).rev() {
            if !self.populated(k) {
                continue;
            }
            let Some(link) = self.links[k].as_mut() else {
                return Err(NetError::Protocol(format!(
                    "shard {k} is populated but its backbone link is gone"
                )));
            };
            match link.recv(timeout) {
                Ok(Frame::ShardAggregate { round, max_cost, straggler, share })
                    if round == t as u64 =>
                {
                    candidates[k] =
                        Some(ShardCandidate { cost: max_cost, worker: straggler as usize, share });
                    logical += 1;
                }
                Ok(Frame::ShardDead { round, workers }) if round == t as u64 => {
                    return Ok(Attempt::Aborted(Pending::dead_workers(&workers)));
                }
                Ok(_) => {
                    return Err(NetError::Protocol(format!(
                        "shard {k} sent an unexpected frame during round-{t} aggregation"
                    )))
                }
                Err(e) => {
                    return match classify(e) {
                        LinkFail::Dead => Ok(Attempt::Aborted(Pending::shard(k))),
                        LinkFail::Fatal(err) => Err(err),
                    }
                }
            }
        }
        let Some(elected) = combine_candidates(candidates) else {
            return Err(NetError::Protocol(format!(
                "round {t}: no populated shard produced a straggler candidate; live members \
                 exist but every aggregate was missing"
            )));
        };

        // (2) Coordination scalars down to every live shard.
        let alpha = self.engine.begin_round();
        let coord = Frame::ShardCoord {
            round: t as u64,
            global_cost: elected.cost,
            alpha,
            straggler: elected.worker as u64,
        };
        for k in 0..m {
            let Some(link) = self.links[k].as_mut() else { continue };
            if let Err(e) = link.send(&coord) {
                return match classify(e) {
                    LinkFail::Dead => {
                        self.engine.abort_round(false);
                        Ok(Attempt::Aborted(Pending::shard(k)))
                    }
                    LinkFail::Fatal(err) => Err(err),
                };
            }
            logical += 1;
        }

        // (3) The eq. (6) remainder via the shard-chained gains cursor.
        let mut total_gain = match self.chain(t, CursorPhase::Gains, &mut logical)? {
            ChainOutcome::Sum(sum) => sum,
            ChainOutcome::Broken(pending) => {
                self.engine.abort_round(false);
                return Ok(Attempt::Aborted(pending));
            }
        };

        // (4) The root's order-sensitive tail: guard, pin, commit,
        // refresh, tighten — RootEngine's documented statement order.
        let straggler_share = elected.share;
        let rescale = self.engine.guard_scale(straggler_share, total_gain);
        if let Some(scale) = rescale {
            let frame = Frame::ShardRescale { round: t as u64, scale };
            for k in 0..m {
                let Some(link) = self.links[k].as_mut() else { continue };
                if let Err(e) = link.send(&frame) {
                    return match classify(e) {
                        LinkFail::Dead => {
                            self.engine.abort_round(true);
                            Ok(Attempt::Aborted(Pending::shard(k)))
                        }
                        LinkFail::Fatal(err) => Err(err),
                    };
                }
                logical += 1;
            }
            total_gain = match self.chain(t, CursorPhase::Gains, &mut logical)? {
                ChainOutcome::Sum(sum) => sum,
                ChainOutcome::Broken(pending) => {
                    self.engine.abort_round(true);
                    return Ok(Attempt::Aborted(pending));
                }
            };
        }
        let new_straggler_share = self.engine.pin(straggler_share, total_gain);
        let refresh = self.engine.needs_total_refresh();

        // ---- commit point: no aborts past here ----
        let mut post = Pending::default();
        let commit = Frame::ShardCommit {
            round: t as u64,
            straggler: elected.worker as u64,
            straggler_share: new_straggler_share,
            refresh,
        };
        for k in 0..m {
            let Some(link) = self.links[k].as_mut() else { continue };
            match link.send(&commit) {
                Ok(()) => logical += 1,
                Err(e) => match classify(e) {
                    LinkFail::Dead => {
                        self.bury_link(k);
                        post.shards.push(k);
                    }
                    LinkFail::Fatal(err) => return Err(err),
                },
            }
        }
        if refresh && post.is_empty() {
            match self.chain(t, CursorPhase::Shares, &mut logical)? {
                ChainOutcome::Sum(sum) => self.engine.refresh_total(sum),
                ChainOutcome::Broken(pending) => {
                    if !pending.workers.is_empty() {
                        return Err(NetError::Protocol(format!(
                            "a shard reported worker deaths inside the round-{t} refresh chain"
                        )));
                    }
                    for &k in &pending.shards {
                        self.bury_link(k);
                    }
                    post.shards.extend(pending.shards);
                    // The refresh is skipped: the imminent mass epoch's
                    // `apply_membership` reseeds the running total, and
                    // nothing reads it in between, so the trajectory is
                    // unaffected. Shards still parked on the refresh
                    // hop are released by the epoch announcement.
                }
            }
        }
        // refresh && !post.is_empty(): same skip, chain never starts.
        self.engine.tighten(new_straggler_share);

        let after = self.totals();
        let record = RootRound {
            round: t,
            straggler: elected.worker,
            global_cost: elected.cost,
            alpha,
            rescaled: rescale.is_some(),
            refreshed: refresh,
            messages: logical,
            bytes: ((after.bytes_sent - before.bytes_sent)
                + (after.bytes_received - before.bytes_received)) as usize,
            elapsed: self.started.elapsed().as_secs_f64(),
        };
        Ok(Attempt::Committed { record, post })
    }

    /// Turns pending deaths into membership epochs until none remain.
    /// Per iteration: flip members, enforce the survivor and quorum
    /// policies, announce `ShardEpoch`, gather every live shard's
    /// committed slice, apply the engine's renormalization, scatter the
    /// authoritative slices back. A failure before the renormalization
    /// restarts the transition with a fresh epoch number and an
    /// untouched engine (the bitwise boundary); a failure after it is
    /// deferred to a follow-up epoch.
    fn transition(&mut self, next_round: usize, mut pending: Pending) -> Result<(), NetError> {
        let n = self.layout.num_workers();
        let timeout = self.cfg.frame_timeout;
        'transitions: while !pending.is_empty() {
            for &w in &pending.workers {
                if w >= n {
                    return Err(NetError::Protocol(format!(
                        "a shard reported an out-of-range dead worker {w}"
                    )));
                }
                self.members[w] = false;
            }
            pending.workers.clear();
            for k in std::mem::take(&mut pending.shards) {
                let range = self.layout.range(k);
                self.bury_link(k);
                for i in range {
                    self.members[i] = false;
                }
            }
            if !self.members.iter().any(|&alive| alive) {
                return Err(NetError::Protocol(
                    "every worker has died; the run cannot continue".into(),
                ));
            }
            let live_links = self.links.iter().flatten().count();
            if live_links < self.cfg.min_live_shards {
                for link in self.links.iter_mut().flatten() {
                    let _ = link.send(&Frame::Shutdown);
                }
                return Err(NetError::Protocol(format!(
                    "shard quorum lost before round {next_round}: {live_links} live \
                     shard-master(s) remain (dead shards, in burial order: {:?}), below \
                     min_live_shards = {}",
                    self.dead_shards, self.cfg.min_live_shards
                )));
            }
            self.epoch += 1;

            // Announce. A link that dies here restarts the transition
            // with the shard added to the burial set; survivors that
            // already saw this epoch number simply adopt the next one.
            let announce = Frame::ShardEpoch {
                epoch: self.epoch,
                round: next_round as u64,
                members: self.members.clone(),
            };
            for k in 0..self.cfg.num_shards {
                let Some(link) = self.links[k].as_mut() else { continue };
                if let Err(e) = link.send(&announce) {
                    match classify(e) {
                        LinkFail::Dead => {
                            pending.shards.push(k);
                            continue 'transitions;
                        }
                        LinkFail::Fatal(err) => return Err(err),
                    }
                }
            }

            // Gather every live shard's committed slice. Stale frames
            // of abandoned attempts and epochs are filtered here; a
            // crossing `ShardDead` is skipped too — its reporter
            // re-reports under the new epoch after resuming.
            let mut full = vec![0.0f64; n];
            for k in 0..self.cfg.num_shards {
                if self.links[k].is_none() {
                    continue;
                }
                let range = self.layout.range(k);
                let mut covered = vec![false; range.len()];
                let mut got = 0usize;
                while got < range.len() {
                    let link = self.links[k].as_mut().expect("live link checked above");
                    match link.recv(timeout) {
                        Ok(Frame::ShardSlice { epoch, start, shares }) if epoch == self.epoch => {
                            let start = start as usize;
                            if start < range.start || start + shares.len() > range.end {
                                return Err(NetError::Protocol(format!(
                                    "shard {k} gathered a slice outside its range"
                                )));
                            }
                            for (j, &s) in shares.iter().enumerate() {
                                let idx = start + j;
                                full[idx] = s;
                                if !covered[idx - range.start] {
                                    covered[idx - range.start] = true;
                                    got += 1;
                                }
                            }
                        }
                        Ok(Frame::ShardSlice { .. })
                        | Ok(Frame::ShardAggregate { .. })
                        | Ok(Frame::ShardDead { .. }) => {} // stale or crossing
                        Ok(_) => {
                            return Err(NetError::Protocol(format!(
                                "shard {k} sent an unexpected frame during the epoch-{} gather",
                                self.epoch
                            )))
                        }
                        Err(e) => match classify(e) {
                            LinkFail::Dead => {
                                pending.shards.push(k);
                                continue 'transitions;
                            }
                            LinkFail::Fatal(err) => return Err(err),
                        },
                    }
                }
            }

            // The epoch becomes real: the engine's exact renormalization
            // over the stitched full vector, then the schedule record.
            self.engine.apply_membership(&mut full, &self.members);
            self.epochs.push(RootEpoch {
                epoch: self.epoch,
                round: next_round,
                members: self.members.clone(),
            });

            // Scatter the authoritative slices. The epoch is already
            // recorded, so a death here is deferred to a follow-up
            // epoch instead of a restart.
            for k in 0..self.cfg.num_shards {
                if self.links[k].is_none() {
                    continue;
                }
                let range = self.layout.range(k);
                let mut off = range.start;
                while off < range.end {
                    let end = (off + SHARD_SLICE_CHUNK).min(range.end);
                    let frame = Frame::ShardSlice {
                        epoch: self.epoch,
                        start: off as u32,
                        shares: full[off..end].to_vec(),
                    };
                    let link = self.links[k].as_mut().expect("live link checked above");
                    if let Err(e) = link.send(&frame) {
                        match classify(e) {
                            LinkFail::Dead => {
                                pending.shards.push(k);
                                break;
                            }
                            LinkFail::Fatal(err) => return Err(err),
                        }
                    }
                    off = end;
                }
            }
        }
        Ok(())
    }

    fn run(mut self) -> Result<RootReport, NetError> {
        let mut t = 0usize;
        while t < self.cfg.rounds {
            match self.attempt(t)? {
                Attempt::Committed { record, post } => {
                    self.records.push(record);
                    t += 1;
                    if !post.is_empty() {
                        self.transition(t, post)?;
                    }
                }
                Attempt::Aborted(pending) => self.transition(t, pending)?,
            }
        }

        // Orderly shutdown of the backbone; shard-masters relay it on
        // to their workers.
        for link in self.links.iter_mut().flatten() {
            let _ = link.send(&Frame::Shutdown);
        }
        let wire = self.totals();
        Ok(RootReport {
            rounds: self.records,
            layout: self.layout,
            epochs: self.epochs,
            members: self.members,
            dead_shards: self.dead_shards,
            wire,
            wall_clock: self.started.elapsed().as_secs_f64(),
        })
    }
}

/// Accepts the backbone handshakes within a bounded admission window.
/// Expiry is a structured error naming the shards that never completed
/// the handshake — admission cannot hang and cannot panic.
fn admit_backbone(
    listener: &TcpListener,
    cfg: &ShardedConfig,
    layout: &ShardLayout,
) -> Result<Vec<Option<Link>>, NetError> {
    let (n, m) = (cfg.num_workers, cfg.num_shards);
    let window = cfg.frame_timeout.max(Duration::from_millis(500)) * 4;
    let deadline = Instant::now() + window;
    listener.set_nonblocking(true).map_err(TransportError::from)?;
    let mut slots: Vec<Option<Link>> = (0..m).map(|_| None).collect();
    let mut admitted = 0usize;
    while admitted < m {
        if Instant::now() >= deadline {
            let _ = listener.set_nonblocking(false);
            let missing: Vec<usize> =
                slots.iter().enumerate().filter(|(_, s)| s.is_none()).map(|(k, _)| k).collect();
            return Err(NetError::Protocol(format!(
                "backbone admission timed out after {window:?}: shards {missing:?} never \
                 completed the ShardHello/ShardWelcome handshake"
            )));
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            Err(e) => return Err(TransportError::from(e).into()),
        };
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        let Ok(mut conn) = FrameConn::new(stream) else { continue };
        let shard = match conn.recv(cfg.frame_timeout) {
            Ok(Frame::ShardHello { shard, num_shards })
                if num_shards as usize == m
                    && (shard as usize) < m
                    && slots[shard as usize].is_none() =>
            {
                shard as usize
            }
            Ok(_) | Err(_) => continue, // rejected
        };
        let range = layout.range(shard);
        let welcome = Frame::ShardWelcome {
            shard: shard as u32,
            num_shards: m as u32,
            num_workers: n as u32,
            rounds: cfg.rounds as u64,
            range_start: range.start as u32,
            range_end: range.end as u32,
            env: cfg.env,
            drop_probability: cfg.fault.drop_probability,
            duplicate_probability: cfg.fault.duplicate_probability,
            fault_seed: cfg.fault.seed,
            retry_ack_timeout: cfg.fault.retry.ack_timeout,
            retry_backoff: cfg.fault.retry.backoff,
            retry_max_attempts: cfg.fault.retry.max_attempts as u32,
        };
        if conn.send(&welcome).is_err() {
            continue; // died between hello and welcome: rejected
        }
        slots[shard] = Some(Link::with_plan(
            conn,
            cfg.backbone_fault.clone(),
            BACKBONE_ROOT_CODE,
            backbone_shard_code(shard),
        ));
        admitted += 1;
    }
    let _ = listener.set_nonblocking(false);
    Ok(slots)
}

/// Accepts `cfg.num_shards` shard-master connections on `listener`, runs
/// the root tier of the two-level control plane to the horizon — riding
/// out worker and shard-master crashes as membership epochs — and shuts
/// the backbone down.
///
/// Shard identity is self-declared in `ShardHello` (shard-masters are
/// configured peers, not anonymous workers); a connection declaring a
/// mismatched shard count, an out-of-range or duplicate shard id, or
/// anything other than a well-formed `ShardHello` is rejected while the
/// listener keeps accepting, up to a bounded admission window.
///
/// # Panics
///
/// Panics if the configuration is degenerate: zero rounds, fewer than
/// two workers, a shard count outside `1..=N`, or a quorum above `M`.
/// Runtime failures — including peers that crash, stall, or violate the
/// protocol — are structured [`NetError`]s, never panics.
pub fn run_root(listener: &TcpListener, cfg: &ShardedConfig) -> Result<RootReport, NetError> {
    let (n, m) = (cfg.num_workers, cfg.num_shards);
    assert!(n >= 2, "at least two workers required");
    assert!(m >= 1 && m <= n, "shard count must be in 1..=N");
    assert!(cfg.rounds > 0, "at least one round required");
    assert!(cfg.min_live_shards <= m, "quorum cannot exceed the shard count");

    let layout = ShardLayout::even(n, m);
    let engine = RootEngine::new(&Allocation::uniform(n), cfg.dolbie);
    let links = admit_backbone(listener, cfg, &layout)?;
    let max_range = (0..m).map(|k| layout.range(k).len()).max().unwrap_or(0);
    let root = Root {
        cfg,
        layout,
        engine,
        links,
        retired: WireStats::default(),
        members: vec![true; n],
        epoch: 0,
        epochs: Vec::new(),
        dead_shards: Vec::new(),
        records: Vec::with_capacity(cfg.rounds),
        zeros: vec![0.0; max_range],
        started: Instant::now(),
    };
    root.run()
}

/// Options of one shard-master run (everything else arrives in
/// `ShardWelcome`).
#[derive(Debug, Clone)]
pub struct ShardMasterOptions {
    /// This shard's id `k ∈ 0..M`.
    pub shard: usize,
    /// Shard count `M`, cross-checked against the root's.
    pub num_shards: usize,
    /// Per-frame read deadline on the root link and every worker link.
    pub frame_timeout: Duration,
    /// Fault plan replayed on this side of the backbone link.
    pub backbone_fault: FaultPlan,
    /// Crash injection: return (dropping the root link and the whole
    /// worker fleet) keyed on this round; see [`ShardKill`].
    pub die_after_round: Option<usize>,
    /// `true` dies mid-round (after the aggregate, a pre-commit death);
    /// `false` dies after the round's commit and drain.
    pub die_mid_round: bool,
}

/// One round's slice-local record at a shard-master: the played shares
/// and observed costs of this shard's worker range. Concatenating the
/// slices of all `M` shards in shard order reconstructs the flat
/// per-round allocation and cost vectors — that is what the parity
/// harness stitches and compares bitwise. Buried local slots hold the
/// exact `0.0` the engine's renormalization wrote.
#[derive(Debug, Clone)]
pub struct ShardRoundSlice {
    /// Round index `t`.
    pub round: usize,
    /// The slice of shares the round was played with (pre-update).
    pub shares: Vec<f64>,
    /// The slice of observed local costs (`0.0` for buried slots).
    pub costs: Vec<f64>,
}

/// Totals and per-round slices of one completed shard-master run.
#[derive(Debug)]
pub struct ShardRunReport {
    /// This shard's id.
    pub shard: usize,
    /// The global worker range this shard owned.
    pub range: Range<usize>,
    /// Per-round slice records (one per committed round, in order).
    pub rounds: Vec<ShardRoundSlice>,
    /// The final share slice after the last commit.
    pub final_shares: Vec<f64>,
    /// Membership epochs this shard-master served.
    pub epochs_seen: u32,
    /// Run-total wire counters over the worker links (buried links
    /// included).
    pub wire: WireStats,
    /// Run-total wire counters on the root link.
    pub root_wire: WireStats,
}

/// A `ShardEpoch` announcement as received, before it is served.
struct EpochRecord {
    epoch: u32,
    round: u64,
    members: Vec<bool>,
}

/// What a completed transition (or a shutdown crossing one) tells the
/// round loop to do next.
enum Flow {
    /// Resume the round loop at this round under the new epoch.
    Resume { round: usize },
    /// The root closed the run; shut the fleet down and report.
    Terminate,
}

/// A round-loop frame from the root, with epoch transitions and
/// shutdowns already handled.
enum Tail {
    Frame(Frame),
    Flow(Flow),
}

/// The shard-master's live state below the round loop.
struct ShardCtx {
    shard: usize,
    range: Range<usize>,
    n_total: usize,
    root: Link,
    fleet: Fleet,
    staircase: bool,
    timeout: Duration,
    epoch: u32,
    epochs_seen: u32,
    /// Liveness by local slot; flips only when an epoch mask buries.
    local_members: Vec<bool>,
    /// The mirrored committed share slice.
    x: Vec<f64>,
    /// Wire counters absorbed from buried worker links.
    retired: WireStats,
}

impl ShardCtx {
    fn live(&self) -> Vec<usize> {
        (0..self.range.len()).filter(|&i| self.local_members[i]).collect()
    }

    fn collect(
        &mut self,
        t: usize,
        phase: Phase,
        await_set: &[usize],
        out: &mut [f64],
        logical: &mut usize,
    ) -> Result<Option<Vec<usize>>, NetError> {
        let result = if self.staircase {
            self.fleet.collect_blocking(t, self.epoch, phase, await_set, out, logical)
        } else {
            self.fleet.collect(t, self.epoch, phase, await_set, out, logical)
        };
        match result {
            Ok(()) => Ok(None),
            Err(SweepFail::Dead(dead)) => Ok(Some(dead)),
            Err(SweepFail::Fatal(e)) => Err(e),
        }
    }

    /// Receives one round-loop frame from the root, transparently
    /// serving any epoch transition (and absorbing a shutdown) so the
    /// round loop only ever sees in-round frames or a [`Flow`].
    fn recv_round_frame(&mut self) -> Result<Tail, NetError> {
        match self.root.recv(self.timeout)? {
            Frame::ShardEpoch { epoch, round, members } => {
                let flow = self.serve_transition(EpochRecord { epoch, round, members })?;
                Ok(Tail::Flow(flow))
            }
            Frame::Shutdown => Ok(Tail::Flow(Flow::Terminate)),
            frame => Ok(Tail::Frame(frame)),
        }
    }

    /// Serves one epoch transition: stream the committed slice up
    /// (gather), await the authoritative slices back (scatter), bury the
    /// locally-dead, and hand the survivors their `Epoch` frames. A
    /// higher epoch announcement arriving mid-scatter means the root
    /// restarted the transition — re-serve under the new number.
    fn serve_transition(&mut self, mut er: EpochRecord) -> Result<Flow, NetError> {
        let count = self.range.len();
        'serve: loop {
            if er.members.len() != self.n_total {
                return Err(NetError::Protocol(format!(
                    "epoch {} mask names {} workers, fleet has {}",
                    er.epoch,
                    er.members.len(),
                    self.n_total
                )));
            }
            // Gather: our committed slice, chunked under the frame cap.
            let mut off = 0usize;
            while off < count {
                let end = (off + SHARD_SLICE_CHUNK).min(count);
                self.root.send(&Frame::ShardSlice {
                    epoch: er.epoch,
                    start: (self.range.start + off) as u32,
                    shares: self.x[off..end].to_vec(),
                })?;
                off = end;
            }
            // Scatter: adopt the renormalized authoritative slice.
            let mut covered = vec![false; count];
            let mut got = 0usize;
            while got < count {
                match self.root.recv(self.timeout)? {
                    Frame::ShardSlice { epoch, start, shares } if epoch == er.epoch => {
                        let start = start as usize;
                        if start < self.range.start || start + shares.len() > self.range.end {
                            return Err(NetError::Protocol(
                                "scattered slice lands outside this shard's range".into(),
                            ));
                        }
                        for (j, &s) in shares.iter().enumerate() {
                            let local = start - self.range.start + j;
                            self.x[local] = s;
                            if !covered[local] {
                                covered[local] = true;
                                got += 1;
                            }
                        }
                    }
                    Frame::ShardSlice { .. } => {} // stale epoch
                    Frame::ShardEpoch { epoch, round, members } if epoch > er.epoch => {
                        er = EpochRecord { epoch, round, members };
                        continue 'serve;
                    }
                    Frame::Shutdown => return Ok(Flow::Terminate),
                    _ => {
                        return Err(NetError::Protocol(format!(
                            "root sent an unexpected frame during the epoch-{} transition",
                            er.epoch
                        )))
                    }
                }
            }
            // Adopt: bury what the mask buried, announce to survivors.
            // Local deaths *not* named in the mask (a crossing report
            // the root has not processed yet) stay members and are
            // re-reported under the new epoch by the caller.
            let now = Instant::now();
            for i in 0..count {
                let alive = er.members[self.range.start + i];
                if self.local_members[i] && !alive {
                    if let Some(conn) = self.fleet.links[i].take() {
                        self.retired.absorb(&conn.stats());
                    }
                    self.local_members[i] = false;
                } else if self.local_members[i] {
                    let frame = Frame::Epoch {
                        epoch: er.epoch,
                        round: er.round,
                        share: self.x[i],
                        members: er.members.clone(),
                    };
                    self.fleet.queue_to(i, &frame, now);
                }
            }
            self.epoch = er.epoch;
            self.epochs_seen += 1;
            return Ok(Flow::Resume { round: er.round as usize });
        }
    }

    /// Reports locally-discovered worker deaths upstream and parks
    /// until the root answers with an epoch (or closes the run). Stale
    /// frames of the abandoned round — the root may have sent them
    /// before it learned of the death — are skipped. On resume, deaths
    /// the new mask did not cover (a crossing with an unrelated epoch)
    /// stay pending and are re-reported under the new round tag.
    fn report_and_transition(
        &mut self,
        t: usize,
        pending: &mut Vec<usize>,
    ) -> Result<Flow, NetError> {
        self.fleet.clear_awaiting();
        let workers: Vec<u64> = pending.iter().map(|&i| (self.range.start + i) as u64).collect();
        self.root.send(&Frame::ShardDead { round: t as u64, workers })?;
        loop {
            match self.root.recv(self.timeout)? {
                Frame::ShardEpoch { epoch, round, members } => {
                    let flow = self.serve_transition(EpochRecord { epoch, round, members })?;
                    if let Flow::Resume { .. } = flow {
                        pending.retain(|&i| self.local_members[i]);
                    }
                    return Ok(flow);
                }
                Frame::Shutdown => return Ok(Flow::Terminate),
                Frame::ShardCoord { .. }
                | Frame::ShardCursor { .. }
                | Frame::ShardRescale { .. }
                | Frame::ShardCommit { .. } => continue, // stale round frames
                _ => {
                    return Err(NetError::Protocol(
                        "root sent an unexpected frame while a death report was pending".into(),
                    ))
                }
            }
        }
    }

    fn into_report(self, rounds: Vec<ShardRoundSlice>) -> ShardRunReport {
        let mut wire = self.fleet.wire_snapshot();
        wire.absorb(&self.retired);
        ShardRunReport {
            shard: self.shard,
            range: self.range,
            rounds,
            final_shares: self.x,
            epochs_seen: self.epochs_seen,
            wire,
            root_wire: self.root.stats(),
        }
    }
}

/// Runs one shard-master: handshakes upstream on `root` (ShardHello →
/// ShardWelcome), admits its worker range on `listener` through the
/// shared evented admission, then relays rounds between the root
/// backbone and its worker fleet until `Shutdown` — mapping worker
/// deaths onto membership epochs through the backbone instead of
/// failing.
///
/// Workers are admitted with their *global* ids (`range.start +
/// admission slot`), so their cost derivation and lossy-envelope hash
/// keys are identical to a flat run over the same `N` — a worker cannot
/// tell which architecture coordinates it.
pub fn run_shard_master(
    root: TcpStream,
    listener: &TcpListener,
    opts: &ShardMasterOptions,
) -> Result<ShardRunReport, NetError> {
    let mut conn = FrameConn::new(root).map_err(TransportError::from)?;
    conn.send(&Frame::ShardHello { shard: opts.shard as u32, num_shards: opts.num_shards as u32 })?;
    let welcome = conn.recv(opts.frame_timeout)?;
    let Frame::ShardWelcome {
        shard,
        num_shards,
        num_workers,
        rounds,
        range_start,
        range_end,
        env,
        drop_probability,
        duplicate_probability,
        fault_seed,
        retry_ack_timeout,
        retry_backoff,
        retry_max_attempts,
    } = welcome
    else {
        return Err(NetError::Protocol("expected ShardWelcome after ShardHello".into()));
    };
    if shard as usize != opts.shard || num_shards as usize != opts.num_shards {
        return Err(NetError::Protocol("root and shard disagree on the layout".into()));
    }
    let root_link = Link::with_plan(
        conn,
        opts.backbone_fault.clone(),
        backbone_shard_code(opts.shard),
        BACKBONE_ROOT_CODE,
    );

    let range = range_start as usize..range_end as usize;
    let count = range.len();
    let n_total = num_workers as usize;
    let mut fault = FaultPlan::seeded(fault_seed).with_retry(RetryPolicy {
        ack_timeout: retry_ack_timeout,
        backoff: retry_backoff,
        max_attempts: retry_max_attempts as usize,
    });
    if drop_probability > 0.0 {
        fault = fault.with_drop_probability(drop_probability);
    }
    if duplicate_probability > 0.0 {
        fault = fault.with_duplicate_probability(duplicate_probability);
    }

    // Worker admission: the same shared evented machinery as the flat
    // master, parameterized with this shard's global id window.
    let initial = Allocation::uniform(n_total);
    listener.set_nonblocking(true).map_err(TransportError::from)?;
    let admitted = admit_concurrent(
        listener,
        count,
        opts.frame_timeout,
        &fault,
        |slot| {
            let global = range_start as usize + slot;
            welcome_frame(global as u32, num_workers, rounds, env, initial.share(global), &fault)
        },
        |slot| (range_start as usize + slot) as u64 + 1,
    );
    let _ = listener.set_nonblocking(false);
    let mut fleet = Fleet::new(admitted?, opts.frame_timeout);
    // Lossless fleets take the staircase collect: the worker links carry
    // no retransmission clocks, so the sweep's poll/sleep duty cycle —
    // CPU stolen from the very workers the phase waits on — is pure
    // cost. The sockets flip to blocking mode once, here, and stay
    // there; crash discovery rides the blocking deadlines instead.
    let staircase = fault.is_lossless();
    if staircase {
        fleet.enter_staircase().map_err(|fail| match fail {
            SweepFail::Dead(dead) => {
                NetError::Protocol(format!("worker sockets died entering the staircase: {dead:?}"))
            }
            SweepFail::Fatal(e) => e,
        })?;
    }

    let mut ctx = ShardCtx {
        shard: opts.shard,
        range: range.clone(),
        n_total,
        root: root_link,
        fleet,
        staircase,
        timeout: opts.frame_timeout,
        epoch: 0,
        epochs_seen: 0,
        local_members: vec![true; count],
        x: range.clone().map(|i| initial.share(i)).collect(),
        retired: WireStats::default(),
    };
    let mut gains = vec![0.0f64; count];
    let mut records: Vec<ShardRoundSlice> = Vec::with_capacity(rounds as usize);
    let mut pending_dead: Vec<usize> = Vec::new();
    let mut terminated = false;
    let mut t = 0usize;

    'run: while t < rounds as usize {
        // Deaths discovered last iteration go upstream before anything
        // else; the root answers with the epoch that resumes us.
        if !pending_dead.is_empty() {
            match ctx.report_and_transition(t, &mut pending_dead)? {
                Flow::Resume { round } => {
                    t = round;
                    continue 'run;
                }
                Flow::Terminate => {
                    terminated = true;
                    break 'run;
                }
            }
        }

        let live = ctx.live();
        let played = ctx.x.clone();
        let mut local_costs = vec![0.0f64; count];
        let mut logical = 0usize;

        if !live.is_empty() {
            // Round barrier + cost collection over the live slots. The
            // epoch tag filters stale frames of abandoned attempts.
            let start = Frame::RoundStart { epoch: ctx.epoch, round: t as u64 };
            ctx.fleet.broadcast(&start, &live, Instant::now());
            if let Some(dead) =
                ctx.collect(t, Phase::Cost, &live, &mut local_costs, &mut logical)?
            {
                pending_dead = dead;
                continue 'run;
            }

            // The shard-local candidate: lowest-index first-maximum,
            // strict `>` over the live slots — the associative piece of
            // the flat argmax (buried slots simply do not compete).
            let mut best: Option<usize> = None;
            for &i in &live {
                let better = match best {
                    None => true,
                    Some(b) => local_costs[i] > local_costs[b],
                };
                if better {
                    best = Some(i);
                }
            }
            let best = best.expect("live set is non-empty");
            ctx.root.send(&Frame::ShardAggregate {
                round: t as u64,
                max_cost: local_costs[best],
                straggler: (range.start + best) as u64,
                share: ctx.x[best],
            })?;
        }
        if opts.die_mid_round && opts.die_after_round == Some(t) {
            // Injected crash: vanish mid-round without a goodbye,
            // dropping the root link and the whole worker fleet.
            return Ok(ctx.into_report(records));
        }

        // Coordination scalars from the root (or a transition another
        // shard triggered while we were reporting our aggregate).
        let (global_cost, alpha, straggler) = match ctx.recv_round_frame()? {
            Tail::Flow(Flow::Resume { round }) => {
                pending_dead.clear();
                t = round;
                continue 'run;
            }
            Tail::Flow(Flow::Terminate) => {
                terminated = true;
                break 'run;
            }
            Tail::Frame(Frame::ShardCoord { round, global_cost, alpha, straggler })
                if round == t as u64 =>
            {
                (global_cost, alpha, straggler as usize)
            }
            Tail::Frame(_) => {
                return Err(NetError::Protocol(format!(
                    "root sent an unexpected frame during round-{t} coordination"
                )))
            }
        };
        let local_straggler = range.contains(&straggler).then(|| straggler - range.start);
        let others: Vec<usize> =
            live.iter().copied().filter(|&i| Some(i) != local_straggler).collect();

        // Fan the scalars out; collect the non-stragglers' gains. The
        // local straggler's gain stays 0.0, exactly the reference's
        // fixed-shape slot — as do the buried slots'.
        let now = Instant::now();
        let shared =
            Frame::Coordination { round: t as u64, global_cost, alpha, is_straggler: false };
        ctx.fleet.broadcast(&shared, &others, now);
        if let Some(ls) = local_straggler {
            let pin =
                Frame::Coordination { round: t as u64, global_cost, alpha, is_straggler: true };
            ctx.fleet.queue_to(ls, &pin, now);
        }
        gains.fill(0.0);
        if let Some(dead) = ctx.collect(t, Phase::Decision, &others, &mut gains, &mut logical)? {
            pending_dead = dead;
            continue 'run;
        }

        // Serve the root's tail: cursor hops, the rare rescale, then the
        // commit. TCP ordering on the root link guarantees a rescale is
        // seen before the re-chained cursor and the commit before any
        // refresh cursor; an epoch announcement interleaving here means
        // the round was abandoned (or, post-commit, that the next round
        // opens under a new epoch).
        let refresh = loop {
            match ctx.recv_round_frame()? {
                Tail::Flow(Flow::Resume { round }) => {
                    pending_dead.clear();
                    t = round;
                    continue 'run;
                }
                Tail::Flow(Flow::Terminate) => {
                    terminated = true;
                    break 'run;
                }
                Tail::Frame(Frame::ShardCursor {
                    round,
                    phase: CursorPhase::Gains,
                    partial_sum,
                    partial_compensation,
                    partial_len,
                    stack,
                }) if round == t as u64 => {
                    let state = cursor_state(partial_sum, partial_compensation, partial_len, stack);
                    let mut local = SumCursor::from_state(&state);
                    local.extend(&gains);
                    ctx.root.send(&cursor_frame(t, CursorPhase::Gains, &local.state()))?;
                }
                Tail::Frame(Frame::ShardRescale { round, scale }) if round == t as u64 => {
                    for g in gains.iter_mut() {
                        *g *= scale;
                    }
                    let adjust = Frame::Adjust { round: t as u64, scale };
                    ctx.fleet.broadcast(&adjust, &others, Instant::now());
                }
                Tail::Frame(Frame::ShardCommit {
                    round,
                    straggler: s,
                    straggler_share,
                    refresh,
                }) if round == t as u64 && s as usize == straggler => {
                    // Commit: apply the gains, pin the straggler. The
                    // record is pushed here — a transition interrupting
                    // the refresh hop must not lose the committed round.
                    for (xi, gi) in ctx.x.iter_mut().zip(&gains) {
                        *xi += gi;
                    }
                    if let Some(ls) = local_straggler {
                        ctx.x[ls] = straggler_share;
                        let assignment =
                            Frame::Assignment { round: t as u64, share: straggler_share };
                        ctx.fleet.queue_to(ls, &assignment, Instant::now());
                    }
                    records.push(ShardRoundSlice {
                        round: t,
                        shares: played.clone(),
                        costs: local_costs.clone(),
                    });
                    break refresh;
                }
                Tail::Frame(_) => {
                    return Err(NetError::Protocol(format!(
                        "root sent an unexpected frame during round-{t} commit"
                    )))
                }
            }
        };
        if refresh {
            match ctx.recv_round_frame()? {
                Tail::Flow(Flow::Resume { round }) => {
                    pending_dead.clear();
                    t = round;
                    continue 'run;
                }
                Tail::Flow(Flow::Terminate) => {
                    terminated = true;
                    break 'run;
                }
                Tail::Frame(Frame::ShardCursor {
                    round,
                    phase: CursorPhase::Shares,
                    partial_sum,
                    partial_compensation,
                    partial_len,
                    stack,
                }) if round == t as u64 => {
                    let state = cursor_state(partial_sum, partial_compensation, partial_len, stack);
                    let mut local = SumCursor::from_state(&state);
                    local.extend(&ctx.x);
                    ctx.root.send(&cursor_frame(t, CursorPhase::Shares, &local.state()))?;
                }
                Tail::Frame(_) => {
                    return Err(NetError::Protocol(format!(
                        "root sent an unexpected frame during round-{t} refresh"
                    )))
                }
            }
        }

        // Deliver the commit to the workers before the next barrier. A
        // death discovered here is post-commit: the round stands and
        // the report goes up at the top of the next iteration.
        let dead = ctx.fleet.drain()?;
        if !dead.is_empty() {
            pending_dead = dead;
        }
        t += 1;
        if !opts.die_mid_round && opts.die_after_round == Some(t - 1) {
            // Injected crash after the commit: the root discovers it at
            // the next round's aggregation.
            return Ok(ctx.into_report(records));
        }
    }

    if !terminated {
        // The root closes the run — but a post-horizon mass epoch (a
        // shard that died during the final commit) may arrive first.
        loop {
            match ctx.root.recv(opts.frame_timeout)? {
                Frame::Shutdown => break,
                Frame::ShardEpoch { epoch, round, members } => {
                    match ctx.serve_transition(EpochRecord { epoch, round, members })? {
                        Flow::Resume { .. } => continue,
                        Flow::Terminate => break,
                    }
                }
                _ => return Err(NetError::Protocol("expected Shutdown after the horizon".into())),
            }
        }
    }
    ctx.fleet.shutdown(opts.frame_timeout);
    Ok(ctx.into_report(records))
}

/// The root's report plus every shard-master's and worker's outcome.
#[derive(Debug)]
pub struct ShardedLoopbackRun {
    /// The root-tier report (scalar trajectory, O(M) wire accounting,
    /// membership schedule).
    pub root: RootReport,
    /// Per-shard reports, in shard order. An injected shard kill still
    /// yields a (partial) report; its missing rounds stitch as the
    /// zeros the engine's renormalization wrote for the buried range.
    pub shards: Vec<ShardRunReport>,
    /// Per-thread worker outcomes, in global worker order. Workers of a
    /// killed shard-master report transport errors — their coordinator
    /// vanished under them.
    pub workers: Vec<Result<WorkerReport, NetError>>,
}

impl ShardedLoopbackRun {
    /// Stitches the shard slices back into flat per-round allocations:
    /// element `t` is the full `N`-vector the fleet played in round `t`,
    /// and one extra final entry holds the post-horizon shares — the
    /// same shape the parity harnesses compare bitwise against the
    /// sequential engine. Rounds a killed shard never committed, and
    /// its post-burial final shares, are the exact `0.0` the engine's
    /// renormalization assigns a buried range.
    pub fn allocations(&self) -> Vec<Vec<f64>> {
        let rounds = self.root.rounds.len();
        let mut out = Vec::with_capacity(rounds + 1);
        for t in 0..rounds {
            let mut flat = Vec::new();
            for shard in &self.shards {
                match shard.rounds.get(t).filter(|r| r.round == t) {
                    Some(r) => flat.extend_from_slice(&r.shares),
                    None => flat.extend(std::iter::repeat_n(0.0, shard.range.len())),
                }
            }
            out.push(flat);
        }
        let mut last = Vec::new();
        for shard in &self.shards {
            for (j, i) in shard.range.clone().enumerate() {
                let alive = self.root.members.get(i).copied().unwrap_or(false);
                last.push(if alive {
                    shard.final_shares.get(j).copied().unwrap_or(0.0)
                } else {
                    0.0
                });
            }
        }
        out.push(last);
        out
    }
}

/// Runs root + `M` shard-masters + `N` workers over loopback TCP — the
/// root on the calling thread, everything else on small-stack OS
/// threads — and reaps the whole tree before returning. Nothing is
/// simulated: three process roles, two protocol tiers, every byte
/// through the kernel's loopback interface. Scheduled kills from
/// [`ShardedConfig::worker_kills`] and [`ShardedConfig::shard_kills`]
/// are injected here; the root's structured error (quorum loss, total
/// fleet death) takes priority over the secondary transport errors it
/// causes downstream.
pub fn run_sharded_loopback(cfg: &ShardedConfig) -> Result<ShardedLoopbackRun, NetError> {
    let (n, m) = (cfg.num_workers, cfg.num_shards);
    let layout = ShardLayout::even(n, m);
    let root_listener = TcpListener::bind("127.0.0.1:0").map_err(TransportError::from)?;
    let root_addr = root_listener.local_addr().map_err(TransportError::from)?;

    // Bind every shard's worker listener up front so worker threads can
    // start their staggered connects immediately.
    let mut shard_listeners = Vec::with_capacity(m);
    let mut shard_addrs = Vec::with_capacity(m);
    for _ in 0..m {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(TransportError::from)?;
        shard_addrs.push(listener.local_addr().map_err(TransportError::from)?);
        shard_listeners.push(listener);
    }

    let mut shard_handles = Vec::with_capacity(m);
    for (k, listener) in shard_listeners.into_iter().enumerate() {
        let kill = cfg.shard_kills.iter().find(|sk| sk.shard == k);
        let opts = ShardMasterOptions {
            shard: k,
            num_shards: m,
            frame_timeout: cfg.frame_timeout,
            backbone_fault: cfg.backbone_fault.clone(),
            die_after_round: kill.map(|sk| sk.after_round),
            die_mid_round: kill.is_some_and(|sk| sk.mid_round),
        };
        let (attempts, base, stagger) = connect_schedule(m, k);
        let handle = std::thread::Builder::new()
            .name(format!("dolbie-shard-{k}"))
            .stack_size(SHARD_STACK_BYTES)
            .spawn(move || -> Result<ShardRunReport, NetError> {
                if !stagger.is_zero() {
                    std::thread::sleep(stagger);
                }
                let stream = connect_with_backoff(root_addr, attempts, base, k as u64)
                    .map_err(TransportError::from)?;
                run_shard_master(stream, &listener, &opts)
            })
            .map_err(TransportError::from)?;
        shard_handles.push(handle);
    }

    let mut worker_handles = Vec::with_capacity(n);
    for i in 0..n {
        let k = layout.shard_of(i);
        let local = i - layout.range(k).start;
        let addr = shard_addrs[k];
        let (attempts, base, stagger) = connect_schedule(layout.range(k).len(), local);
        // Workers pace their lossy retransmissions with the same policy
        // the config ships to the shard-masters, so a test choosing a
        // fast schedule gets it on both link directions.
        let die = cfg.worker_kills.iter().find(|&&(w, _)| w == i).map(|&(_, r)| r);
        let worker_opts = WorkerOptions {
            retry: Some(cfg.fault.retry),
            die_after_round: die,
            ..WorkerOptions::default()
        };
        let handle = std::thread::Builder::new()
            .name(format!("dolbie-worker-{i}"))
            .stack_size(WORKER_STACK_BYTES)
            .spawn(move || -> Result<WorkerReport, NetError> {
                if !stagger.is_zero() {
                    std::thread::sleep(stagger);
                }
                let stream = connect_with_backoff(addr, attempts, base, i as u64)
                    .map_err(TransportError::from)?;
                run_worker(stream, &worker_opts)
            })
            .map_err(TransportError::from)?;
        worker_handles.push(handle);
    }

    let root_result = run_root(&root_listener, cfg);
    let mut shard_results = Vec::with_capacity(m);
    for handle in shard_handles {
        shard_results.push(
            handle
                .join()
                .unwrap_or_else(|_| Err(NetError::Protocol("shard thread panicked".into()))),
        );
    }
    let workers: Vec<Result<WorkerReport, NetError>> = worker_handles
        .into_iter()
        .map(|h| {
            h.join().unwrap_or_else(|_| Err(NetError::Protocol("worker thread panicked".into())))
        })
        .collect();
    // The root's structured error is the primary diagnosis; shard-side
    // transport errors are its echoes and must not mask it.
    let root = root_result?;
    let mut shards = Vec::with_capacity(m);
    for result in shard_results {
        shards.push(result?);
    }
    shards.sort_by_key(|s| s.shard);
    Ok(ShardedLoopbackRun { root, shards, workers })
}
