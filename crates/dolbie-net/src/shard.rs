//! The two-level sharded control plane over real TCP: `M` shard-masters
//! each run DOLBIE's per-round coordination over `N/M` workers, and a
//! root coordinator runs the *same* min-max step over shard-level
//! aggregates — breaking the flat master's `Θ(N)` fan-in while staying
//! bitwise identical to the flat masters and the sequential engine.
//!
//! ## Roles
//!
//! - **Root** ([`run_root`]): blocking, lossless links to `M`
//!   shard-masters. Per round it sees `O(M)` frames and touches `O(1)`
//!   engine state ([`RootEngine`]): elect the global straggler from `M`
//!   candidates, broadcast the coordination scalars, chain the
//!   fixed-shape gains cursor through the shards, run the guard/pin
//!   tail, and commit. It never sees a per-worker array.
//! - **Shard-master** ([`run_shard_master`]): a real evented TCP master
//!   over its contiguous worker range — the same `Fleet` readiness
//!   machinery, concurrent admission, coalesced broadcasts, and
//!   timer-wheel deadlines as the flat evented master — plus one
//!   blocking upstream link to the root. Workers speak the unchanged
//!   flat worker protocol; a worker cannot tell a shard-master from the
//!   flat master.
//!
//! ## Per-round backbone dialect (root ↔ shard-master)
//!
//! `ShardAggregate` up (local max, candidate, share) → `ShardCoord` down
//! (global cost, `α_t`, straggler) → the `Gains` [`ShardCursor`] chained
//! through the shards in index order → optional `ShardRescale` +
//! re-chain → `ShardCommit` (pinned share, refresh flag) → on refresh
//! rounds a `Shares` cursor chain. Every backbone frame is `O(1)` or
//! `O(log N)` (the cursor stack), so the root's per-round work is `O(M)`
//! frames and `O(M log N)` bytes.
//!
//! ## Determinism
//!
//! The trajectory is **bitwise** identical to the flat sequential
//! engine: workers apply the engine's exact eq. (5) arithmetic
//! (unchanged), candidate election composes associatively under the
//! ascending strict-`>` argmax because shard ranges are ascending, the
//! chained [`SumCursor`] reproduces the engine's fixed-shape pairwise
//! compensated sum bit-for-bit regardless of where the chain is cut, and
//! [`RootEngine`] replays the flat engine's order-sensitive tail
//! operation for operation. No `1e-12` concession is needed; the parity
//! tests assert `to_bits()` equality round by round.
//!
//! ## Crash scope
//!
//! The backbone is lossless and a worker socket dying under a
//! shard-master is a fatal error (not an epoch): crash → membership
//! epochs under the sharded architecture are exercised by the
//! `dolbie-simnet` sharded tier; wiring worker loss through the net
//! backbone is deliberately deferred (DESIGN.md §12). Worker-link
//! *loss* (drop/duplicate with ack/retry) is fully supported and
//! trajectory-invariant, exactly as under the flat masters.
//!
//! [`ShardCursor`]: crate::wire::Frame::ShardCursor
//! [`SumCursor`]: dolbie_core::numeric::SumCursor
//! [`RootEngine`]: dolbie_core::shard::RootEngine

use crate::env::WireEnvSpec;
use crate::fleet::{Fleet, Phase, SweepFail};
use crate::handshake::{admit_concurrent, welcome_frame};
use crate::transport::{
    connect_schedule, connect_with_backoff, FrameConn, Link, TransportError, WireStats,
    DEFAULT_FRAME_TIMEOUT,
};
use crate::wire::{CursorPhase, Frame};
use crate::worker::{run_worker, WorkerOptions, WorkerReport};
use crate::NetError;
use dolbie_core::numeric::{CursorState, SumCursor};
use dolbie_core::shard::{combine_candidates, RootEngine, ShardCandidate, ShardLayout};
use dolbie_core::{Allocation, DolbieConfig};
use dolbie_simnet::faults::{FaultPlan, RetryPolicy};
use std::net::{TcpListener, TcpStream};
use std::ops::Range;
use std::time::{Duration, Instant};

/// Worker threads carry tiny state; shard-master threads own a fleet of
/// connections but keep it on the heap — both run on small fixed stacks
/// so a 4096-worker loopback tree fits comfortably.
const WORKER_STACK_BYTES: usize = 256 * 1024;
const SHARD_STACK_BYTES: usize = 1024 * 1024;

/// Configuration of a sharded run, shared by the root and (through
/// `ShardWelcome`) every shard-master.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Total fleet size `N`.
    pub num_workers: usize,
    /// Shard count `M` (`1 ≤ M ≤ N`).
    pub num_shards: usize,
    /// Horizon `T`.
    pub rounds: usize,
    /// The seeded environment, shipped to shard-masters in
    /// `ShardWelcome` and on to workers in `Welcome`.
    pub env: WireEnvSpec,
    /// Engine configuration (step-size schedule), used by the root.
    pub dolbie: DolbieConfig,
    /// Worker-link fault plan; its drop/duplicate probabilities, seed,
    /// and retry pacing are shipped to the shard-masters, which replay
    /// it on their worker links. The backbone itself is lossless.
    pub fault: FaultPlan,
    /// Per-frame read deadline on every link of both tiers.
    pub frame_timeout: Duration,
}

impl ShardedConfig {
    /// A lossless sharded run: `n` workers in `m` shards for `rounds`
    /// rounds.
    pub fn new(n: usize, m: usize, rounds: usize, env: WireEnvSpec) -> Self {
        Self {
            num_workers: n,
            num_shards: m,
            rounds,
            env,
            dolbie: DolbieConfig::new(),
            fault: FaultPlan::none(),
            frame_timeout: DEFAULT_FRAME_TIMEOUT,
        }
    }

    /// Replays `plan` at the socket layer of every worker link.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }
}

/// One committed round as the root saw it: scalars only — the root-tier
/// analogue of a `ProtocolRound` without any per-worker array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootRound {
    /// Round index `t`.
    pub round: usize,
    /// The elected global straggler.
    pub straggler: usize,
    /// The round's global cost `l_t`.
    pub global_cost: f64,
    /// The step size the round was played with.
    pub alpha: f64,
    /// Whether the simplex guard rescaled the gains.
    pub rescaled: bool,
    /// Whether this was a Σx-refresh round (extra cursor chain).
    pub refreshed: bool,
    /// Logical backbone frames the root sent + received this round —
    /// the `O(M)` headline quantity.
    pub messages: usize,
    /// Backbone bytes (sent + received) this round.
    pub bytes: usize,
    /// Seconds since the backbone admission completed, taken at this
    /// round's commit. Differences between consecutive rounds give
    /// steady-state per-round latency; round 0 additionally absorbs the
    /// shard-masters' worker admission, so latency accounting starts at
    /// round 1.
    pub elapsed: f64,
}

/// Totals and per-round trajectory of one completed root run.
#[derive(Debug)]
pub struct RootReport {
    /// Per-round scalar records.
    pub rounds: Vec<RootRound>,
    /// The shard layout the run was partitioned under.
    pub layout: ShardLayout,
    /// Run-total backbone wire counters.
    pub wire: WireStats,
    /// Wall-clock seconds from the end of admission to shutdown.
    pub wall_clock: f64,
}

fn cursor_frame(round: usize, phase: CursorPhase, state: &CursorState) -> Frame {
    Frame::ShardCursor {
        round: round as u64,
        phase,
        partial_sum: state.partial_sum,
        partial_compensation: state.partial_compensation,
        partial_len: state.partial_len,
        stack: state.stack.clone(),
    }
}

fn cursor_state(
    partial_sum: f64,
    partial_compensation: f64,
    partial_len: u32,
    stack: Vec<(u64, f64)>,
) -> CursorState {
    CursorState { stack, partial_sum, partial_compensation, partial_len }
}

/// Chains one fixed-shape cursor through every shard in index order and
/// returns the exact sum — bitwise the engine's pairwise compensated
/// reduction over the concatenated slices.
fn chain(
    links: &mut [Link],
    t: usize,
    phase: CursorPhase,
    timeout: Duration,
    logical: &mut usize,
) -> Result<f64, NetError> {
    let mut state = SumCursor::new().state();
    for (k, link) in links.iter_mut().enumerate() {
        link.send(&cursor_frame(t, phase, &state))?;
        *logical += 1;
        match link.recv(timeout)? {
            Frame::ShardCursor {
                round,
                phase: p,
                partial_sum,
                partial_compensation,
                partial_len,
                stack,
            } if round == t as u64 && p == phase => {
                state = cursor_state(partial_sum, partial_compensation, partial_len, stack);
                *logical += 1;
            }
            _ => {
                return Err(NetError::Protocol(format!(
                    "shard {k} broke the round-{t} cursor chain"
                )))
            }
        }
    }
    Ok(SumCursor::from_state(&state).value())
}

/// Accepts `cfg.num_shards` shard-master connections on `listener`, runs
/// the root tier of the two-level control plane to the horizon, and
/// shuts the backbone down.
///
/// Shard identity is self-declared in `ShardHello` (shard-masters are
/// configured peers, not anonymous workers); a connection declaring a
/// mismatched shard count, an out-of-range or duplicate shard id, or
/// anything other than a well-formed `ShardHello` is rejected while the
/// listener keeps accepting.
///
/// # Panics
///
/// Panics if the configuration is degenerate: zero rounds, fewer than
/// two workers, or a shard count outside `1..=N`.
pub fn run_root(listener: &TcpListener, cfg: &ShardedConfig) -> Result<RootReport, NetError> {
    let (n, m) = (cfg.num_workers, cfg.num_shards);
    assert!(n >= 2, "at least two workers required");
    assert!(m >= 1 && m <= n, "shard count must be in 1..=N");
    assert!(cfg.rounds > 0, "at least one round required");

    let layout = ShardLayout::even(n, m);
    let mut engine = RootEngine::new(&Allocation::uniform(n), cfg.dolbie);

    // Backbone admission: ShardHello → ShardWelcome, slots keyed by the
    // declared shard id.
    let mut slots: Vec<Option<Link>> = (0..m).map(|_| None).collect();
    let mut admitted = 0usize;
    while admitted < m {
        let (stream, _) = listener.accept().map_err(TransportError::from)?;
        let Ok(mut conn) = FrameConn::new(stream) else { continue };
        let shard = match conn.recv(cfg.frame_timeout) {
            Ok(Frame::ShardHello { shard, num_shards })
                if num_shards as usize == m
                    && (shard as usize) < m
                    && slots[shard as usize].is_none() =>
            {
                shard as usize
            }
            Ok(_) | Err(_) => continue, // rejected
        };
        let range = layout.range(shard);
        let welcome = Frame::ShardWelcome {
            shard: shard as u32,
            num_shards: m as u32,
            num_workers: n as u32,
            rounds: cfg.rounds as u64,
            range_start: range.start as u32,
            range_end: range.end as u32,
            env: cfg.env,
            drop_probability: cfg.fault.drop_probability,
            duplicate_probability: cfg.fault.duplicate_probability,
            fault_seed: cfg.fault.seed,
            retry_ack_timeout: cfg.fault.retry.ack_timeout,
            retry_backoff: cfg.fault.retry.backoff,
            retry_max_attempts: cfg.fault.retry.max_attempts as u32,
        };
        if conn.send(&welcome).is_err() {
            continue; // died between hello and welcome: rejected
        }
        slots[shard] = Some(Link::lossless(conn));
        admitted += 1;
    }
    let mut links: Vec<Link> = slots.into_iter().map(|l| l.expect("all shards admitted")).collect();

    let backbone_totals = |links: &[Link]| {
        let mut total = WireStats::default();
        for link in links {
            total.absorb(&link.stats());
        }
        total
    };

    let started = Instant::now();
    let mut rounds: Vec<RootRound> = Vec::with_capacity(cfg.rounds);
    for t in 0..cfg.rounds {
        let before = backbone_totals(&links);
        let mut logical = 0usize;

        // (1) Candidate election over M aggregates. Received in
        // *descending* shard order — shard 0's workers are scheduled
        // first, so aggregates land in roughly ascending order and the
        // first blocking recv parks once, on the latest shard, while the
        // rest read already-buffered frames. The election itself stays in
        // ascending shard order (the `candidates` vector is indexed, not
        // ordered by arrival): the associative decomposition of the flat
        // ascending argmax is untouched.
        let mut candidates: Vec<Option<ShardCandidate>> = (0..m).map(|_| None).collect();
        for (k, link) in links.iter_mut().enumerate().rev() {
            match link.recv(cfg.frame_timeout)? {
                Frame::ShardAggregate { round, max_cost, straggler, share }
                    if round == t as u64 =>
                {
                    candidates[k] =
                        Some(ShardCandidate { cost: max_cost, worker: straggler as usize, share });
                    logical += 1;
                }
                _ => {
                    return Err(NetError::Protocol(format!(
                        "shard {k} sent an unexpected frame during round-{t} aggregation"
                    )))
                }
            }
        }
        let elected = combine_candidates(candidates).expect("at least one shard");

        // (2) Coordination scalars down to every shard.
        let alpha = engine.begin_round();
        let coord = Frame::ShardCoord {
            round: t as u64,
            global_cost: elected.cost,
            alpha,
            straggler: elected.worker as u64,
        };
        for link in links.iter_mut() {
            link.send(&coord)?;
            logical += 1;
        }

        // (3) The eq. (6) remainder via the shard-chained gains cursor.
        let mut total_gain =
            chain(&mut links, t, CursorPhase::Gains, cfg.frame_timeout, &mut logical)?;

        // (4) The root's order-sensitive tail: guard, pin, commit,
        // refresh, tighten — RootEngine's documented statement order.
        let straggler_share = elected.share;
        let rescale = engine.guard_scale(straggler_share, total_gain);
        if let Some(scale) = rescale {
            let frame = Frame::ShardRescale { round: t as u64, scale };
            for link in links.iter_mut() {
                link.send(&frame)?;
                logical += 1;
            }
            total_gain = chain(&mut links, t, CursorPhase::Gains, cfg.frame_timeout, &mut logical)?;
        }
        let new_straggler_share = engine.pin(straggler_share, total_gain);
        let refresh = engine.needs_total_refresh();
        let commit = Frame::ShardCommit {
            round: t as u64,
            straggler: elected.worker as u64,
            straggler_share: new_straggler_share,
            refresh,
        };
        for link in links.iter_mut() {
            link.send(&commit)?;
            logical += 1;
        }
        if refresh {
            let sum = chain(&mut links, t, CursorPhase::Shares, cfg.frame_timeout, &mut logical)?;
            engine.refresh_total(sum);
        }
        engine.tighten(new_straggler_share);

        let after = backbone_totals(&links);
        rounds.push(RootRound {
            round: t,
            straggler: elected.worker,
            global_cost: elected.cost,
            alpha,
            rescaled: rescale.is_some(),
            refreshed: refresh,
            messages: logical,
            bytes: ((after.bytes_sent - before.bytes_sent)
                + (after.bytes_received - before.bytes_received)) as usize,
            elapsed: started.elapsed().as_secs_f64(),
        });
    }

    // Orderly shutdown of the backbone; shard-masters relay it on to
    // their workers.
    for link in links.iter_mut() {
        let _ = link.send(&Frame::Shutdown);
    }
    let wire = backbone_totals(&links);
    Ok(RootReport { rounds, layout, wire, wall_clock: started.elapsed().as_secs_f64() })
}

/// Options of one shard-master run (everything else arrives in
/// `ShardWelcome`).
#[derive(Debug, Clone)]
pub struct ShardMasterOptions {
    /// This shard's id `k ∈ 0..M`.
    pub shard: usize,
    /// Shard count `M`, cross-checked against the root's.
    pub num_shards: usize,
    /// Per-frame read deadline on the root link and every worker link.
    pub frame_timeout: Duration,
}

/// One round's slice-local record at a shard-master: the played shares
/// and observed costs of this shard's worker range. Concatenating the
/// slices of all `M` shards in shard order reconstructs the flat
/// per-round allocation and cost vectors — that is what the parity
/// harness stitches and compares bitwise.
#[derive(Debug, Clone)]
pub struct ShardRoundSlice {
    /// Round index `t`.
    pub round: usize,
    /// The slice of shares the round was played with (pre-update).
    pub shares: Vec<f64>,
    /// The slice of observed local costs.
    pub costs: Vec<f64>,
}

/// Totals and per-round slices of one completed shard-master run.
#[derive(Debug)]
pub struct ShardRunReport {
    /// This shard's id.
    pub shard: usize,
    /// The global worker range this shard owned.
    pub range: Range<usize>,
    /// Per-round slice records.
    pub rounds: Vec<ShardRoundSlice>,
    /// The final share slice after the last commit.
    pub final_shares: Vec<f64>,
    /// Run-total wire counters over the worker links.
    pub wire: WireStats,
    /// Run-total wire counters on the root link.
    pub root_wire: WireStats,
}

/// Runs one shard-master: handshakes upstream on `root` (ShardHello →
/// ShardWelcome), admits its worker range on `listener` through the
/// shared evented admission, then relays rounds between the root
/// backbone and its worker fleet until `Shutdown`.
///
/// Workers are admitted with their *global* ids (`range.start +
/// admission slot`), so their cost derivation and lossy-envelope hash
/// keys are identical to a flat run over the same `N` — a worker cannot
/// tell which architecture coordinates it.
pub fn run_shard_master(
    root: TcpStream,
    listener: &TcpListener,
    opts: &ShardMasterOptions,
) -> Result<ShardRunReport, NetError> {
    let mut conn = FrameConn::new(root).map_err(TransportError::from)?;
    conn.send(&Frame::ShardHello { shard: opts.shard as u32, num_shards: opts.num_shards as u32 })?;
    let welcome = conn.recv(opts.frame_timeout)?;
    let Frame::ShardWelcome {
        shard,
        num_shards,
        num_workers,
        rounds,
        range_start,
        range_end,
        env,
        drop_probability,
        duplicate_probability,
        fault_seed,
        retry_ack_timeout,
        retry_backoff,
        retry_max_attempts,
    } = welcome
    else {
        return Err(NetError::Protocol("expected ShardWelcome after ShardHello".into()));
    };
    if shard as usize != opts.shard || num_shards as usize != opts.num_shards {
        return Err(NetError::Protocol("root and shard disagree on the layout".into()));
    }
    let mut root_link = Link::lossless(conn);

    let range = range_start as usize..range_end as usize;
    let count = range.len();
    let n_total = num_workers as usize;
    let mut fault = FaultPlan::seeded(fault_seed).with_retry(RetryPolicy {
        ack_timeout: retry_ack_timeout,
        backoff: retry_backoff,
        max_attempts: retry_max_attempts as usize,
    });
    if drop_probability > 0.0 {
        fault = fault.with_drop_probability(drop_probability);
    }
    if duplicate_probability > 0.0 {
        fault = fault.with_duplicate_probability(duplicate_probability);
    }

    // Worker admission: the same shared evented machinery as the flat
    // master, parameterized with this shard's global id window.
    let initial = Allocation::uniform(n_total);
    listener.set_nonblocking(true).map_err(TransportError::from)?;
    let admitted = admit_concurrent(
        listener,
        count,
        opts.frame_timeout,
        &fault,
        |slot| {
            let global = range_start as usize + slot;
            welcome_frame(global as u32, num_workers, rounds, env, initial.share(global), &fault)
        },
        |slot| (range_start as usize + slot) as u64 + 1,
    );
    let _ = listener.set_nonblocking(false);
    let mut fleet = Fleet::new(admitted?, opts.frame_timeout);
    // Lossless fleets take the staircase collect: the worker links carry
    // no retransmission clocks, and a worker death is fatal under the
    // shard tier anyway, so the sweep's poll/sleep duty cycle — CPU
    // stolen from the very workers the phase waits on — is pure cost.
    // The sockets flip to blocking mode once, here, and stay there.
    let staircase = fault.is_lossless();
    if staircase {
        fleet.enter_staircase().map_err(|fail| match fail {
            SweepFail::Dead(dead) => {
                NetError::Protocol(format!("worker sockets died entering the staircase: {dead:?}"))
            }
            SweepFail::Fatal(e) => e,
        })?;
    }

    // The mirrored share slice — the shard-master's bookkeeping copy of
    // its workers' authoritative shares, kept bitwise in lockstep by
    // replaying the identical arithmetic.
    let mut x: Vec<f64> = range.clone().map(|i| initial.share(i)).collect();
    let mut gains = vec![0.0f64; count];
    let all_local: Vec<usize> = (0..count).collect();
    let fatal_worker = |dead: Vec<usize>| {
        NetError::Protocol(format!(
            "worker sockets died under the shard tier (local slots {dead:?}); crash→epoch \
             handling is not wired through the backbone"
        ))
    };
    let sweep_err = |fail: SweepFail| match fail {
        SweepFail::Dead(dead) => fatal_worker(dead),
        SweepFail::Fatal(e) => e,
    };

    let mut records: Vec<ShardRoundSlice> = Vec::with_capacity(rounds as usize);
    for t in 0..rounds as usize {
        let played = x.clone();

        // Round barrier + cost collection over this shard's fleet.
        let start = Frame::RoundStart { epoch: 0, round: t as u64 };
        fleet.broadcast(&start, &all_local, Instant::now());
        let mut local_costs = vec![0.0f64; count];
        let mut logical = 0usize;
        if staircase {
            fleet
                .collect_blocking(t, 0, Phase::Cost, &all_local, &mut local_costs, &mut logical)
                .map_err(sweep_err)?;
        } else {
            fleet
                .collect(t, 0, Phase::Cost, &all_local, &mut local_costs, &mut logical)
                .map_err(sweep_err)?;
        }

        // The shard-local candidate: lowest-index first-maximum, strict
        // `>` — the associative piece of the flat argmax.
        let mut best = 0usize;
        for i in 1..count {
            if local_costs[i] > local_costs[best] {
                best = i;
            }
        }
        root_link.send(&Frame::ShardAggregate {
            round: t as u64,
            max_cost: local_costs[best],
            straggler: (range.start + best) as u64,
            share: x[best],
        })?;

        // Coordination scalars from the root.
        let (global_cost, alpha, straggler) = match root_link.recv(opts.frame_timeout)? {
            Frame::ShardCoord { round, global_cost, alpha, straggler } if round == t as u64 => {
                (global_cost, alpha, straggler as usize)
            }
            _ => {
                return Err(NetError::Protocol(format!(
                    "root sent an unexpected frame during round-{t} coordination"
                )))
            }
        };
        let local_straggler = range.contains(&straggler).then(|| straggler - range.start);
        let others: Vec<usize> = (0..count).filter(|&i| Some(i) != local_straggler).collect();

        // Fan the scalars out; collect the non-stragglers' gains. The
        // local straggler's gain stays 0.0, exactly the reference's
        // fixed-shape slot.
        let now = Instant::now();
        let shared =
            Frame::Coordination { round: t as u64, global_cost, alpha, is_straggler: false };
        fleet.broadcast(&shared, &others, now);
        if let Some(ls) = local_straggler {
            let pin =
                Frame::Coordination { round: t as u64, global_cost, alpha, is_straggler: true };
            fleet.queue_to(ls, &pin, now);
        }
        gains.fill(0.0);
        if staircase {
            fleet
                .collect_blocking(t, 0, Phase::Decision, &others, &mut gains, &mut logical)
                .map_err(sweep_err)?;
        } else {
            fleet
                .collect(t, 0, Phase::Decision, &others, &mut gains, &mut logical)
                .map_err(sweep_err)?;
        }

        // Serve the root's tail: cursor hops, the rare rescale, then the
        // commit. TCP ordering on the root link guarantees a rescale is
        // seen before the re-chained cursor and the commit before any
        // refresh cursor.
        let refresh = loop {
            match root_link.recv(opts.frame_timeout)? {
                Frame::ShardCursor {
                    round,
                    phase: CursorPhase::Gains,
                    partial_sum,
                    partial_compensation,
                    partial_len,
                    stack,
                } if round == t as u64 => {
                    let state = cursor_state(partial_sum, partial_compensation, partial_len, stack);
                    let mut local = SumCursor::from_state(&state);
                    local.extend(&gains);
                    root_link.send(&cursor_frame(t, CursorPhase::Gains, &local.state()))?;
                }
                Frame::ShardRescale { round, scale } if round == t as u64 => {
                    for g in gains.iter_mut() {
                        *g *= scale;
                    }
                    let adjust = Frame::Adjust { round: t as u64, scale };
                    fleet.broadcast(&adjust, &others, Instant::now());
                }
                Frame::ShardCommit { round, straggler: s, straggler_share, refresh }
                    if round == t as u64 && s as usize == straggler =>
                {
                    // Commit: apply the gains, pin the straggler.
                    for (xi, gi) in x.iter_mut().zip(&gains) {
                        *xi += gi;
                    }
                    if let Some(ls) = local_straggler {
                        x[ls] = straggler_share;
                        let assignment =
                            Frame::Assignment { round: t as u64, share: straggler_share };
                        fleet.queue_to(ls, &assignment, Instant::now());
                    }
                    break refresh;
                }
                _ => {
                    return Err(NetError::Protocol(format!(
                        "root sent an unexpected frame during round-{t} commit"
                    )))
                }
            }
        };
        if refresh {
            match root_link.recv(opts.frame_timeout)? {
                Frame::ShardCursor {
                    round,
                    phase: CursorPhase::Shares,
                    partial_sum,
                    partial_compensation,
                    partial_len,
                    stack,
                } if round == t as u64 => {
                    let state = cursor_state(partial_sum, partial_compensation, partial_len, stack);
                    let mut local = SumCursor::from_state(&state);
                    local.extend(&x);
                    root_link.send(&cursor_frame(t, CursorPhase::Shares, &local.state()))?;
                }
                _ => {
                    return Err(NetError::Protocol(format!(
                        "root sent an unexpected frame during round-{t} refresh"
                    )))
                }
            }
        }

        // Deliver the commit to the workers before the next barrier.
        let dead = fleet.drain()?;
        if !dead.is_empty() {
            return Err(fatal_worker(dead));
        }
        records.push(ShardRoundSlice { round: t, shares: played, costs: local_costs });
    }

    // The root closes the run; relay the shutdown to the workers.
    match root_link.recv(opts.frame_timeout)? {
        Frame::Shutdown => {}
        _ => return Err(NetError::Protocol("expected Shutdown after the horizon".into())),
    }
    fleet.shutdown(opts.frame_timeout);
    let wire = fleet.wire_snapshot();
    Ok(ShardRunReport {
        shard: opts.shard,
        range,
        rounds: records,
        final_shares: x,
        wire,
        root_wire: root_link.stats(),
    })
}

/// The root's report plus every shard-master's and worker's outcome.
#[derive(Debug)]
pub struct ShardedLoopbackRun {
    /// The root-tier report (scalar trajectory, O(M) wire accounting).
    pub root: RootReport,
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardRunReport>,
    /// Per-thread worker outcomes, in global worker order.
    pub workers: Vec<Result<WorkerReport, NetError>>,
}

impl ShardedLoopbackRun {
    /// Stitches the shard slices back into flat per-round allocations:
    /// element `t` is the full `N`-vector the fleet played in round `t`,
    /// and one extra final entry holds the post-horizon shares — the
    /// same shape the parity harnesses compare bitwise against the
    /// sequential engine.
    pub fn allocations(&self) -> Vec<Vec<f64>> {
        let rounds = self.root.rounds.len();
        let mut out = Vec::with_capacity(rounds + 1);
        for t in 0..rounds {
            let mut flat = Vec::new();
            for shard in &self.shards {
                flat.extend_from_slice(&shard.rounds[t].shares);
            }
            out.push(flat);
        }
        let mut last = Vec::new();
        for shard in &self.shards {
            last.extend_from_slice(&shard.final_shares);
        }
        out.push(last);
        out
    }
}

/// Runs root + `M` shard-masters + `N` workers over loopback TCP — the
/// root on the calling thread, everything else on small-stack OS
/// threads — and reaps the whole tree before returning. Nothing is
/// simulated: three process roles, two protocol tiers, every byte
/// through the kernel's loopback interface.
pub fn run_sharded_loopback(cfg: &ShardedConfig) -> Result<ShardedLoopbackRun, NetError> {
    let (n, m) = (cfg.num_workers, cfg.num_shards);
    let layout = ShardLayout::even(n, m);
    let root_listener = TcpListener::bind("127.0.0.1:0").map_err(TransportError::from)?;
    let root_addr = root_listener.local_addr().map_err(TransportError::from)?;

    // Bind every shard's worker listener up front so worker threads can
    // start their staggered connects immediately.
    let mut shard_listeners = Vec::with_capacity(m);
    let mut shard_addrs = Vec::with_capacity(m);
    for _ in 0..m {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(TransportError::from)?;
        shard_addrs.push(listener.local_addr().map_err(TransportError::from)?);
        shard_listeners.push(listener);
    }

    let mut shard_handles = Vec::with_capacity(m);
    for (k, listener) in shard_listeners.into_iter().enumerate() {
        let opts = ShardMasterOptions { shard: k, num_shards: m, frame_timeout: cfg.frame_timeout };
        let (attempts, base, stagger) = connect_schedule(m, k);
        let handle = std::thread::Builder::new()
            .name(format!("dolbie-shard-{k}"))
            .stack_size(SHARD_STACK_BYTES)
            .spawn(move || -> Result<ShardRunReport, NetError> {
                if !stagger.is_zero() {
                    std::thread::sleep(stagger);
                }
                let stream = connect_with_backoff(root_addr, attempts, base, k as u64)
                    .map_err(TransportError::from)?;
                run_shard_master(stream, &listener, &opts)
            })
            .map_err(TransportError::from)?;
        shard_handles.push(handle);
    }

    let mut worker_handles = Vec::with_capacity(n);
    for i in 0..n {
        let k = layout.shard_of(i);
        let local = i - layout.range(k).start;
        let addr = shard_addrs[k];
        let (attempts, base, stagger) = connect_schedule(layout.range(k).len(), local);
        // Workers pace their lossy retransmissions with the same policy
        // the config ships to the shard-masters, so a test choosing a
        // fast schedule gets it on both link directions.
        let worker_opts =
            WorkerOptions { retry: Some(cfg.fault.retry), ..WorkerOptions::default() };
        let handle = std::thread::Builder::new()
            .name(format!("dolbie-worker-{i}"))
            .stack_size(WORKER_STACK_BYTES)
            .spawn(move || -> Result<WorkerReport, NetError> {
                if !stagger.is_zero() {
                    std::thread::sleep(stagger);
                }
                let stream = connect_with_backoff(addr, attempts, base, i as u64)
                    .map_err(TransportError::from)?;
                run_worker(stream, &worker_opts)
            })
            .map_err(TransportError::from)?;
        worker_handles.push(handle);
    }

    let root_result = run_root(&root_listener, cfg);
    let mut shards = Vec::with_capacity(m);
    for handle in shard_handles {
        let report = handle
            .join()
            .unwrap_or_else(|_| Err(NetError::Protocol("shard thread panicked".into())))?;
        shards.push(report);
    }
    shards.sort_by_key(|s| s.shard);
    let workers: Vec<Result<WorkerReport, NetError>> = worker_handles
        .into_iter()
        .map(|h| {
            h.join().unwrap_or_else(|_| Err(NetError::Protocol("worker thread panicked".into())))
        })
        .collect();
    Ok(ShardedLoopbackRun { root: root_result?, shards, workers })
}
