//! The DOLBIE wire protocol: length-prefixed binary frames with a
//! version/magic handshake.
//!
//! Every §IV-B message of Algorithm 1 has an explicit frame — `LocalCost`,
//! `Coordination {global_cost, alpha, is_straggler}`, `Decision`,
//! `Assignment`, `Shutdown` — plus the frames the real runtime needs
//! around them: the `Hello`/`Welcome` handshake, a `RoundStart` barrier,
//! the rare `Adjust` rescale (the engine's simplex guard), `Epoch`
//! membership announcements, and the `Data`/`Ack` envelope of the lossy
//! link layer.
//!
//! The sharded control plane ([`crate::shard`]) adds a backbone dialect
//! between the root and its shard-masters: the `ShardHello`/`ShardWelcome`
//! handshake, the per-round `ShardAggregate`/`ShardCoord` scalars, the
//! chained `ShardCursor` carrying the O(log N) compensated-sum state of
//! [`SumCursor`](dolbie_core::numeric::SumCursor), and the
//! `ShardRescale`/`ShardCommit` tail. Every per-round backbone frame is
//! O(1) or O(log N) — never O(N/M) — which is what keeps the root's
//! per-round work O(M).
//!
//! ## Frame layout
//!
//! ```text
//! +----------------+------+-------------------------------+
//! | length: u32 LE | kind | fields, little-endian         |
//! +----------------+------+-------------------------------+
//! ```
//!
//! The length counts the body (kind byte included, prefix excluded) and
//! must not exceed [`MAX_FRAME_BYTES`]. Decoding is strict: truncated
//! bodies, trailing bytes, unknown kinds, out-of-range discriminants,
//! oversized lengths, and a bad magic/version in the handshake are all
//! distinct [`WireError`]s, never a partial parse. `f64` fields travel as
//! their IEEE-754 bit patterns, so shares and costs cross the wire
//! bitwise-exactly — the foundation of the trajectory-parity claim.

use crate::env::WireEnvSpec;

/// Protocol magic carried by both handshake frames.
pub const MAGIC: u32 = 0xD01B_1E55;

/// Protocol version carried by both handshake frames.
pub const VERSION: u16 = 1;

/// Hard cap on a frame body; larger length prefixes are rejected before
/// any allocation.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// A decode failure. Every variant names the precise violation so fuzzed
/// or hostile bytes produce diagnosable rejections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the frame did.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The claimed body length.
        len: usize,
    },
    /// The kind byte names no known frame.
    UnknownKind(u8),
    /// A handshake frame carried the wrong magic.
    BadMagic {
        /// The magic actually received.
        got: u32,
    },
    /// A handshake frame carried an unsupported protocol version.
    BadVersion {
        /// The version actually received.
        got: u16,
    },
    /// The body was longer than its frame kind prescribes.
    TrailingBytes,
    /// A field held an out-of-range value (named in the payload).
    BadValue(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "truncated frame"),
            Self::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
            Self::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            Self::BadMagic { got } => write!(f, "bad protocol magic {got:#010x}"),
            Self::BadVersion { got } => {
                write!(f, "unsupported protocol version {got} (this node speaks {VERSION})")
            }
            Self::TrailingBytes => write!(f, "trailing bytes after frame body"),
            Self::BadValue(what) => write!(f, "out-of-range field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Which chained reduction a [`Frame::ShardCursor`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CursorPhase {
    /// The eq. (6) gains chain — runs (once, or twice after a rescale)
    /// before the round's commit.
    Gains,
    /// The periodic Σx-refresh chain over the committed shares — runs
    /// after the commit on refresh rounds only.
    Shares,
}

impl CursorPhase {
    fn code(self) -> u8 {
        match self {
            Self::Gains => 0,
            Self::Shares => 1,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::Gains),
            1 => Some(Self::Shares),
            _ => None,
        }
    }
}

/// One protocol frame.
///
/// # Examples
///
/// ```
/// use dolbie_net::wire::Frame;
///
/// let frame = Frame::Coordination {
///     round: 7,
///     global_cost: 3.25,
///     alpha: 0.5,
///     is_straggler: false,
/// };
/// let bytes = frame.encode();
/// let (back, used) = Frame::decode(&bytes).unwrap();
/// assert_eq!(back, frame);
/// assert_eq!(used, bytes.len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → master: first frame on a fresh connection.
    Hello {
        /// Protocol version the worker speaks.
        version: u16,
    },
    /// Master → worker: handshake acceptance and run parameters.
    Welcome {
        /// The worker's assigned identity (its accept-order index).
        worker_id: u32,
        /// Fleet size `N`.
        num_workers: u32,
        /// Horizon `T`.
        rounds: u64,
        /// The seeded environment both sides derive costs from.
        env: WireEnvSpec,
        /// The worker's authoritative initial share.
        initial_share: f64,
        /// Socket-layer drop probability (0 disables the lossy envelope).
        drop_probability: f64,
        /// Socket-layer duplication probability.
        duplicate_probability: f64,
        /// Seed of the socket-layer fault decisions.
        fault_seed: u64,
    },
    /// Master → worker: the per-round barrier. Carries the membership
    /// epoch so post-churn rounds are unambiguous on the wire.
    RoundStart {
        /// Current membership epoch.
        epoch: u32,
        /// Round index `t`.
        round: u64,
    },
    /// Worker → master: line 4 of Algorithm 1, `l_{i,t} = f_{i,t}(x_{i,t})`.
    LocalCost {
        /// The worker's current membership epoch (stale-frame filter).
        epoch: u32,
        /// Round index `t`.
        round: u64,
        /// The observed local cost.
        cost: f64,
    },
    /// Master → worker: line 12 of Algorithm 1.
    Coordination {
        /// Round index `t`.
        round: u64,
        /// Global cost `l_t = max_i l_{i,t}`.
        global_cost: f64,
        /// Step size `α_t`.
        alpha: f64,
        /// Whether the recipient is this round's straggler.
        is_straggler: bool,
    },
    /// Worker → master: line 7 of Algorithm 1 (non-stragglers only).
    Decision {
        /// The worker's current membership epoch (stale-frame filter).
        epoch: u32,
        /// Round index `t`.
        round: u64,
        /// The tentative next share `x_{i,t+1}`.
        share: f64,
        /// The eq. (5) gain `α_t (x'_{i,t} − x_{i,t})` the master feeds
        /// its mirrored engine.
        gain: f64,
    },
    /// Master → straggler: line 15 of Algorithm 1, the pinned share.
    Assignment {
        /// Round index `t`.
        round: u64,
        /// The straggler's next share.
        share: f64,
    },
    /// Master → non-stragglers: the engine's simplex guard fired; replay
    /// `x_{i,t+1} = x_{i,t} + gain · scale`.
    Adjust {
        /// Round index `t`.
        round: u64,
        /// The guard's rescale factor.
        scale: f64,
    },
    /// Master → survivors: a membership epoch boundary after a crash.
    /// The carried share is authoritative and overrides any tentative
    /// in-round state.
    Epoch {
        /// The new epoch number.
        epoch: u32,
        /// The round that will be (re)started next.
        round: u64,
        /// The recipient's post-renormalization share.
        share: f64,
        /// The member mask over original worker ids.
        members: Vec<bool>,
    },
    /// Master → worker: orderly end of the run.
    Shutdown,
    /// Lossy-link envelope: one physical transmission attempt of an inner
    /// frame. Never nests.
    Data {
        /// Link-layer sequence number (per direction, strictly increasing).
        seq: u64,
        /// Zero-based transmission attempt of this copy.
        attempt: u32,
        /// The enveloped protocol frame.
        inner: Box<Frame>,
    },
    /// Lossy-link acknowledgement of a delivered [`Frame::Data`] copy.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Shard-master → root: first frame on a fresh backbone connection,
    /// declaring which shard this is. Carries the magic/version like
    /// [`Frame::Hello`].
    ShardHello {
        /// The shard's self-declared index `k ∈ [0, M)`.
        shard: u32,
        /// The shard count `M` this shard-master was launched with; the
        /// root rejects a mismatch.
        num_shards: u32,
    },
    /// Root → shard-master: backbone handshake acceptance and run
    /// parameters — the shard-tier analogue of [`Frame::Welcome`], plus
    /// the worker slice this shard owns and the full fault plan (a
    /// shard-master is a *sender* on its worker links, so unlike a worker
    /// it also needs the retransmission pacing).
    ShardWelcome {
        /// Echo of the accepted shard index.
        shard: u32,
        /// Shard count `M`.
        num_shards: u32,
        /// Global fleet size `N` (workers across all shards).
        num_workers: u32,
        /// Horizon `T`.
        rounds: u64,
        /// First global worker id of this shard's slice (inclusive).
        range_start: u32,
        /// One past the last global worker id of this shard's slice.
        range_end: u32,
        /// The seeded environment forwarded to the workers.
        env: WireEnvSpec,
        /// Worker-link drop probability (0 disables the lossy envelope).
        drop_probability: f64,
        /// Worker-link duplication probability.
        duplicate_probability: f64,
        /// Seed of the worker-link fault decisions.
        fault_seed: u64,
        /// Lossy-envelope ack timeout in seconds.
        retry_ack_timeout: f64,
        /// Lossy-envelope backoff multiplier.
        retry_backoff: f64,
        /// Lossy-envelope attempt budget.
        retry_max_attempts: u32,
    },
    /// Shard-master → root: the shard's straggler candidate — its slice's
    /// worst local cost, that worker's *global* index, and its current
    /// share (so the root learns `x_{s,t}` in the electing message).
    ShardAggregate {
        /// Round index `t`.
        round: u64,
        /// The shard-local maximum cost.
        max_cost: f64,
        /// Global index of the worker attaining the shard maximum.
        straggler: u64,
        /// That worker's current share.
        share: f64,
    },
    /// Root → shard-master: the agreed round scalars every shard replays
    /// to its workers (the backbone analogue of [`Frame::Coordination`]).
    ShardCoord {
        /// Round index `t`.
        round: u64,
        /// Global cost `l_t = max_i l_{i,t}`.
        global_cost: f64,
        /// Step size `α_t`.
        alpha: f64,
        /// The elected global straggler `s_t`.
        straggler: u64,
    },
    /// The chained compensated-sum cursor, root → shard `k` → root →
    /// shard `k+1` → … — the serialized O(log N) state of
    /// [`SumCursor`](dolbie_core::numeric::SumCursor). Folding each
    /// shard's contiguous slice through the travelling cursor reproduces
    /// the flat engine's fixed-shape pairwise-Neumaier sum bit for bit.
    ShardCursor {
        /// Round index `t`.
        round: u64,
        /// Which reduction this chain computes.
        phase: CursorPhase,
        /// Raw running sum of the in-progress block.
        partial_sum: f64,
        /// Raw compensation term of the in-progress block.
        partial_compensation: f64,
        /// Elements absorbed into the in-progress block.
        partial_len: u32,
        /// The subtree stack, bottom first: `(blocks, value)` pairs.
        stack: Vec<(u64, f64)>,
    },
    /// Root → shard-masters: the feasibility guard fired; rescale the
    /// gains (and have the non-straggler workers replay
    /// [`Frame::Adjust`]), then expect the gains chain to run again.
    ShardRescale {
        /// Round index `t`.
        round: u64,
        /// The guard's rescale factor.
        scale: f64,
    },
    /// Root → shard-masters: the round's commit — apply the gains, pin
    /// the straggler, and (on refresh rounds) expect a
    /// [`CursorPhase::Shares`] chain.
    ShardCommit {
        /// Round index `t`.
        round: u64,
        /// The elected global straggler `s_t`.
        straggler: u64,
        /// The straggler's pinned new share.
        straggler_share: f64,
        /// Whether a Σx-refresh chain follows this commit.
        refresh: bool,
    },
    /// Shard-master → root: one or more of this shard's worker sockets
    /// died. Sent in place of whatever backbone frame the shard would
    /// have sent next; the root answers with a [`Frame::ShardEpoch`]
    /// membership transition.
    ShardDead {
        /// The round the shard was working when the deaths surfaced.
        round: u64,
        /// Global ids of the newly dead workers, ascending.
        workers: Vec<u64>,
    },
    /// Root → shard-masters: a membership epoch transition is starting.
    /// Each live shard abandons any in-flight round attempt, replies with
    /// its pre-renormalization share slice ([`Frame::ShardSlice`]), and
    /// then receives the renormalized slice back before the round in
    /// `round` (re)starts under the new epoch.
    ShardEpoch {
        /// The new epoch number.
        epoch: u32,
        /// The round that will be (re)started after the transition.
        round: u64,
        /// The post-transition member mask over global worker ids.
        members: Vec<bool>,
    },
    /// A contiguous chunk of the full share vector, used in both
    /// directions of an epoch transition: shard → root gathers the
    /// pre-renormalization slice, root → shard scatters the renormalized
    /// one. Chunked so a slice of any N respects [`MAX_FRAME_BYTES`];
    /// receivers drop chunks whose epoch is not the transition in
    /// progress (stale-epoch filtering on the backbone).
    ShardSlice {
        /// The epoch transition this chunk belongs to.
        epoch: u32,
        /// Global worker id of the first share in `shares`.
        start: u32,
        /// The shares, bitwise-exact.
        shares: Vec<f64>,
    },
}

const KIND_HELLO: u8 = 0;
const KIND_WELCOME: u8 = 1;
const KIND_ROUND_START: u8 = 2;
const KIND_LOCAL_COST: u8 = 3;
const KIND_COORDINATION: u8 = 4;
const KIND_DECISION: u8 = 5;
const KIND_ASSIGNMENT: u8 = 6;
const KIND_ADJUST: u8 = 7;
const KIND_EPOCH: u8 = 8;
const KIND_SHUTDOWN: u8 = 9;
const KIND_DATA: u8 = 10;
const KIND_ACK: u8 = 11;
const KIND_SHARD_HELLO: u8 = 12;
const KIND_SHARD_WELCOME: u8 = 13;
const KIND_SHARD_AGGREGATE: u8 = 14;
const KIND_SHARD_COORD: u8 = 15;
const KIND_SHARD_CURSOR: u8 = 16;
const KIND_SHARD_RESCALE: u8 = 17;
const KIND_SHARD_COMMIT: u8 = 18;
const KIND_SHARD_DEAD: u8 = 19;
const KIND_SHARD_EPOCH: u8 = 20;
const KIND_SHARD_SLICE: u8 = 21;

/// How many shares fit in one [`Frame::ShardSlice`] chunk without
/// approaching [`MAX_FRAME_BYTES`] (8 bytes each plus a small header).
pub const SHARD_SLICE_CHUNK: usize = 4096;

impl Frame {
    /// Encodes the frame as length prefix + body.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32);
        self.encode_body(&mut body);
        assert!(body.len() <= MAX_FRAME_BYTES, "encoder produced an oversized frame");
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one frame from the front of `buf`, returning it and the
    /// number of bytes consumed (prefix included).
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        if buf.len() < 4 {
            return Err(WireError::Truncated);
        }
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(WireError::Oversized { len });
        }
        let Some(body) = buf.get(4..4 + len) else {
            return Err(WireError::Truncated);
        };
        Ok((Self::decode_body(body)?, 4 + len))
    }

    /// Decodes a frame body (the bytes after the length prefix).
    pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader { body, at: 0 };
        let frame = decode_inner(&mut r, false)?;
        if r.at != body.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(frame)
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Self::Hello { version } => {
                out.push(KIND_HELLO);
                out.extend_from_slice(&MAGIC.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
            }
            Self::Welcome {
                worker_id,
                num_workers,
                rounds,
                env,
                initial_share,
                drop_probability,
                duplicate_probability,
                fault_seed,
            } => {
                out.push(KIND_WELCOME);
                out.extend_from_slice(&MAGIC.to_le_bytes());
                out.extend_from_slice(&VERSION.to_le_bytes());
                out.extend_from_slice(&worker_id.to_le_bytes());
                out.extend_from_slice(&num_workers.to_le_bytes());
                out.extend_from_slice(&rounds.to_le_bytes());
                out.push(env.kind_code());
                out.extend_from_slice(&env.seed.to_le_bytes());
                out.extend_from_slice(&initial_share.to_bits().to_le_bytes());
                out.extend_from_slice(&drop_probability.to_bits().to_le_bytes());
                out.extend_from_slice(&duplicate_probability.to_bits().to_le_bytes());
                out.extend_from_slice(&fault_seed.to_le_bytes());
            }
            Self::RoundStart { epoch, round } => {
                out.push(KIND_ROUND_START);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
            }
            Self::LocalCost { epoch, round, cost } => {
                out.push(KIND_LOCAL_COST);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&cost.to_bits().to_le_bytes());
            }
            Self::Coordination { round, global_cost, alpha, is_straggler } => {
                out.push(KIND_COORDINATION);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&global_cost.to_bits().to_le_bytes());
                out.extend_from_slice(&alpha.to_bits().to_le_bytes());
                out.push(u8::from(*is_straggler));
            }
            Self::Decision { epoch, round, share, gain } => {
                out.push(KIND_DECISION);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&share.to_bits().to_le_bytes());
                out.extend_from_slice(&gain.to_bits().to_le_bytes());
            }
            Self::Assignment { round, share } => {
                out.push(KIND_ASSIGNMENT);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&share.to_bits().to_le_bytes());
            }
            Self::Adjust { round, scale } => {
                out.push(KIND_ADJUST);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&scale.to_bits().to_le_bytes());
            }
            Self::Epoch { epoch, round, share, members } => {
                out.push(KIND_EPOCH);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&share.to_bits().to_le_bytes());
                out.extend_from_slice(&(members.len() as u32).to_le_bytes());
                out.extend(members.iter().map(|&m| u8::from(m)));
            }
            Self::Shutdown => out.push(KIND_SHUTDOWN),
            Self::Data { seq, attempt, inner } => {
                out.push(KIND_DATA);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
                inner.encode_body(out);
            }
            Self::Ack { seq } => {
                out.push(KIND_ACK);
                out.extend_from_slice(&seq.to_le_bytes());
            }
            Self::ShardHello { shard, num_shards } => {
                out.push(KIND_SHARD_HELLO);
                out.extend_from_slice(&MAGIC.to_le_bytes());
                out.extend_from_slice(&VERSION.to_le_bytes());
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&num_shards.to_le_bytes());
            }
            Self::ShardWelcome {
                shard,
                num_shards,
                num_workers,
                rounds,
                range_start,
                range_end,
                env,
                drop_probability,
                duplicate_probability,
                fault_seed,
                retry_ack_timeout,
                retry_backoff,
                retry_max_attempts,
            } => {
                out.push(KIND_SHARD_WELCOME);
                out.extend_from_slice(&MAGIC.to_le_bytes());
                out.extend_from_slice(&VERSION.to_le_bytes());
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&num_shards.to_le_bytes());
                out.extend_from_slice(&num_workers.to_le_bytes());
                out.extend_from_slice(&rounds.to_le_bytes());
                out.extend_from_slice(&range_start.to_le_bytes());
                out.extend_from_slice(&range_end.to_le_bytes());
                out.push(env.kind_code());
                out.extend_from_slice(&env.seed.to_le_bytes());
                out.extend_from_slice(&drop_probability.to_bits().to_le_bytes());
                out.extend_from_slice(&duplicate_probability.to_bits().to_le_bytes());
                out.extend_from_slice(&fault_seed.to_le_bytes());
                out.extend_from_slice(&retry_ack_timeout.to_bits().to_le_bytes());
                out.extend_from_slice(&retry_backoff.to_bits().to_le_bytes());
                out.extend_from_slice(&retry_max_attempts.to_le_bytes());
            }
            Self::ShardAggregate { round, max_cost, straggler, share } => {
                out.push(KIND_SHARD_AGGREGATE);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&max_cost.to_bits().to_le_bytes());
                out.extend_from_slice(&straggler.to_le_bytes());
                out.extend_from_slice(&share.to_bits().to_le_bytes());
            }
            Self::ShardCoord { round, global_cost, alpha, straggler } => {
                out.push(KIND_SHARD_COORD);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&global_cost.to_bits().to_le_bytes());
                out.extend_from_slice(&alpha.to_bits().to_le_bytes());
                out.extend_from_slice(&straggler.to_le_bytes());
            }
            Self::ShardCursor {
                round,
                phase,
                partial_sum,
                partial_compensation,
                partial_len,
                stack,
            } => {
                out.push(KIND_SHARD_CURSOR);
                out.extend_from_slice(&round.to_le_bytes());
                out.push(phase.code());
                out.extend_from_slice(&partial_sum.to_bits().to_le_bytes());
                out.extend_from_slice(&partial_compensation.to_bits().to_le_bytes());
                out.extend_from_slice(&partial_len.to_le_bytes());
                out.extend_from_slice(&(stack.len() as u32).to_le_bytes());
                for &(blocks, value) in stack {
                    out.extend_from_slice(&blocks.to_le_bytes());
                    out.extend_from_slice(&value.to_bits().to_le_bytes());
                }
            }
            Self::ShardRescale { round, scale } => {
                out.push(KIND_SHARD_RESCALE);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&scale.to_bits().to_le_bytes());
            }
            Self::ShardCommit { round, straggler, straggler_share, refresh } => {
                out.push(KIND_SHARD_COMMIT);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&straggler.to_le_bytes());
                out.extend_from_slice(&straggler_share.to_bits().to_le_bytes());
                out.push(u8::from(*refresh));
            }
            Self::ShardDead { round, workers } => {
                out.push(KIND_SHARD_DEAD);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&(workers.len() as u32).to_le_bytes());
                for &w in workers {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
            Self::ShardEpoch { epoch, round, members } => {
                out.push(KIND_SHARD_EPOCH);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&(members.len() as u32).to_le_bytes());
                out.extend(members.iter().map(|&m| u8::from(m)));
            }
            Self::ShardSlice { epoch, start, shares } => {
                out.push(KIND_SHARD_SLICE);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&(shares.len() as u32).to_le_bytes());
                for &x in shares {
                    out.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
        }
    }
}

struct Reader<'a> {
    body: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take<const K: usize>(&mut self) -> Result<[u8; K], WireError> {
        let Some(slice) = self.body.get(self.at..self.at + K) else {
            return Err(WireError::Truncated);
        };
        self.at += K;
        Ok(slice.try_into().expect("slice length checked"))
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take::<1>()?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn boolean(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadValue(what)),
        }
    }
}

fn decode_inner(r: &mut Reader<'_>, enveloped: bool) -> Result<Frame, WireError> {
    match r.u8()? {
        KIND_HELLO => {
            let magic = r.u32()?;
            if magic != MAGIC {
                return Err(WireError::BadMagic { got: magic });
            }
            let version = r.u16()?;
            if version != VERSION {
                return Err(WireError::BadVersion { got: version });
            }
            Ok(Frame::Hello { version })
        }
        KIND_WELCOME => {
            let magic = r.u32()?;
            if magic != MAGIC {
                return Err(WireError::BadMagic { got: magic });
            }
            let version = r.u16()?;
            if version != VERSION {
                return Err(WireError::BadVersion { got: version });
            }
            Ok(Frame::Welcome {
                worker_id: r.u32()?,
                num_workers: r.u32()?,
                rounds: r.u64()?,
                env: {
                    let kind = r.u8()?;
                    let seed = r.u64()?;
                    WireEnvSpec::from_code(kind, seed)
                        .ok_or(WireError::BadValue("environment kind"))?
                },
                initial_share: r.f64()?,
                drop_probability: r.f64()?,
                duplicate_probability: r.f64()?,
                fault_seed: r.u64()?,
            })
        }
        KIND_ROUND_START => Ok(Frame::RoundStart { epoch: r.u32()?, round: r.u64()? }),
        KIND_LOCAL_COST => {
            Ok(Frame::LocalCost { epoch: r.u32()?, round: r.u64()?, cost: r.f64()? })
        }
        KIND_COORDINATION => Ok(Frame::Coordination {
            round: r.u64()?,
            global_cost: r.f64()?,
            alpha: r.f64()?,
            is_straggler: r.boolean("is_straggler flag")?,
        }),
        KIND_DECISION => Ok(Frame::Decision {
            epoch: r.u32()?,
            round: r.u64()?,
            share: r.f64()?,
            gain: r.f64()?,
        }),
        KIND_ASSIGNMENT => Ok(Frame::Assignment { round: r.u64()?, share: r.f64()? }),
        KIND_ADJUST => Ok(Frame::Adjust { round: r.u64()?, scale: r.f64()? }),
        KIND_EPOCH => {
            let epoch = r.u32()?;
            let round = r.u64()?;
            let share = r.f64()?;
            let count = r.u32()? as usize;
            // A member byte each; anything claiming more members than the
            // remaining body could hold is lying about its length.
            if count > r.body.len() - r.at {
                return Err(WireError::Truncated);
            }
            let mut members = Vec::with_capacity(count);
            for _ in 0..count {
                members.push(r.boolean("member flag")?);
            }
            Ok(Frame::Epoch { epoch, round, share, members })
        }
        KIND_SHUTDOWN => Ok(Frame::Shutdown),
        KIND_DATA => {
            if enveloped {
                return Err(WireError::BadValue("nested Data envelope"));
            }
            let seq = r.u64()?;
            let attempt = r.u32()?;
            let inner = decode_inner(r, true)?;
            if matches!(inner, Frame::Ack { .. }) {
                return Err(WireError::BadValue("enveloped Ack"));
            }
            Ok(Frame::Data { seq, attempt, inner: Box::new(inner) })
        }
        KIND_ACK => {
            if enveloped {
                return Err(WireError::BadValue("enveloped Ack"));
            }
            Ok(Frame::Ack { seq: r.u64()? })
        }
        KIND_SHARD_HELLO => {
            let magic = r.u32()?;
            if magic != MAGIC {
                return Err(WireError::BadMagic { got: magic });
            }
            let version = r.u16()?;
            if version != VERSION {
                return Err(WireError::BadVersion { got: version });
            }
            Ok(Frame::ShardHello { shard: r.u32()?, num_shards: r.u32()? })
        }
        KIND_SHARD_WELCOME => {
            let magic = r.u32()?;
            if magic != MAGIC {
                return Err(WireError::BadMagic { got: magic });
            }
            let version = r.u16()?;
            if version != VERSION {
                return Err(WireError::BadVersion { got: version });
            }
            Ok(Frame::ShardWelcome {
                shard: r.u32()?,
                num_shards: r.u32()?,
                num_workers: r.u32()?,
                rounds: r.u64()?,
                range_start: r.u32()?,
                range_end: r.u32()?,
                env: {
                    let kind = r.u8()?;
                    let seed = r.u64()?;
                    WireEnvSpec::from_code(kind, seed)
                        .ok_or(WireError::BadValue("environment kind"))?
                },
                drop_probability: r.f64()?,
                duplicate_probability: r.f64()?,
                fault_seed: r.u64()?,
                retry_ack_timeout: r.f64()?,
                retry_backoff: r.f64()?,
                retry_max_attempts: r.u32()?,
            })
        }
        KIND_SHARD_AGGREGATE => Ok(Frame::ShardAggregate {
            round: r.u64()?,
            max_cost: r.f64()?,
            straggler: r.u64()?,
            share: r.f64()?,
        }),
        KIND_SHARD_COORD => Ok(Frame::ShardCoord {
            round: r.u64()?,
            global_cost: r.f64()?,
            alpha: r.f64()?,
            straggler: r.u64()?,
        }),
        KIND_SHARD_CURSOR => {
            let round = r.u64()?;
            let phase =
                CursorPhase::from_code(r.u8()?).ok_or(WireError::BadValue("cursor phase"))?;
            let partial_sum = r.f64()?;
            let partial_compensation = r.f64()?;
            let partial_len = r.u32()?;
            let count = r.u32()? as usize;
            // 16 bytes per stack entry; a count the remaining body cannot
            // hold is lying about its length.
            if count > (r.body.len() - r.at) / 16 {
                return Err(WireError::Truncated);
            }
            let mut stack = Vec::with_capacity(count);
            for _ in 0..count {
                let blocks = r.u64()?;
                let value = r.f64()?;
                stack.push((blocks, value));
            }
            Ok(Frame::ShardCursor {
                round,
                phase,
                partial_sum,
                partial_compensation,
                partial_len,
                stack,
            })
        }
        KIND_SHARD_RESCALE => Ok(Frame::ShardRescale { round: r.u64()?, scale: r.f64()? }),
        KIND_SHARD_COMMIT => Ok(Frame::ShardCommit {
            round: r.u64()?,
            straggler: r.u64()?,
            straggler_share: r.f64()?,
            refresh: r.boolean("refresh flag")?,
        }),
        KIND_SHARD_DEAD => {
            let round = r.u64()?;
            let count = r.u32()? as usize;
            // 8 bytes per worker id; a count the remaining body cannot
            // hold is lying about its length.
            if count > (r.body.len() - r.at) / 8 {
                return Err(WireError::Truncated);
            }
            let mut workers = Vec::with_capacity(count);
            for _ in 0..count {
                workers.push(r.u64()?);
            }
            Ok(Frame::ShardDead { round, workers })
        }
        KIND_SHARD_EPOCH => {
            let epoch = r.u32()?;
            let round = r.u64()?;
            let count = r.u32()? as usize;
            // A member byte each; anything claiming more members than the
            // remaining body could hold is lying about its length.
            if count > r.body.len() - r.at {
                return Err(WireError::Truncated);
            }
            let mut members = Vec::with_capacity(count);
            for _ in 0..count {
                members.push(r.boolean("member flag")?);
            }
            Ok(Frame::ShardEpoch { epoch, round, members })
        }
        KIND_SHARD_SLICE => {
            let epoch = r.u32()?;
            let start = r.u32()?;
            let count = r.u32()? as usize;
            // 8 bytes per share; a count the remaining body cannot hold
            // is lying about its length.
            if count > (r.body.len() - r.at) / 8 {
                return Err(WireError::Truncated);
            }
            let mut shares = Vec::with_capacity(count);
            for _ in 0..count {
                shares.push(r.f64()?);
            }
            Ok(Frame::ShardSlice { epoch, start, shares })
        }
        other => Err(WireError::UnknownKind(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_fields_round_trip_bitwise() {
        for value in [0.1 + 0.2, f64::MIN_POSITIVE, 1.0 / 3.0, -0.0, f64::INFINITY] {
            let frame = Frame::Assignment { round: 3, share: value };
            let (back, _) = Frame::decode(&frame.encode()).unwrap();
            let Frame::Assignment { share, .. } = back else { panic!("kind changed") };
            assert_eq!(share.to_bits(), value.to_bits());
        }
    }

    #[test]
    fn envelope_nesting_is_rejected() {
        let nested = Frame::Data {
            seq: 1,
            attempt: 0,
            inner: Box::new(Frame::Data { seq: 2, attempt: 0, inner: Box::new(Frame::Shutdown) }),
        };
        assert_eq!(
            Frame::decode(&nested.encode()),
            Err(WireError::BadValue("nested Data envelope"))
        );
    }

    #[test]
    fn shard_frames_round_trip_bitwise() {
        let frames = vec![
            Frame::ShardHello { shard: 3, num_shards: 16 },
            Frame::ShardWelcome {
                shard: 3,
                num_shards: 16,
                num_workers: 4096,
                rounds: 500,
                range_start: 768,
                range_end: 1024,
                env: crate::env::WireEnvSpec { kind: crate::env::EnvKind::ChaosMix, seed: 9 },
                drop_probability: 0.12,
                duplicate_probability: 0.05,
                fault_seed: 21,
                retry_ack_timeout: 0.01,
                retry_backoff: 1.5,
                retry_max_attempts: 6,
            },
            Frame::ShardAggregate {
                round: 7,
                max_cost: 0.1 + 0.2,
                straggler: 801,
                share: 1.0 / 3.0,
            },
            Frame::ShardCoord { round: 7, global_cost: 0.1 + 0.2, alpha: 0.5, straggler: 801 },
            Frame::ShardCursor {
                round: 7,
                phase: CursorPhase::Gains,
                partial_sum: 0.1 + 0.2,
                partial_compensation: -1.1e-17,
                partial_len: 13,
                stack: vec![(4, 1.0 / 3.0), (1, f64::MIN_POSITIVE)],
            },
            Frame::ShardCursor {
                round: 8,
                phase: CursorPhase::Shares,
                partial_sum: 0.0,
                partial_compensation: 0.0,
                partial_len: 0,
                stack: Vec::new(),
            },
            Frame::ShardRescale { round: 7, scale: 0.75 },
            Frame::ShardCommit { round: 7, straggler: 801, straggler_share: 0.25, refresh: true },
            Frame::ShardDead { round: 7, workers: vec![801, 805] },
            Frame::ShardDead { round: 0, workers: Vec::new() },
            Frame::ShardEpoch { epoch: 2, round: 8, members: vec![true, false, true] },
            Frame::ShardSlice {
                epoch: 2,
                start: 768,
                shares: vec![0.1 + 0.2, 0.0, f64::MIN_POSITIVE, 1.0 / 3.0],
            },
        ];
        for frame in frames {
            let bytes = frame.encode();
            let (back, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            // PartialEq on f64 is not bitwise; compare the re-encoding.
            assert_eq!(back.encode(), bytes, "{frame:?}");
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn shard_handshake_frames_check_magic_and_version() {
        let hello = Frame::ShardHello { shard: 0, num_shards: 2 };
        let mut bytes = hello.encode();
        bytes[5] ^= 0xFF; // corrupt the magic (after 4-byte prefix + kind)
        assert!(matches!(Frame::decode(&bytes), Err(WireError::BadMagic { .. })));
    }

    #[test]
    fn cursor_stack_count_cannot_exceed_body() {
        let frame = Frame::ShardCursor {
            round: 1,
            phase: CursorPhase::Gains,
            partial_sum: 0.5,
            partial_compensation: 0.0,
            partial_len: 3,
            stack: vec![(2, 0.25)],
        };
        let mut bytes = frame.encode();
        // Corrupt the stack count (offset: 4 prefix + 1 kind + 8 round +
        // 1 phase + 8 sum + 8 compensation + 4 len).
        bytes[34..38].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Frame::decode(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn unknown_cursor_phase_is_rejected() {
        let frame = Frame::ShardCursor {
            round: 1,
            phase: CursorPhase::Shares,
            partial_sum: 0.0,
            partial_compensation: 0.0,
            partial_len: 0,
            stack: Vec::new(),
        };
        let mut bytes = frame.encode();
        bytes[13] = 7; // the phase byte (4 prefix + 1 kind + 8 round)
        assert_eq!(Frame::decode(&bytes), Err(WireError::BadValue("cursor phase")));
    }

    #[test]
    fn shard_dead_worker_count_cannot_exceed_body() {
        let frame = Frame::ShardDead { round: 9, workers: vec![3, 4] };
        let mut bytes = frame.encode();
        // Corrupt the worker count (offset: 4 prefix + 1 kind + 8 round).
        bytes[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Frame::decode(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn shard_epoch_member_count_cannot_exceed_body() {
        let frame = Frame::ShardEpoch { epoch: 1, round: 5, members: vec![true, false] };
        let mut bytes = frame.encode();
        // Corrupt the member count (offset: 4 prefix + 1 kind + 4 epoch +
        // 8 round) to claim far more members than follow.
        bytes[17..21].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Frame::decode(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn shard_epoch_member_flags_must_be_boolean() {
        let frame = Frame::ShardEpoch { epoch: 1, round: 5, members: vec![true, false] };
        let mut bytes = frame.encode();
        bytes[21] = 7; // the first member byte, right after the count
        assert_eq!(Frame::decode(&bytes), Err(WireError::BadValue("member flag")));
    }

    #[test]
    fn shard_slice_share_count_cannot_exceed_body() {
        let frame = Frame::ShardSlice { epoch: 1, start: 16, shares: vec![0.25, 0.5] };
        let mut bytes = frame.encode();
        // Corrupt the share count (offset: 4 prefix + 1 kind + 4 epoch +
        // 4 start).
        bytes[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Frame::decode(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn shard_slice_chunk_respects_the_frame_cap() {
        let frame = Frame::ShardSlice {
            epoch: 1,
            start: 0,
            shares: vec![1.0 / SHARD_SLICE_CHUNK as f64; SHARD_SLICE_CHUNK],
        };
        let bytes = frame.encode();
        assert!(bytes.len() <= 4 + MAX_FRAME_BYTES);
        let (back, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, frame);
    }

    #[test]
    fn epoch_member_count_cannot_exceed_body() {
        let frame = Frame::Epoch { epoch: 1, round: 5, share: 0.25, members: vec![true, false] };
        let mut bytes = frame.encode();
        // Corrupt the member count (offset: 4 prefix + 1 kind + 4 epoch +
        // 8 round + 8 share) to claim far more members than follow.
        bytes[25..29].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Frame::decode(&bytes), Err(WireError::Truncated));
    }
}
