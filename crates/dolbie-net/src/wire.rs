//! The DOLBIE wire protocol: length-prefixed binary frames with a
//! version/magic handshake.
//!
//! Every §IV-B message of Algorithm 1 has an explicit frame — `LocalCost`,
//! `Coordination {global_cost, alpha, is_straggler}`, `Decision`,
//! `Assignment`, `Shutdown` — plus the frames the real runtime needs
//! around them: the `Hello`/`Welcome` handshake, a `RoundStart` barrier,
//! the rare `Adjust` rescale (the engine's simplex guard), `Epoch`
//! membership announcements, and the `Data`/`Ack` envelope of the lossy
//! link layer.
//!
//! ## Frame layout
//!
//! ```text
//! +----------------+------+-------------------------------+
//! | length: u32 LE | kind | fields, little-endian         |
//! +----------------+------+-------------------------------+
//! ```
//!
//! The length counts the body (kind byte included, prefix excluded) and
//! must not exceed [`MAX_FRAME_BYTES`]. Decoding is strict: truncated
//! bodies, trailing bytes, unknown kinds, out-of-range discriminants,
//! oversized lengths, and a bad magic/version in the handshake are all
//! distinct [`WireError`]s, never a partial parse. `f64` fields travel as
//! their IEEE-754 bit patterns, so shares and costs cross the wire
//! bitwise-exactly — the foundation of the trajectory-parity claim.

use crate::env::WireEnvSpec;

/// Protocol magic carried by both handshake frames.
pub const MAGIC: u32 = 0xD01B_1E55;

/// Protocol version carried by both handshake frames.
pub const VERSION: u16 = 1;

/// Hard cap on a frame body; larger length prefixes are rejected before
/// any allocation.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// A decode failure. Every variant names the precise violation so fuzzed
/// or hostile bytes produce diagnosable rejections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the frame did.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The claimed body length.
        len: usize,
    },
    /// The kind byte names no known frame.
    UnknownKind(u8),
    /// A handshake frame carried the wrong magic.
    BadMagic {
        /// The magic actually received.
        got: u32,
    },
    /// A handshake frame carried an unsupported protocol version.
    BadVersion {
        /// The version actually received.
        got: u16,
    },
    /// The body was longer than its frame kind prescribes.
    TrailingBytes,
    /// A field held an out-of-range value (named in the payload).
    BadValue(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "truncated frame"),
            Self::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
            Self::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            Self::BadMagic { got } => write!(f, "bad protocol magic {got:#010x}"),
            Self::BadVersion { got } => {
                write!(f, "unsupported protocol version {got} (this node speaks {VERSION})")
            }
            Self::TrailingBytes => write!(f, "trailing bytes after frame body"),
            Self::BadValue(what) => write!(f, "out-of-range field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One protocol frame.
///
/// # Examples
///
/// ```
/// use dolbie_net::wire::Frame;
///
/// let frame = Frame::Coordination {
///     round: 7,
///     global_cost: 3.25,
///     alpha: 0.5,
///     is_straggler: false,
/// };
/// let bytes = frame.encode();
/// let (back, used) = Frame::decode(&bytes).unwrap();
/// assert_eq!(back, frame);
/// assert_eq!(used, bytes.len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → master: first frame on a fresh connection.
    Hello {
        /// Protocol version the worker speaks.
        version: u16,
    },
    /// Master → worker: handshake acceptance and run parameters.
    Welcome {
        /// The worker's assigned identity (its accept-order index).
        worker_id: u32,
        /// Fleet size `N`.
        num_workers: u32,
        /// Horizon `T`.
        rounds: u64,
        /// The seeded environment both sides derive costs from.
        env: WireEnvSpec,
        /// The worker's authoritative initial share.
        initial_share: f64,
        /// Socket-layer drop probability (0 disables the lossy envelope).
        drop_probability: f64,
        /// Socket-layer duplication probability.
        duplicate_probability: f64,
        /// Seed of the socket-layer fault decisions.
        fault_seed: u64,
    },
    /// Master → worker: the per-round barrier. Carries the membership
    /// epoch so post-churn rounds are unambiguous on the wire.
    RoundStart {
        /// Current membership epoch.
        epoch: u32,
        /// Round index `t`.
        round: u64,
    },
    /// Worker → master: line 4 of Algorithm 1, `l_{i,t} = f_{i,t}(x_{i,t})`.
    LocalCost {
        /// The worker's current membership epoch (stale-frame filter).
        epoch: u32,
        /// Round index `t`.
        round: u64,
        /// The observed local cost.
        cost: f64,
    },
    /// Master → worker: line 12 of Algorithm 1.
    Coordination {
        /// Round index `t`.
        round: u64,
        /// Global cost `l_t = max_i l_{i,t}`.
        global_cost: f64,
        /// Step size `α_t`.
        alpha: f64,
        /// Whether the recipient is this round's straggler.
        is_straggler: bool,
    },
    /// Worker → master: line 7 of Algorithm 1 (non-stragglers only).
    Decision {
        /// The worker's current membership epoch (stale-frame filter).
        epoch: u32,
        /// Round index `t`.
        round: u64,
        /// The tentative next share `x_{i,t+1}`.
        share: f64,
        /// The eq. (5) gain `α_t (x'_{i,t} − x_{i,t})` the master feeds
        /// its mirrored engine.
        gain: f64,
    },
    /// Master → straggler: line 15 of Algorithm 1, the pinned share.
    Assignment {
        /// Round index `t`.
        round: u64,
        /// The straggler's next share.
        share: f64,
    },
    /// Master → non-stragglers: the engine's simplex guard fired; replay
    /// `x_{i,t+1} = x_{i,t} + gain · scale`.
    Adjust {
        /// Round index `t`.
        round: u64,
        /// The guard's rescale factor.
        scale: f64,
    },
    /// Master → survivors: a membership epoch boundary after a crash.
    /// The carried share is authoritative and overrides any tentative
    /// in-round state.
    Epoch {
        /// The new epoch number.
        epoch: u32,
        /// The round that will be (re)started next.
        round: u64,
        /// The recipient's post-renormalization share.
        share: f64,
        /// The member mask over original worker ids.
        members: Vec<bool>,
    },
    /// Master → worker: orderly end of the run.
    Shutdown,
    /// Lossy-link envelope: one physical transmission attempt of an inner
    /// frame. Never nests.
    Data {
        /// Link-layer sequence number (per direction, strictly increasing).
        seq: u64,
        /// Zero-based transmission attempt of this copy.
        attempt: u32,
        /// The enveloped protocol frame.
        inner: Box<Frame>,
    },
    /// Lossy-link acknowledgement of a delivered [`Frame::Data`] copy.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
}

const KIND_HELLO: u8 = 0;
const KIND_WELCOME: u8 = 1;
const KIND_ROUND_START: u8 = 2;
const KIND_LOCAL_COST: u8 = 3;
const KIND_COORDINATION: u8 = 4;
const KIND_DECISION: u8 = 5;
const KIND_ASSIGNMENT: u8 = 6;
const KIND_ADJUST: u8 = 7;
const KIND_EPOCH: u8 = 8;
const KIND_SHUTDOWN: u8 = 9;
const KIND_DATA: u8 = 10;
const KIND_ACK: u8 = 11;

impl Frame {
    /// Encodes the frame as length prefix + body.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32);
        self.encode_body(&mut body);
        assert!(body.len() <= MAX_FRAME_BYTES, "encoder produced an oversized frame");
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one frame from the front of `buf`, returning it and the
    /// number of bytes consumed (prefix included).
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        if buf.len() < 4 {
            return Err(WireError::Truncated);
        }
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(WireError::Oversized { len });
        }
        let Some(body) = buf.get(4..4 + len) else {
            return Err(WireError::Truncated);
        };
        Ok((Self::decode_body(body)?, 4 + len))
    }

    /// Decodes a frame body (the bytes after the length prefix).
    pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader { body, at: 0 };
        let frame = decode_inner(&mut r, false)?;
        if r.at != body.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(frame)
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Self::Hello { version } => {
                out.push(KIND_HELLO);
                out.extend_from_slice(&MAGIC.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
            }
            Self::Welcome {
                worker_id,
                num_workers,
                rounds,
                env,
                initial_share,
                drop_probability,
                duplicate_probability,
                fault_seed,
            } => {
                out.push(KIND_WELCOME);
                out.extend_from_slice(&MAGIC.to_le_bytes());
                out.extend_from_slice(&VERSION.to_le_bytes());
                out.extend_from_slice(&worker_id.to_le_bytes());
                out.extend_from_slice(&num_workers.to_le_bytes());
                out.extend_from_slice(&rounds.to_le_bytes());
                out.push(env.kind_code());
                out.extend_from_slice(&env.seed.to_le_bytes());
                out.extend_from_slice(&initial_share.to_bits().to_le_bytes());
                out.extend_from_slice(&drop_probability.to_bits().to_le_bytes());
                out.extend_from_slice(&duplicate_probability.to_bits().to_le_bytes());
                out.extend_from_slice(&fault_seed.to_le_bytes());
            }
            Self::RoundStart { epoch, round } => {
                out.push(KIND_ROUND_START);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
            }
            Self::LocalCost { epoch, round, cost } => {
                out.push(KIND_LOCAL_COST);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&cost.to_bits().to_le_bytes());
            }
            Self::Coordination { round, global_cost, alpha, is_straggler } => {
                out.push(KIND_COORDINATION);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&global_cost.to_bits().to_le_bytes());
                out.extend_from_slice(&alpha.to_bits().to_le_bytes());
                out.push(u8::from(*is_straggler));
            }
            Self::Decision { epoch, round, share, gain } => {
                out.push(KIND_DECISION);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&share.to_bits().to_le_bytes());
                out.extend_from_slice(&gain.to_bits().to_le_bytes());
            }
            Self::Assignment { round, share } => {
                out.push(KIND_ASSIGNMENT);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&share.to_bits().to_le_bytes());
            }
            Self::Adjust { round, scale } => {
                out.push(KIND_ADJUST);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&scale.to_bits().to_le_bytes());
            }
            Self::Epoch { epoch, round, share, members } => {
                out.push(KIND_EPOCH);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&share.to_bits().to_le_bytes());
                out.extend_from_slice(&(members.len() as u32).to_le_bytes());
                out.extend(members.iter().map(|&m| u8::from(m)));
            }
            Self::Shutdown => out.push(KIND_SHUTDOWN),
            Self::Data { seq, attempt, inner } => {
                out.push(KIND_DATA);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&attempt.to_le_bytes());
                inner.encode_body(out);
            }
            Self::Ack { seq } => {
                out.push(KIND_ACK);
                out.extend_from_slice(&seq.to_le_bytes());
            }
        }
    }
}

struct Reader<'a> {
    body: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take<const K: usize>(&mut self) -> Result<[u8; K], WireError> {
        let Some(slice) = self.body.get(self.at..self.at + K) else {
            return Err(WireError::Truncated);
        };
        self.at += K;
        Ok(slice.try_into().expect("slice length checked"))
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take::<1>()?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn boolean(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadValue(what)),
        }
    }
}

fn decode_inner(r: &mut Reader<'_>, enveloped: bool) -> Result<Frame, WireError> {
    match r.u8()? {
        KIND_HELLO => {
            let magic = r.u32()?;
            if magic != MAGIC {
                return Err(WireError::BadMagic { got: magic });
            }
            let version = r.u16()?;
            if version != VERSION {
                return Err(WireError::BadVersion { got: version });
            }
            Ok(Frame::Hello { version })
        }
        KIND_WELCOME => {
            let magic = r.u32()?;
            if magic != MAGIC {
                return Err(WireError::BadMagic { got: magic });
            }
            let version = r.u16()?;
            if version != VERSION {
                return Err(WireError::BadVersion { got: version });
            }
            Ok(Frame::Welcome {
                worker_id: r.u32()?,
                num_workers: r.u32()?,
                rounds: r.u64()?,
                env: {
                    let kind = r.u8()?;
                    let seed = r.u64()?;
                    WireEnvSpec::from_code(kind, seed)
                        .ok_or(WireError::BadValue("environment kind"))?
                },
                initial_share: r.f64()?,
                drop_probability: r.f64()?,
                duplicate_probability: r.f64()?,
                fault_seed: r.u64()?,
            })
        }
        KIND_ROUND_START => Ok(Frame::RoundStart { epoch: r.u32()?, round: r.u64()? }),
        KIND_LOCAL_COST => {
            Ok(Frame::LocalCost { epoch: r.u32()?, round: r.u64()?, cost: r.f64()? })
        }
        KIND_COORDINATION => Ok(Frame::Coordination {
            round: r.u64()?,
            global_cost: r.f64()?,
            alpha: r.f64()?,
            is_straggler: r.boolean("is_straggler flag")?,
        }),
        KIND_DECISION => Ok(Frame::Decision {
            epoch: r.u32()?,
            round: r.u64()?,
            share: r.f64()?,
            gain: r.f64()?,
        }),
        KIND_ASSIGNMENT => Ok(Frame::Assignment { round: r.u64()?, share: r.f64()? }),
        KIND_ADJUST => Ok(Frame::Adjust { round: r.u64()?, scale: r.f64()? }),
        KIND_EPOCH => {
            let epoch = r.u32()?;
            let round = r.u64()?;
            let share = r.f64()?;
            let count = r.u32()? as usize;
            // A member byte each; anything claiming more members than the
            // remaining body could hold is lying about its length.
            if count > r.body.len() - r.at {
                return Err(WireError::Truncated);
            }
            let mut members = Vec::with_capacity(count);
            for _ in 0..count {
                members.push(r.boolean("member flag")?);
            }
            Ok(Frame::Epoch { epoch, round, share, members })
        }
        KIND_SHUTDOWN => Ok(Frame::Shutdown),
        KIND_DATA => {
            if enveloped {
                return Err(WireError::BadValue("nested Data envelope"));
            }
            let seq = r.u64()?;
            let attempt = r.u32()?;
            let inner = decode_inner(r, true)?;
            if matches!(inner, Frame::Ack { .. }) {
                return Err(WireError::BadValue("enveloped Ack"));
            }
            Ok(Frame::Data { seq, attempt, inner: Box::new(inner) })
        }
        KIND_ACK => {
            if enveloped {
                return Err(WireError::BadValue("enveloped Ack"));
            }
            Ok(Frame::Ack { seq: r.u64()? })
        }
        other => Err(WireError::UnknownKind(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_fields_round_trip_bitwise() {
        for value in [0.1 + 0.2, f64::MIN_POSITIVE, 1.0 / 3.0, -0.0, f64::INFINITY] {
            let frame = Frame::Assignment { round: 3, share: value };
            let (back, _) = Frame::decode(&frame.encode()).unwrap();
            let Frame::Assignment { share, .. } = back else { panic!("kind changed") };
            assert_eq!(share.to_bits(), value.to_bits());
        }
    }

    #[test]
    fn envelope_nesting_is_rejected() {
        let nested = Frame::Data {
            seq: 1,
            attempt: 0,
            inner: Box::new(Frame::Data { seq: 2, attempt: 0, inner: Box::new(Frame::Shutdown) }),
        };
        assert_eq!(
            Frame::decode(&nested.encode()),
            Err(WireError::BadValue("nested Data envelope"))
        );
    }

    #[test]
    fn epoch_member_count_cannot_exceed_body() {
        let frame = Frame::Epoch { epoch: 1, round: 5, share: 0.25, members: vec![true, false] };
        let mut bytes = frame.encode();
        // Corrupt the member count (offset: 4 prefix + 1 kind + 4 epoch +
        // 8 round + 8 share) to claim far more members than follow.
        bytes[25..29].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Frame::decode(&bytes), Err(WireError::Truncated));
    }
}
