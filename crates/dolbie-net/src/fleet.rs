//! The connection-sweep machinery behind every evented coordinator: a
//! set of non-blocking connections pumped by a level-triggered readiness
//! loop, with per-connection deadlines on a hashed timer wheel and the
//! stop-and-wait lossy envelope mirrored from the blocking [`Link`].
//!
//! [`crate::evented`] (the flat event-driven master) and
//! [`crate::shard`] (the shard-master tier) both coordinate "a member
//! set over sockets"; everything below the protocol script — readiness
//! sweeps, frame reassembly, broadcast fan-out, deadline bookkeeping,
//! crash discovery — is identical between them and lives here as
//! [`Fleet`].
//!
//! [`Link`]: crate::transport::Link

use crate::transport::{FrameCodec, TransportError, WireStats};
use crate::wire::Frame;
use crate::NetError;
use dolbie_simnet::faults::FaultPlan;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Slot count of the hashed timer wheel. Must be a power of two (checked
/// by a debug assertion in [`TimerWheel::new`]) so the slot index — taken
/// with `%` for clarity — compiles to a mask, and so a full rotation
/// divides the tick space evenly. 256 slots of [`WHEEL_TICK_MICROS`]
/// cover a ~1 s horizon per rotation; deadlines beyond it are re-kept
/// when the cursor crosses their slot.
pub(crate) const WHEEL_SLOTS: usize = 256;

/// Width of one timer-wheel slot in microseconds. With [`WHEEL_SLOTS`]
/// slots this bounds deadline-firing granularity at 4 ms — far below any
/// configured `frame_timeout`, so expiry jitter never masquerades as a
/// premature crash declaration.
pub(crate) const WHEEL_TICK_MICROS: u128 = 4_000;

/// Read-buffer size for one non-blocking `read` call. One page-multiple
/// chunk keeps syscall count low while bounding the stack frame of every
/// sweep; frames larger than this simply reassemble across reads.
pub(crate) const READ_CHUNK_BYTES: usize = 16384;

/// Consecutive idle sweeps tolerated before the pacing loop stops
/// spin-yielding and starts sleeping. Low enough that a quiet fleet
/// backs off within microseconds; high enough that a single empty sweep
/// between frame bursts never costs a sleep.
pub(crate) const SPIN_YIELD_STREAK: u32 = 8;

/// Sleep length, in microseconds, for each idle pass once the
/// [`SPIN_YIELD_STREAK`] budget is exhausted. Half a millisecond keeps
/// worst-case added latency per frame well under the timer-wheel tick.
pub(crate) const IDLE_SLEEP_MICROS: u64 = 500;

#[derive(Debug, Clone, Copy)]
pub(crate) struct Timer {
    at: Instant,
    conn: usize,
    gen: u64,
}

/// A hashed timer wheel: [`WHEEL_SLOTS`] slots of [`WHEEL_TICK_MICROS`].
/// Arming is O(1); expiry drains only the slots the cursor crosses,
/// re-keeping entries armed a full rotation or more ahead. Cancellation
/// is lazy: each connection carries a generation counter and a fired
/// timer whose generation is stale is simply discarded.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    slots: Vec<Vec<Timer>>,
    epoch: Instant,
    tick: u64,
}

impl TimerWheel {
    pub(crate) fn new(now: Instant) -> Self {
        debug_assert!(WHEEL_SLOTS.is_power_of_two(), "wheel slot count must be a power of two");
        Self { slots: vec![Vec::new(); WHEEL_SLOTS], epoch: now, tick: 0 }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        (at.saturating_duration_since(self.epoch).as_micros() / WHEEL_TICK_MICROS) as u64
    }

    pub(crate) fn arm(&mut self, at: Instant, conn: usize, gen: u64) {
        let tick = self.tick_of(at).max(self.tick);
        self.slots[(tick as usize) % WHEEL_SLOTS].push(Timer { at, conn, gen });
    }

    /// Drains every timer due by `now`, sorted by (deadline, connection)
    /// so expiry order never depends on slot hashing.
    pub(crate) fn expire(&mut self, now: Instant) -> Vec<Timer> {
        let now_tick = self.tick_of(now);
        if now_tick < self.tick {
            return Vec::new();
        }
        let mut due = Vec::new();
        // Past a full rotation every slot is visited exactly once.
        let span = (now_tick - self.tick + 1).min(WHEEL_SLOTS as u64);
        for step in 0..span {
            let slot = ((self.tick + step) as usize) % WHEEL_SLOTS;
            let mut keep = Vec::new();
            for timer in self.slots[slot].drain(..) {
                if timer.at <= now {
                    due.push(timer);
                } else {
                    keep.push(timer);
                }
            }
            self.slots[slot] = keep;
        }
        self.tick = now_tick;
        due.sort_by(|a, b| a.at.cmp(&b.at).then(a.conn.cmp(&b.conn)));
        due
    }
}

impl Timer {
    pub(crate) fn conn(&self) -> usize {
        self.conn
    }

    pub(crate) fn gen(&self) -> u64 {
        self.gen
    }
}

/// Adaptive idle pacing: spin-yield while traffic flows, back off to
/// brief sleeps once the loop goes quiet, reset on any progress.
pub(crate) struct IdleWait {
    streak: u32,
}

impl IdleWait {
    pub(crate) fn new() -> Self {
        Self { streak: 0 }
    }

    pub(crate) fn pace(&mut self, progressed: bool) {
        if progressed {
            self.streak = 0;
            return;
        }
        self.streak += 1;
        if self.streak < SPIN_YIELD_STREAK {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(IDLE_SLEEP_MICROS));
        }
    }
}

/// One stop-and-wait envelope in flight on a lossy connection.
#[derive(Debug)]
struct Inflight {
    seq: u64,
    frame: Frame,
    attempt: usize,
    rto: f64,
    at: Instant,
}

/// Non-blocking counterpart of the blocking `Link`'s lossy state: the
/// same hash-keyed drop/duplicate/ack-drop decisions and the same
/// stop-and-wait discipline (one envelope in flight per direction —
/// pipelining would break the receiver's high-water-mark dedup), driven
/// by the sweep loop instead of blocking waits.
#[derive(Debug)]
struct NbLossy {
    plan: FaultPlan,
    self_code: u64,
    peer_code: u64,
    next_seq: u64,
    last_delivered: Option<u64>,
    outbox: VecDeque<Frame>,
    inflight: Option<Inflight>,
    retransmissions: u64,
    duplicates: u64,
    acks: u64,
}

/// Why one connection stopped being usable.
pub(crate) enum ConnFail {
    /// Socket-level death: EOF, reset, write-zero. Maps to a crash.
    Dead,
    /// The peer sent malformed or protocol-violating traffic.
    Fatal(NetError),
}

/// One admitted (or handshaking) connection: a non-blocking socket, the
/// shared reassembly/transmit codec, the optional lossy envelope, and an
/// inbox of fully decoded protocol frames.
#[derive(Debug)]
pub(crate) struct Conn {
    stream: TcpStream,
    pub(crate) codec: FrameCodec,
    lossy: Option<NbLossy>,
    pub(crate) inbox: VecDeque<Frame>,
    /// Deadline generation; bumping it lazily cancels armed timers.
    pub(crate) gen: u64,
    /// Whether a collect phase currently awaits a frame from this peer.
    pub(crate) awaiting: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            codec: FrameCodec::new(),
            lossy: None,
            inbox: VecDeque::new(),
            gen: 0,
            awaiting: false,
        })
    }

    pub(crate) fn install_lossy(&mut self, plan: &FaultPlan, self_code: u64, peer_code: u64) {
        if plan.is_lossless() {
            return;
        }
        self.lossy = Some(NbLossy {
            plan: plan.clone(),
            self_code,
            peer_code,
            next_seq: 0,
            last_delivered: None,
            outbox: VecDeque::new(),
            inflight: None,
            retransmissions: 0,
            duplicates: 0,
            acks: 0,
        });
    }

    pub(crate) fn is_lossy(&self) -> bool {
        self.lossy.is_some()
    }

    /// Whether this connection still has outbound work: unsent bytes or
    /// a live lossy envelope.
    pub(crate) fn busy(&self) -> bool {
        self.codec.has_tx()
            || self.lossy.as_ref().is_some_and(|l| l.inflight.is_some() || !l.outbox.is_empty())
    }

    /// Queues one protocol frame, through the lossy envelope when one is
    /// installed.
    pub(crate) fn queue(&mut self, frame: &Frame, now: Instant) {
        if self.lossy.is_some() {
            self.lossy.as_mut().expect("checked above").outbox.push_back(frame.clone());
            self.lossy_kick(now);
        } else {
            self.codec.queue(frame);
        }
    }

    /// Starts the next queued envelope if nothing is in flight.
    fn lossy_kick(&mut self, now: Instant) {
        loop {
            let Some(state) = self.lossy.as_mut() else { return };
            if state.inflight.is_some() {
                return;
            }
            let Some(frame) = state.outbox.pop_front() else { return };
            let seq = state.next_seq;
            state.next_seq += 1;
            let rto = state.plan.retry.ack_timeout;
            state.inflight = Some(Inflight { seq, frame, attempt: 0, rto, at: now });
            if !self.lossy_transmit(now) {
                return;
            }
            // The forced final attempt completed immediately; chain on.
        }
    }

    /// Writes (or hash-drops) the current attempt. Returns whether the
    /// envelope completed (the forced final attempt was written).
    fn lossy_transmit(&mut self, now: Instant) -> bool {
        let Self { codec, lossy, .. } = self;
        let state = lossy.as_mut().expect("lossy mode");
        let inflight = state.inflight.as_mut().expect("an attempt in flight");
        let attempt = inflight.attempt;
        let forced = attempt + 1 == state.plan.retry.max_attempts;
        let delivered = forced
            || !state.plan.wire_drop(inflight.seq, state.self_code, state.peer_code, attempt);
        if delivered {
            let data = Frame::Data {
                seq: inflight.seq,
                attempt: attempt as u32,
                inner: Box::new(inflight.frame.clone()),
            };
            codec.queue(&data);
            if state.plan.wire_duplicate(inflight.seq, state.self_code, state.peer_code, attempt) {
                codec.queue(&data);
                state.duplicates += 1;
            }
        }
        inflight.at = now;
        if forced {
            // TCP delivers what we wrote; nothing left to await.
            state.inflight = None;
        }
        forced
    }

    /// Drives the retransmission clock: the same
    /// `ack_timeout · backoff^k` schedule as the blocking link, checked
    /// against wall time each sweep instead of slept through.
    fn lossy_poll(&mut self, now: Instant) {
        if self.lossy.is_none() {
            return;
        }
        self.lossy_kick(now);
        let Some(state) = self.lossy.as_mut() else { return };
        let Some(inflight) = state.inflight.as_mut() else { return };
        if now.saturating_duration_since(inflight.at) < Duration::from_secs_f64(inflight.rto) {
            return;
        }
        inflight.attempt += 1;
        inflight.rto *= state.plan.retry.backoff;
        state.retransmissions += 1;
        if self.lossy_transmit(now) {
            self.lossy_kick(now);
        }
    }

    /// Receiver-side routing of one decoded frame: straight to the inbox
    /// on lossless connections; ack-or-suppress, dedup, then inbox on
    /// lossy ones.
    fn route(&mut self, frame: Frame, now: Instant) -> Result<(), ConnFail> {
        let Self { codec, lossy, inbox, .. } = self;
        let Some(state) = lossy.as_mut() else {
            inbox.push_back(frame);
            return Ok(());
        };
        match frame {
            Frame::Data { seq, attempt, inner } => {
                // Ack fate is keyed on the DATA direction (peer → self),
                // so the sender reaches the same verdict.
                let suppressed = state.plan.wire_ack_drop(
                    seq,
                    state.peer_code,
                    state.self_code,
                    attempt as usize,
                );
                if !suppressed {
                    codec.queue(&Frame::Ack { seq });
                    state.acks += 1;
                }
                // Per-direction seqs are strictly increasing; anything at
                // or below the high-water mark is a copy already delivered.
                if state.last_delivered.is_none_or(|last| seq > last) {
                    state.last_delivered = Some(seq);
                    inbox.push_back(*inner);
                }
                Ok(())
            }
            Frame::Ack { seq } => {
                if state.inflight.as_ref().is_some_and(|i| i.seq == seq) {
                    state.inflight = None;
                    self.lossy_kick(now);
                }
                Ok(())
            }
            _ => Err(ConnFail::Fatal(NetError::Transport(TransportError::Protocol(
                "raw frame on a lossy link",
            )))),
        }
    }

    /// Drains whatever the socket has buffered and parses complete
    /// frames into the inbox. Returns whether any bytes arrived.
    pub(crate) fn pump_read(&mut self, now: Instant) -> Result<bool, ConnFail> {
        let mut progressed = false;
        let mut chunk = [0u8; READ_CHUNK_BYTES];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ConnFail::Dead),
                Ok(k) => {
                    self.codec.ingest(&chunk[..k]);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Err(ConnFail::Dead),
            }
        }
        loop {
            match self.codec.pop_frame() {
                Ok(Some(frame)) => self.route(frame, now)?,
                Ok(None) => break,
                Err(e) => return Err(ConnFail::Fatal(NetError::Transport(e.into()))),
            }
        }
        Ok(progressed)
    }

    /// Writes as much of the transmit queue as the socket accepts.
    pub(crate) fn pump_write(&mut self) -> Result<bool, ConnFail> {
        let mut progressed = false;
        while self.codec.has_tx() {
            match self.stream.write(self.codec.pending_tx()) {
                Ok(0) => return Err(ConnFail::Dead),
                Ok(k) => {
                    self.codec.advance_tx(k);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Err(ConnFail::Dead),
            }
        }
        Ok(progressed)
    }

    /// Combined socket and envelope counters.
    pub(crate) fn stats(&self) -> WireStats {
        let mut stats = self.codec.stats();
        if let Some(state) = &self.lossy {
            stats.retransmissions = state.retransmissions;
            stats.duplicates = state.duplicates;
            stats.acks = state.acks;
        }
        stats
    }
}

/// One full readiness pass over a connection: retransmission clock,
/// write, read, then clock again (an ack may have freed the envelope).
pub(crate) fn pump(conn: &mut Conn, now: Instant) -> Result<bool, ConnFail> {
    conn.lossy_poll(now);
    let wrote = conn.pump_write()?;
    let read = conn.pump_read(now)?;
    conn.lossy_poll(now);
    let flushed = conn.pump_write()?;
    Ok(wrote | read | flushed)
}

/// Which worker frame a collect phase awaits.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// `LocalCost` frames (Algorithm 1 lines 9–11).
    Cost,
    /// `Decision` frames (Algorithm 1 lines 13–14).
    Decision,
}

/// The shared collect-phase frame matcher: the value carried by the
/// awaited frame, `None` for a stale leftover of an abandoned epoch
/// (silently filtered, exactly like the blocking master's loops), or
/// `Fatal` on a protocol violation.
fn phase_value(
    phase: Phase,
    frame: Frame,
    t: usize,
    epoch: u32,
    i: usize,
) -> Result<Option<f64>, SweepFail> {
    match (phase, frame) {
        (Phase::Cost, Frame::LocalCost { epoch: e, round, cost }) => {
            Ok((e == epoch && round == t as u64).then_some(cost))
            // else: stale frame from an abandoned attempt
        }
        (Phase::Cost, Frame::Decision { epoch: e, .. }) if e < epoch => Ok(None),
        (Phase::Decision, Frame::Decision { epoch: e, round, gain, .. }) => {
            Ok((e == epoch && round == t as u64).then_some(gain))
        }
        (Phase::Decision, Frame::LocalCost { epoch: e, .. }) if e < epoch => Ok(None),
        (_, _) => {
            let what = match phase {
                Phase::Cost => "cost",
                Phase::Decision => "decision",
            };
            Err(SweepFail::Fatal(NetError::Protocol(format!(
                "worker {i} sent an unexpected frame during {what} collection"
            ))))
        }
    }
}

/// How a fleet sweep failed, when it did.
pub(crate) enum SweepFail {
    /// These members' sockets died or their deadlines expired — all
    /// deaths discovered in one sweep, so simultaneous stalls bury
    /// together instead of costing a timeout each.
    Dead(Vec<usize>),
    /// Unrecoverable failure (protocol violation, malformed bytes).
    Fatal(NetError),
}

/// A coordinator's member set over non-blocking sockets: the readiness
/// sweep, coalesced broadcast, deadline, and crash-discovery machinery
/// shared by the flat evented master and the shard-master tier. The
/// protocol scripts stay with their owners; `Fleet` only knows how to
/// move frames and discover deaths.
pub(crate) struct Fleet {
    /// Member connections by id; `None` marks a buried member.
    pub(crate) links: Vec<Option<Conn>>,
    frame_timeout: Duration,
    wheel: TimerWheel,
    idle: IdleWait,
    /// Whether the sockets have been flipped to blocking mode for the
    /// staircase collect; see [`Fleet::enter_staircase`].
    staircase: bool,
}

impl Fleet {
    pub(crate) fn new(links: Vec<Option<Conn>>, frame_timeout: Duration) -> Self {
        Self {
            links,
            frame_timeout,
            wheel: TimerWheel::new(Instant::now()),
            idle: IdleWait::new(),
            staircase: false,
        }
    }

    /// Flips every member socket to blocking mode — permanently — with
    /// `frame_timeout` as both read and write deadline, committing this
    /// fleet to the [`Fleet::collect_blocking`] staircase.
    ///
    /// Doing the mode switch once, here, instead of per collect call is
    /// not a nicety: toggling `O_NONBLOCK` and `SO_RCVTIMEO` around every
    /// phase costs four syscalls per member per collect, which at
    /// N = 4096 across sixteen shard-masters is ~32k syscalls a round —
    /// on a mitigated kernel, tens of milliseconds of pure mode-flipping
    /// stolen from the workers the phase is waiting on. A fleet in
    /// staircase mode must never re-enter the readiness sweep
    /// ([`Fleet::collect`]); `drain` and `shutdown` take blocking-safe
    /// paths instead.
    pub(crate) fn enter_staircase(&mut self) -> Result<(), SweepFail> {
        debug_assert!(
            self.links.iter().flatten().all(|c| !c.is_lossy()),
            "the blocking staircase is a lossless-only path: lossy envelopes need the sweep's \
             retransmission clock"
        );
        for (i, slot) in self.links.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else { continue };
            if conn.stream.set_nonblocking(false).is_err()
                || conn.stream.set_read_timeout(Some(self.frame_timeout)).is_err()
                || conn.stream.set_write_timeout(Some(self.frame_timeout)).is_err()
            {
                return Err(SweepFail::Dead(vec![i]));
            }
        }
        self.staircase = true;
        Ok(())
    }

    /// Run-total wire counters over every live connection.
    pub(crate) fn wire_snapshot(&self) -> WireStats {
        let mut total = WireStats::default();
        for conn in self.links.iter().flatten() {
            total.absorb(&conn.stats());
        }
        total
    }

    pub(crate) fn wire_delta(&self, before: &WireStats) -> WireStats {
        let after = self.wire_snapshot();
        WireStats {
            frames_sent: after.frames_sent - before.frames_sent,
            frames_received: after.frames_received - before.frames_received,
            bytes_sent: after.bytes_sent - before.bytes_sent,
            bytes_received: after.bytes_received - before.bytes_received,
            retransmissions: after.retransmissions - before.retransmissions,
            duplicates: after.duplicates - before.duplicates,
            acks: after.acks - before.acks,
        }
    }

    /// Queues `frame` on every listed connection, encoding once for the
    /// lossless ones; the lossy envelope needs per-connection sequence
    /// numbers, so those re-frame individually.
    pub(crate) fn broadcast(&mut self, frame: &Frame, to: &[usize], now: Instant) {
        let bytes = frame.encode();
        for &i in to {
            let conn = self.links[i].as_mut().expect("active members have connections");
            if conn.is_lossy() {
                conn.queue(frame, now);
            } else {
                conn.codec.queue_raw(&bytes);
            }
        }
    }

    /// Queues one frame on one member's connection.
    pub(crate) fn queue_to(&mut self, i: usize, frame: &Frame, now: Instant) {
        self.links[i].as_mut().expect("active members have connections").queue(frame, now);
    }

    /// Drops the awaiting flag (and cancels the deadline) everywhere —
    /// the cleanup step of any aborted collect.
    pub(crate) fn clear_awaiting(&mut self) {
        for conn in self.links.iter_mut().flatten() {
            if conn.awaiting {
                conn.awaiting = false;
                conn.gen += 1;
            }
        }
    }

    /// Awaits one matching worker frame from every member in
    /// `await_set`, pumping every busy connection each sweep. Deadlines
    /// ride the timer wheel and *all* expiries of a sweep are collected
    /// before aborting, so simultaneous stalls cost one `frame_timeout`
    /// total. Frames tagged with an epoch other than `epoch` (or a round
    /// other than `t`) are stale leftovers of an abandoned attempt and
    /// are filtered, exactly like the blocking master's collect loops.
    pub(crate) fn collect(
        &mut self,
        t: usize,
        epoch: u32,
        phase: Phase,
        await_set: &[usize],
        out: &mut [f64],
        logical: &mut usize,
    ) -> Result<(), SweepFail> {
        debug_assert!(!self.staircase, "a staircase fleet's sockets block; the sweep would hang");
        let now = Instant::now();
        let mut waiting = vec![false; self.links.len()];
        for &i in await_set {
            waiting[i] = true;
            let conn = self.links[i].as_mut().expect("active members have connections");
            conn.gen += 1;
            conn.awaiting = true;
            self.wheel.arm(now + self.frame_timeout, i, conn.gen);
        }
        let mut remaining = await_set.len();
        while remaining > 0 {
            let now = Instant::now();
            let mut progressed = false;
            let mut dead: Vec<usize> = Vec::new();
            for (i, slot) in self.links.iter_mut().enumerate() {
                let Some(conn) = slot.as_mut() else { continue };
                if !(conn.awaiting || conn.busy()) {
                    continue;
                }
                match pump(conn, now) {
                    Ok(p) => progressed |= p,
                    Err(ConnFail::Dead) => {
                        dead.push(i);
                        continue;
                    }
                    Err(ConnFail::Fatal(e)) => return Err(SweepFail::Fatal(e)),
                }
                while waiting[i] {
                    let Some(frame) = conn.inbox.pop_front() else { break };
                    let accepted = phase_value(phase, frame, t, epoch, i)?;
                    if let Some(value) = accepted {
                        out[i] = value;
                        *logical += 1;
                        waiting[i] = false;
                        conn.awaiting = false;
                        conn.gen += 1;
                        remaining -= 1;
                    }
                }
            }
            for timer in self.wheel.expire(now) {
                let expired = self.links[timer.conn()]
                    .as_ref()
                    .is_some_and(|c| c.awaiting && c.gen == timer.gen());
                if expired && !dead.contains(&timer.conn()) {
                    dead.push(timer.conn());
                }
            }
            if !dead.is_empty() {
                dead.sort_unstable();
                dead.dedup();
                self.clear_awaiting();
                return Err(SweepFail::Dead(dead));
            }
            self.idle.pace(progressed);
        }
        Ok(())
    }

    /// The lossless fast path of [`Fleet::collect`]: flush every pending
    /// queue, then take the awaited frames by *sequential blocking reads*
    /// — the staircase — instead of the readiness sweep.
    ///
    /// With no lossy envelopes there are no retransmission timers and no
    /// acks to service, so between a broadcast and the matching collect
    /// the only traffic on the fleet is the awaited frames themselves.
    /// The coordinator can therefore sleep in the kernel on one socket at
    /// a time while arrivals from the others buffer; the phase is a
    /// barrier, so its completion time is unchanged, and what disappears
    /// is the sweep's poll/sleep duty cycle — read syscalls against
    /// empty sockets and timeslices stolen from the very workers the
    /// phase is waiting on. That duty cycle is the flat evented master's
    /// fan-in cost; shedding it at the shard tier is the measured win of
    /// the `shard_scale` experiment.
    ///
    /// The trade is deadline coarsening: each read waits up to
    /// `frame_timeout` from the moment its turn comes (a staircase of
    /// deadlines, not one simultaneous bank), and a stalled early member
    /// delays *discovery* of later frames — never phase completion —
    /// until its timeout fires. Callers that need prompt multi-death
    /// discovery and stall-tolerant heartbeating (the flat evented
    /// master's crash→epoch machinery) must keep the sweep; the shard
    /// tier, where a worker death is fatal by contract, takes the
    /// staircase whenever its fault plan is lossless.
    ///
    /// Requires [`Fleet::enter_staircase`] to have flipped the sockets
    /// to blocking mode first — the deadlines here are the kernel's
    /// `SO_RCVTIMEO`, armed once, not per-call socket reconfiguration.
    pub(crate) fn collect_blocking(
        &mut self,
        t: usize,
        epoch: u32,
        phase: Phase,
        await_set: &[usize],
        out: &mut [f64],
        logical: &mut usize,
    ) -> Result<(), SweepFail> {
        debug_assert!(self.staircase, "collect_blocking requires enter_staircase");
        // Flush everything queued (coordination frames, pins) so every
        // member is computing before the staircase starts sleeping. The
        // sockets block with a write deadline, so a pass that leaves
        // bytes behind means the member stopped reading long enough for
        // both its socket buffer and the deadline to fill: dead.
        for (i, slot) in self.links.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else { continue };
            if conn.busy() {
                match conn.pump_write() {
                    Ok(_) if conn.busy() => return Err(SweepFail::Dead(vec![i])),
                    Ok(_) => {}
                    Err(ConnFail::Dead) => return Err(SweepFail::Dead(vec![i])),
                    Err(ConnFail::Fatal(e)) => return Err(SweepFail::Fatal(e)),
                }
            }
        }
        for &i in await_set {
            let conn = self.links[i].as_mut().expect("active members have connections");
            conn.awaiting = true;
        }
        // Descend the staircase in *reverse* broadcast order. The phase
        // opener was written to member 0 first, so replies arrive in
        // roughly ascending index order — and a blocking read only parks
        // the thread when its socket is still empty. Read in arrival
        // order and every single read parks: two context switches per
        // member per phase, thousands a round across a shard tier.
        // Read in reverse and the first read parks once, on the member
        // whose reply lands last, while everyone else's frames buffer in
        // their sockets; the remaining reads return without sleeping.
        // Stragglers out of order cost one extra park each, nothing
        // more, and the phase still completes at the last arrival.
        let mut failed: Option<SweepFail> = None;
        'staircase: for &i in await_set.iter().rev() {
            let conn = self.links[i].as_mut().expect("active members have connections");
            let mut chunk = [0u8; READ_CHUNK_BYTES];
            while conn.awaiting {
                // Serve whatever is already reassembled before sleeping.
                while let Some(frame) = conn.inbox.pop_front() {
                    match phase_value(phase, frame, t, epoch, i) {
                        Ok(Some(value)) => {
                            out[i] = value;
                            *logical += 1;
                            conn.awaiting = false;
                            conn.gen += 1;
                        }
                        Ok(None) => {} // stale, filtered
                        Err(fail) => {
                            failed = Some(fail);
                            break 'staircase;
                        }
                    }
                    if !conn.awaiting {
                        break;
                    }
                }
                if !conn.awaiting {
                    break;
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        failed = Some(SweepFail::Dead(vec![i]));
                        break 'staircase;
                    }
                    Ok(k) => {
                        conn.codec.ingest(&chunk[..k]);
                        loop {
                            match conn.codec.pop_frame() {
                                Ok(Some(frame)) => conn.inbox.push_back(frame),
                                Ok(None) => break,
                                Err(e) => {
                                    failed = Some(SweepFail::Fatal(NetError::Transport(e.into())));
                                    break 'staircase;
                                }
                            }
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                    {
                        // The staircase deadline: this member stalled.
                        failed = Some(SweepFail::Dead(vec![i]));
                        break 'staircase;
                    }
                    Err(_) => {
                        failed = Some(SweepFail::Dead(vec![i]));
                        break 'staircase;
                    }
                }
            }
        }
        if let Some(fail) = failed {
            self.clear_awaiting();
            return Err(fail);
        }
        Ok(())
    }

    /// Flushes every pending queue and live envelope within one
    /// `frame_timeout`; connections that fail or stall come back as the
    /// dead list. Used after a commit, so the caller maps a non-empty
    /// list onto the round-stands crash branch.
    pub(crate) fn drain(&mut self) -> Result<Vec<usize>, NetError> {
        if self.staircase {
            // Blocking sockets: a read sweep would hang on quiet members,
            // and on a lossless fleet there is nothing inbound to service
            // between phases anyway. Draining is flushing the queued
            // commit frames; the kernel's write deadline turns a member
            // that stopped reading into a timeout, reported as dead.
            let mut dead: Vec<usize> = Vec::new();
            for (i, slot) in self.links.iter_mut().enumerate() {
                let Some(conn) = slot.as_mut() else { continue };
                if !conn.busy() {
                    continue;
                }
                match conn.pump_write() {
                    Ok(_) if conn.busy() => dead.push(i),
                    Ok(_) => {}
                    Err(ConnFail::Dead) => dead.push(i),
                    Err(ConnFail::Fatal(e)) => return Err(e),
                }
            }
            return Ok(dead);
        }
        let until = Instant::now() + self.frame_timeout;
        let mut dead: Vec<usize> = Vec::new();
        loop {
            let now = Instant::now();
            let mut busy_any = false;
            let mut progressed = false;
            for (i, slot) in self.links.iter_mut().enumerate() {
                let Some(conn) = slot.as_mut() else { continue };
                if dead.contains(&i) || !conn.busy() {
                    continue;
                }
                match pump(conn, now) {
                    Ok(p) => progressed |= p,
                    Err(ConnFail::Dead) => {
                        dead.push(i);
                        continue;
                    }
                    Err(ConnFail::Fatal(e)) => return Err(e),
                }
                if conn.busy() {
                    busy_any = true;
                }
            }
            if !busy_any {
                break;
            }
            if now >= until {
                for (i, slot) in self.links.iter().enumerate() {
                    if slot.as_ref().is_some_and(Conn::busy) && !dead.contains(&i) {
                        dead.push(i);
                    }
                }
                break;
            }
            self.idle.pace(progressed);
        }
        dead.sort_unstable();
        Ok(dead)
    }

    /// Orderly end of the run: queues `Shutdown` on every live link,
    /// flushes it, then **lingers** — keeps pumping (and therefore
    /// re-acking retransmitted duplicates) until each peer closes its
    /// socket or `limit` expires. The linger matters under loss: a peer
    /// whose final frame's ack was eaten is still blocked in its
    /// stop-and-wait retransmission schedule when `Shutdown` lands, and
    /// closing its socket mid-schedule would fire a reset into that
    /// send. Peers close as soon as they finish, so the common case is a
    /// handful of sweeps, not the deadline.
    pub(crate) fn shutdown(&mut self, limit: Duration) {
        let now = Instant::now();
        for conn in self.links.iter_mut().flatten() {
            conn.queue(&Frame::Shutdown, now);
        }
        if self.staircase {
            // Flush every goodbye before reaping any EOF, so no peer's
            // close waits behind another's blocking read; then collect
            // the closes, each read bounded by the socket deadline and
            // the whole pass by `limit`. Lossless peers never block in a
            // retransmission schedule, so there is nothing to re-ack.
            for conn in self.links.iter_mut().flatten() {
                let _ = conn.pump_write();
            }
            let until = now + limit;
            let mut chunk = [0u8; READ_CHUNK_BYTES];
            for conn in self.links.iter_mut().flatten() {
                loop {
                    if Instant::now() >= until {
                        return;
                    }
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => break, // the peer's goodbye
                        Ok(_) => {}     // stray bytes; keep reaping
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => break, // deadline or reset: give up on this peer
                    }
                }
            }
            return;
        }
        let until = now + limit;
        let mut open: Vec<bool> = self.links.iter().map(Option::is_some).collect();
        let mut idle = IdleWait::new();
        loop {
            let now = Instant::now();
            if now >= until {
                return;
            }
            let mut progressed = false;
            let mut remaining = false;
            for (i, slot) in self.links.iter_mut().enumerate() {
                if !open[i] {
                    continue;
                }
                let conn = slot.as_mut().expect("open connections exist");
                match pump(conn, now) {
                    Ok(p) => {
                        progressed |= p;
                        remaining = true;
                    }
                    // EOF or error: the peer's goodbye.
                    Err(_) => open[i] = false,
                }
            }
            if !remaining {
                return;
            }
            idle.pace(progressed);
        }
    }

    /// Synchronously drives one connection until its queues drain — the
    /// blocking-send equivalent used on the rare bury/shutdown paths.
    pub(crate) fn settle(conn: &mut Conn, limit: Duration) -> Result<(), ConnFail> {
        let until = Instant::now() + limit;
        let mut idle = IdleWait::new();
        while conn.busy() {
            let now = Instant::now();
            if now >= until {
                return Err(ConnFail::Dead);
            }
            let progressed = pump(conn, now)?;
            idle.pace(progressed);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// `phase_value` is the stale-epoch filter of both collect paths:
    /// frames tagged with an older epoch — leftovers of a round attempt
    /// abandoned by a membership transition — are skipped, never
    /// mis-consumed and never fatal; same-epoch frames of the wrong
    /// phase stay protocol violations.
    #[test]
    fn phase_value_filters_stale_epochs_but_rejects_phase_violations() {
        // Stale epoch, either frame kind, either phase: skipped.
        let stale_cost = Frame::LocalCost { epoch: 0, round: 7, cost: 1.0 };
        assert!(matches!(phase_value(Phase::Cost, stale_cost, 7, 1, 0), Ok(None)));
        let stale_decision = Frame::Decision { epoch: 0, round: 7, share: 0.1, gain: 0.2 };
        assert!(matches!(phase_value(Phase::Cost, stale_decision, 7, 1, 0), Ok(None)));
        let stale_cost = Frame::LocalCost { epoch: 0, round: 7, cost: 1.0 };
        assert!(matches!(phase_value(Phase::Decision, stale_cost, 7, 1, 0), Ok(None)));
        // Stale round at the current epoch: also skipped.
        let replayed = Frame::LocalCost { epoch: 1, round: 6, cost: 1.0 };
        assert!(matches!(phase_value(Phase::Cost, replayed, 7, 1, 0), Ok(None)));
        // The matching frame is consumed.
        let fresh = Frame::LocalCost { epoch: 1, round: 7, cost: 42.0 };
        assert!(matches!(phase_value(Phase::Cost, fresh, 7, 1, 0), Ok(Some(v)) if v == 42.0));
        // A *current*-epoch frame of the wrong phase is a violation,
        // not a stale leftover — the filter must not swallow it.
        let misplaced = Frame::Decision { epoch: 1, round: 7, share: 0.1, gain: 0.2 };
        assert!(matches!(phase_value(Phase::Cost, misplaced, 7, 1, 0), Err(SweepFail::Fatal(_))));
    }

    fn fleet_over_one_socket() -> (Fleet, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let peer = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        let conn = Conn::new(server).expect("conn");
        (Fleet::new(vec![Some(conn)], Duration::from_secs(2)), peer)
    }

    /// Regression: a worker's epoch-0 report arriving *after* the
    /// shard-local epoch bumped to 1 (the worker answered the abandoned
    /// attempt before it saw the `Epoch` frame) must be discarded by the
    /// collect, which then waits for — and takes — the re-reported
    /// epoch-1 value. Exercised on both collect paths.
    #[test]
    fn collect_skips_frames_from_before_a_local_epoch_bump() {
        use std::io::Write as _;
        for staircase in [false, true] {
            let (mut fleet, mut peer) = fleet_over_one_socket();
            if staircase {
                assert!(fleet.enter_staircase().is_ok());
            }
            peer.write_all(&Frame::LocalCost { epoch: 0, round: 7, cost: 1.0 }.encode())
                .expect("stale frame");
            peer.write_all(&Frame::LocalCost { epoch: 1, round: 7, cost: 42.0 }.encode())
                .expect("fresh frame");
            let mut out = [0.0f64];
            let mut logical = 0usize;
            let result = if staircase {
                fleet.collect_blocking(7, 1, Phase::Cost, &[0], &mut out, &mut logical)
            } else {
                fleet.collect(7, 1, Phase::Cost, &[0], &mut out, &mut logical)
            };
            assert!(result.is_ok(), "the stale frame must be skipped, not fatal");
            assert_eq!(out[0], 42.0, "the epoch-1 re-report is the consumed value");
            assert_eq!(logical, 1, "exactly one logical frame per member per phase");
        }
    }
}
