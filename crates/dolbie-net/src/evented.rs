//! The event-driven master: one thread, non-blocking sockets, a
//! level-triggered readiness loop — the scalable replacement for the
//! sequential blocking master in [`crate::master`].
//!
//! The blocking master admits workers one at a time and reads round
//! frames worker-by-worker in id order, so one slow connection serializes
//! the fleet and worst-case round latency is `N × frame_timeout`. Here
//! every socket is non-blocking and the loop sweeps readiness instead:
//! frames are reassembled per connection by the shared
//! [`FrameCodec`], broadcasts encode once
//! and land on every transmit queue as raw bytes, writes batch into as
//! few syscalls as the kernel accepts, and per-connection deadlines ride
//! a hashed timer wheel — so `K` simultaneously stalled workers cost a
//! round one `frame_timeout` total, not `K` of them.
//!
//! ## Connection state machine
//!
//! A connection is **handshaking** (accepted, Hello awaited under a
//! deadline), **admitted** (assigned a worker id, speaking the round
//! protocol, possibly through the lossy envelope), or **dead** (socket
//! error, deadline expiry, or a declared crash — its stats retire into
//! the run totals). A handshake failure of any kind — timeout, garbage
//! bytes, premature close, a non-Hello opener — rejects that socket and
//! keeps listening for the real fleet; it never aborts the run.
//!
//! ## Determinism boundary
//!
//! Readiness order is scheduler noise, so nothing trajectory-relevant may
//! depend on it. The round logic only ever reads completed per-worker
//! values out of id-indexed arrays and reduces them with the engine's own
//! ascending strict-`>` argmax, so any interleaving of frame arrivals
//! produces the same straggler, the same gains vector, and therefore the
//! same bitwise trajectory as the blocking master and the sequential
//! engine. What *is* timing-dependent — in both masters — is when a
//! crash surfaces; the crash→epoch mapping (pre-commit restart vs
//! post-commit stand) is preserved, not the wall-clock instant.

use crate::master::{MasterConfig, NetRunReport};
use crate::transport::{FrameCodec, TransportError, WireStats};
use crate::wire::Frame;
use crate::NetError;
use dolbie_core::{Allocation, Dolbie, LoadBalancer};
use dolbie_simnet::faults::FaultPlan;
use dolbie_simnet::{ProtocolRound, ProtocolTrace};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// How a round attempt ended, when not in a completed record.
enum Abort {
    /// These workers' sockets died or their deadlines expired — all
    /// deaths discovered in one sweep, so simultaneous stalls bury
    /// together instead of costing a timeout each. If the engine had
    /// already committed the round, the record rides along.
    Dead { workers: Vec<usize>, committed: Option<Box<ProtocolRound>> },
    /// Unrecoverable failure (protocol violation, malformed bytes).
    Fatal(NetError),
}

/// Why one connection stopped being usable.
enum ConnFail {
    /// Socket-level death: EOF, reset, write-zero. Maps to a crash.
    Dead,
    /// The peer sent malformed or protocol-violating traffic.
    Fatal(NetError),
}

const WHEEL_SLOTS: usize = 256;
const WHEEL_TICK_MICROS: u128 = 4_000;

#[derive(Debug, Clone, Copy)]
struct Timer {
    at: Instant,
    conn: usize,
    gen: u64,
}

/// A hashed timer wheel: 256 slots of 4 ms. Arming is O(1); expiry
/// drains only the slots the cursor crosses, re-keeping entries armed a
/// full rotation or more ahead. Cancellation is lazy: each connection
/// carries a generation counter and a fired timer whose generation is
/// stale is simply discarded.
#[derive(Debug)]
struct TimerWheel {
    slots: Vec<Vec<Timer>>,
    epoch: Instant,
    tick: u64,
}

impl TimerWheel {
    fn new(now: Instant) -> Self {
        Self { slots: vec![Vec::new(); WHEEL_SLOTS], epoch: now, tick: 0 }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        (at.saturating_duration_since(self.epoch).as_micros() / WHEEL_TICK_MICROS) as u64
    }

    fn arm(&mut self, at: Instant, conn: usize, gen: u64) {
        let tick = self.tick_of(at).max(self.tick);
        self.slots[(tick as usize) % WHEEL_SLOTS].push(Timer { at, conn, gen });
    }

    /// Drains every timer due by `now`, sorted by (deadline, connection)
    /// so expiry order never depends on slot hashing.
    fn expire(&mut self, now: Instant) -> Vec<Timer> {
        let now_tick = self.tick_of(now);
        if now_tick < self.tick {
            return Vec::new();
        }
        let mut due = Vec::new();
        // Past a full rotation every slot is visited exactly once.
        let span = (now_tick - self.tick + 1).min(WHEEL_SLOTS as u64);
        for step in 0..span {
            let slot = ((self.tick + step) as usize) % WHEEL_SLOTS;
            let mut keep = Vec::new();
            for timer in self.slots[slot].drain(..) {
                if timer.at <= now {
                    due.push(timer);
                } else {
                    keep.push(timer);
                }
            }
            self.slots[slot] = keep;
        }
        self.tick = now_tick;
        due.sort_by(|a, b| a.at.cmp(&b.at).then(a.conn.cmp(&b.conn)));
        due
    }
}

/// Adaptive idle pacing: spin-yield while traffic flows, back off to
/// brief sleeps once the loop goes quiet, reset on any progress.
struct IdleWait {
    streak: u32,
}

impl IdleWait {
    fn new() -> Self {
        Self { streak: 0 }
    }

    fn pace(&mut self, progressed: bool) {
        if progressed {
            self.streak = 0;
            return;
        }
        self.streak += 1;
        if self.streak < 8 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// One stop-and-wait envelope in flight on a lossy connection.
#[derive(Debug)]
struct Inflight {
    seq: u64,
    frame: Frame,
    attempt: usize,
    rto: f64,
    at: Instant,
}

/// Non-blocking counterpart of the blocking `Link`'s lossy state: the
/// same hash-keyed drop/duplicate/ack-drop decisions and the same
/// stop-and-wait discipline (one envelope in flight per direction —
/// pipelining would break the receiver's high-water-mark dedup), driven
/// by the sweep loop instead of blocking waits.
#[derive(Debug)]
struct NbLossy {
    plan: FaultPlan,
    self_code: u64,
    peer_code: u64,
    next_seq: u64,
    last_delivered: Option<u64>,
    outbox: VecDeque<Frame>,
    inflight: Option<Inflight>,
    retransmissions: u64,
    duplicates: u64,
    acks: u64,
}

/// One admitted (or handshaking) connection: a non-blocking socket, the
/// shared reassembly/transmit codec, the optional lossy envelope, and an
/// inbox of fully decoded protocol frames.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    codec: FrameCodec,
    lossy: Option<NbLossy>,
    inbox: VecDeque<Frame>,
    /// Deadline generation; bumping it lazily cancels armed timers.
    gen: u64,
    /// Whether a collect phase currently awaits a frame from this peer.
    awaiting: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            codec: FrameCodec::new(),
            lossy: None,
            inbox: VecDeque::new(),
            gen: 0,
            awaiting: false,
        })
    }

    fn install_lossy(&mut self, plan: &FaultPlan, self_code: u64, peer_code: u64) {
        if plan.is_lossless() {
            return;
        }
        self.lossy = Some(NbLossy {
            plan: plan.clone(),
            self_code,
            peer_code,
            next_seq: 0,
            last_delivered: None,
            outbox: VecDeque::new(),
            inflight: None,
            retransmissions: 0,
            duplicates: 0,
            acks: 0,
        });
    }

    /// Whether this connection still has outbound work: unsent bytes or
    /// a live lossy envelope.
    fn busy(&self) -> bool {
        self.codec.has_tx()
            || self.lossy.as_ref().is_some_and(|l| l.inflight.is_some() || !l.outbox.is_empty())
    }

    /// Queues one protocol frame, through the lossy envelope when one is
    /// installed.
    fn queue(&mut self, frame: &Frame, now: Instant) {
        if self.lossy.is_some() {
            self.lossy.as_mut().expect("checked above").outbox.push_back(frame.clone());
            self.lossy_kick(now);
        } else {
            self.codec.queue(frame);
        }
    }

    /// Starts the next queued envelope if nothing is in flight.
    fn lossy_kick(&mut self, now: Instant) {
        loop {
            let Some(state) = self.lossy.as_mut() else { return };
            if state.inflight.is_some() {
                return;
            }
            let Some(frame) = state.outbox.pop_front() else { return };
            let seq = state.next_seq;
            state.next_seq += 1;
            let rto = state.plan.retry.ack_timeout;
            state.inflight = Some(Inflight { seq, frame, attempt: 0, rto, at: now });
            if !self.lossy_transmit(now) {
                return;
            }
            // The forced final attempt completed immediately; chain on.
        }
    }

    /// Writes (or hash-drops) the current attempt. Returns whether the
    /// envelope completed (the forced final attempt was written).
    fn lossy_transmit(&mut self, now: Instant) -> bool {
        let Self { codec, lossy, .. } = self;
        let state = lossy.as_mut().expect("lossy mode");
        let inflight = state.inflight.as_mut().expect("an attempt in flight");
        let attempt = inflight.attempt;
        let forced = attempt + 1 == state.plan.retry.max_attempts;
        let delivered = forced
            || !state.plan.wire_drop(inflight.seq, state.self_code, state.peer_code, attempt);
        if delivered {
            let data = Frame::Data {
                seq: inflight.seq,
                attempt: attempt as u32,
                inner: Box::new(inflight.frame.clone()),
            };
            codec.queue(&data);
            if state.plan.wire_duplicate(inflight.seq, state.self_code, state.peer_code, attempt) {
                codec.queue(&data);
                state.duplicates += 1;
            }
        }
        inflight.at = now;
        if forced {
            // TCP delivers what we wrote; nothing left to await.
            state.inflight = None;
        }
        forced
    }

    /// Drives the retransmission clock: the same
    /// `ack_timeout · backoff^k` schedule as the blocking link, checked
    /// against wall time each sweep instead of slept through.
    fn lossy_poll(&mut self, now: Instant) {
        if self.lossy.is_none() {
            return;
        }
        self.lossy_kick(now);
        let Some(state) = self.lossy.as_mut() else { return };
        let Some(inflight) = state.inflight.as_mut() else { return };
        if now.saturating_duration_since(inflight.at) < Duration::from_secs_f64(inflight.rto) {
            return;
        }
        inflight.attempt += 1;
        inflight.rto *= state.plan.retry.backoff;
        state.retransmissions += 1;
        if self.lossy_transmit(now) {
            self.lossy_kick(now);
        }
    }

    /// Receiver-side routing of one decoded frame: straight to the inbox
    /// on lossless connections; ack-or-suppress, dedup, then inbox on
    /// lossy ones.
    fn route(&mut self, frame: Frame, now: Instant) -> Result<(), ConnFail> {
        let Self { codec, lossy, inbox, .. } = self;
        let Some(state) = lossy.as_mut() else {
            inbox.push_back(frame);
            return Ok(());
        };
        match frame {
            Frame::Data { seq, attempt, inner } => {
                // Ack fate is keyed on the DATA direction (peer → self),
                // so the sender reaches the same verdict.
                let suppressed = state.plan.wire_ack_drop(
                    seq,
                    state.peer_code,
                    state.self_code,
                    attempt as usize,
                );
                if !suppressed {
                    codec.queue(&Frame::Ack { seq });
                    state.acks += 1;
                }
                // Per-direction seqs are strictly increasing; anything at
                // or below the high-water mark is a copy already delivered.
                if state.last_delivered.is_none_or(|last| seq > last) {
                    state.last_delivered = Some(seq);
                    inbox.push_back(*inner);
                }
                Ok(())
            }
            Frame::Ack { seq } => {
                if state.inflight.as_ref().is_some_and(|i| i.seq == seq) {
                    state.inflight = None;
                    self.lossy_kick(now);
                }
                Ok(())
            }
            _ => Err(ConnFail::Fatal(NetError::Transport(TransportError::Protocol(
                "raw frame on a lossy link",
            )))),
        }
    }

    /// Drains whatever the socket has buffered and parses complete
    /// frames into the inbox. Returns whether any bytes arrived.
    fn pump_read(&mut self, now: Instant) -> Result<bool, ConnFail> {
        let mut progressed = false;
        let mut chunk = [0u8; 16384];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ConnFail::Dead),
                Ok(k) => {
                    self.codec.ingest(&chunk[..k]);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Err(ConnFail::Dead),
            }
        }
        loop {
            match self.codec.pop_frame() {
                Ok(Some(frame)) => self.route(frame, now)?,
                Ok(None) => break,
                Err(e) => return Err(ConnFail::Fatal(NetError::Transport(e.into()))),
            }
        }
        Ok(progressed)
    }

    /// Writes as much of the transmit queue as the socket accepts.
    fn pump_write(&mut self) -> Result<bool, ConnFail> {
        let mut progressed = false;
        while self.codec.has_tx() {
            match self.stream.write(self.codec.pending_tx()) {
                Ok(0) => return Err(ConnFail::Dead),
                Ok(k) => {
                    self.codec.advance_tx(k);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Err(ConnFail::Dead),
            }
        }
        Ok(progressed)
    }

    /// Combined socket and envelope counters.
    fn stats(&self) -> WireStats {
        let mut stats = self.codec.stats();
        if let Some(state) = &self.lossy {
            stats.retransmissions = state.retransmissions;
            stats.duplicates = state.duplicates;
            stats.acks = state.acks;
        }
        stats
    }
}

/// One full readiness pass over a connection: retransmission clock,
/// write, read, then clock again (an ack may have freed the envelope).
fn pump(conn: &mut Conn, now: Instant) -> Result<bool, ConnFail> {
    conn.lossy_poll(now);
    let wrote = conn.pump_write()?;
    let read = conn.pump_read(now)?;
    conn.lossy_poll(now);
    let flushed = conn.pump_write()?;
    Ok(wrote | read | flushed)
}

/// Concurrent admission: every pending socket handshakes under its own
/// deadline, ids assigned in Hello-completion order. Rogue sockets
/// (timeout, garbage, close, non-Hello opener) are rejected while the
/// listener keeps accepting, so neither a rogue nor a slow peer stalls
/// or kills the fleet.
fn admit(
    listener: &TcpListener,
    cfg: &MasterConfig,
    engine: &Dolbie,
) -> Result<Vec<Option<Conn>>, NetError> {
    let n = cfg.num_workers;
    let mut wheel = TimerWheel::new(Instant::now());
    let mut idle = IdleWait::new();
    let mut candidates: Vec<Option<Conn>> = Vec::new();
    let mut admitted: Vec<Option<Conn>> = (0..n).map(|_| None).collect();
    let mut next_id = 0usize;
    while next_id < n {
        let now = Instant::now();
        let mut progressed = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if let Ok(mut conn) = Conn::new(stream) {
                        conn.gen += 1;
                        let idx = candidates.len();
                        wheel.arm(now + cfg.frame_timeout, idx, conn.gen);
                        candidates.push(Some(conn));
                        progressed = true;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(TransportError::from(e).into()),
            }
        }
        for slot in candidates.iter_mut() {
            if next_id >= n {
                break;
            }
            let Some(conn) = slot.as_mut() else { continue };
            match conn.pump_read(now) {
                Ok(p) => progressed |= p,
                Err(_) => {
                    // Rejected: dead socket or undecodable bytes.
                    *slot = None;
                    continue;
                }
            }
            match conn.inbox.pop_front() {
                None => {}
                Some(Frame::Hello { .. }) => {
                    let mut conn = slot.take().expect("candidate present");
                    let worker_id = next_id;
                    next_id += 1;
                    conn.queue(
                        &Frame::Welcome {
                            worker_id: worker_id as u32,
                            num_workers: n as u32,
                            rounds: cfg.rounds as u64,
                            env: cfg.env,
                            initial_share: engine.allocation().share(worker_id),
                            drop_probability: cfg.fault.drop_probability,
                            duplicate_probability: cfg.fault.duplicate_probability,
                            fault_seed: cfg.fault.seed,
                        },
                        now,
                    );
                    // The handshake precedes the envelope; faults start
                    // with the first round frame (like the blocking side).
                    conn.install_lossy(&cfg.fault, 0, worker_id as u64 + 1);
                    // Write errors surface on the first round pump.
                    let _ = conn.pump_write();
                    conn.gen += 1; // cancels the Hello deadline
                    admitted[worker_id] = Some(conn);
                    progressed = true;
                }
                // A well-formed but out-of-protocol opener: rejected.
                Some(_) => *slot = None,
            }
        }
        for timer in wheel.expire(now) {
            let stale = candidates
                .get(timer.conn)
                .and_then(|c| c.as_ref())
                .is_some_and(|c| c.gen == timer.gen);
            if stale {
                // Hello never arrived within the deadline: rejected.
                candidates[timer.conn] = None;
            }
        }
        idle.pace(progressed);
    }
    Ok(admitted)
}

/// Which frame a collect phase awaits.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Cost,
    Decision,
}

/// The event-driven master's run state.
struct EventMaster<'a> {
    cfg: &'a MasterConfig,
    links: Vec<Option<Conn>>,
    members: Vec<bool>,
    engine: Dolbie,
    epoch: u32,
    retired: WireStats,
    wheel: TimerWheel,
    idle: IdleWait,
    started: Instant,
}

impl EventMaster<'_> {
    fn wire_snapshot(&self) -> WireStats {
        let mut total = WireStats::default();
        for conn in self.links.iter().flatten() {
            total.absorb(&conn.stats());
        }
        total
    }

    fn wire_delta(&self, before: &WireStats) -> WireStats {
        let after = self.wire_snapshot();
        WireStats {
            frames_sent: after.frames_sent - before.frames_sent,
            frames_received: after.frames_received - before.frames_received,
            bytes_sent: after.bytes_sent - before.bytes_sent,
            bytes_received: after.bytes_received - before.bytes_received,
            retransmissions: after.retransmissions - before.retransmissions,
            duplicates: after.duplicates - before.duplicates,
            acks: after.acks - before.acks,
        }
    }

    /// Queues `frame` on every listed connection, encoding once for the
    /// lossless ones; the lossy envelope needs per-connection sequence
    /// numbers, so those re-frame individually.
    fn broadcast(&mut self, frame: &Frame, to: &[usize], now: Instant) {
        let bytes = frame.encode();
        for &i in to {
            let conn = self.links[i].as_mut().expect("active workers have connections");
            if conn.lossy.is_some() {
                conn.queue(frame, now);
            } else {
                conn.codec.queue_raw(&bytes);
            }
        }
    }

    /// Drops the awaiting flag (and cancels the deadline) everywhere —
    /// the cleanup step of any aborted collect.
    fn clear_awaiting(&mut self) {
        for conn in self.links.iter_mut().flatten() {
            if conn.awaiting {
                conn.awaiting = false;
                conn.gen += 1;
            }
        }
    }

    /// Awaits one matching frame from every worker in `await_set`,
    /// pumping every busy connection each sweep. Deadlines ride the
    /// timer wheel and *all* expiries of a sweep are collected before
    /// aborting, so simultaneous stalls cost one `frame_timeout` total.
    fn collect(
        &mut self,
        t: usize,
        phase: Phase,
        await_set: &[usize],
        out: &mut [f64],
        logical: &mut usize,
    ) -> Result<(), Abort> {
        let now = Instant::now();
        let mut waiting = vec![false; self.links.len()];
        for &i in await_set {
            waiting[i] = true;
            let conn = self.links[i].as_mut().expect("active workers have connections");
            conn.gen += 1;
            conn.awaiting = true;
            self.wheel.arm(now + self.cfg.frame_timeout, i, conn.gen);
        }
        let mut remaining = await_set.len();
        while remaining > 0 {
            let now = Instant::now();
            let mut progressed = false;
            let mut dead: Vec<usize> = Vec::new();
            for (i, slot) in self.links.iter_mut().enumerate() {
                let Some(conn) = slot.as_mut() else { continue };
                if !(conn.awaiting || conn.busy()) {
                    continue;
                }
                match pump(conn, now) {
                    Ok(p) => progressed |= p,
                    Err(ConnFail::Dead) => {
                        dead.push(i);
                        continue;
                    }
                    Err(ConnFail::Fatal(e)) => return Err(Abort::Fatal(e)),
                }
                while waiting[i] {
                    let Some(frame) = conn.inbox.pop_front() else { break };
                    let accepted = match (phase, frame) {
                        (Phase::Cost, Frame::LocalCost { epoch: e, round, cost }) => {
                            (e == self.epoch && round == t as u64).then_some(cost)
                            // else: stale frame from an abandoned attempt
                        }
                        (Phase::Cost, Frame::Decision { epoch: e, .. }) if e < self.epoch => None,
                        (Phase::Decision, Frame::Decision { epoch: e, round, gain, .. }) => {
                            (e == self.epoch && round == t as u64).then_some(gain)
                        }
                        (Phase::Decision, Frame::LocalCost { epoch: e, .. }) if e < self.epoch => {
                            None
                        }
                        (_, _) => {
                            let what = match phase {
                                Phase::Cost => "cost",
                                Phase::Decision => "decision",
                            };
                            return Err(Abort::Fatal(NetError::Protocol(format!(
                                "worker {i} sent an unexpected frame during {what} collection"
                            ))));
                        }
                    };
                    if let Some(value) = accepted {
                        out[i] = value;
                        *logical += 1;
                        waiting[i] = false;
                        conn.awaiting = false;
                        conn.gen += 1;
                        remaining -= 1;
                    }
                }
            }
            for timer in self.wheel.expire(now) {
                let expired = self.links[timer.conn]
                    .as_ref()
                    .is_some_and(|c| c.awaiting && c.gen == timer.gen);
                if expired && !dead.contains(&timer.conn) {
                    dead.push(timer.conn);
                }
            }
            if !dead.is_empty() {
                dead.sort_unstable();
                dead.dedup();
                self.clear_awaiting();
                return Err(Abort::Dead { workers: dead, committed: None });
            }
            self.idle.pace(progressed);
        }
        Ok(())
    }

    /// Flushes every pending queue and live envelope within one
    /// `frame_timeout`; connections that fail or stall come back as the
    /// dead list. Used after the engine commits, so the caller maps a
    /// non-empty list onto the round-stands crash branch.
    fn drain(&mut self) -> Result<Vec<usize>, Abort> {
        let until = Instant::now() + self.cfg.frame_timeout;
        let mut dead: Vec<usize> = Vec::new();
        loop {
            let now = Instant::now();
            let mut busy_any = false;
            let mut progressed = false;
            for (i, slot) in self.links.iter_mut().enumerate() {
                let Some(conn) = slot.as_mut() else { continue };
                if dead.contains(&i) || !conn.busy() {
                    continue;
                }
                match pump(conn, now) {
                    Ok(p) => progressed |= p,
                    Err(ConnFail::Dead) => {
                        dead.push(i);
                        continue;
                    }
                    Err(ConnFail::Fatal(e)) => return Err(Abort::Fatal(e)),
                }
                if conn.busy() {
                    busy_any = true;
                }
            }
            if !busy_any {
                break;
            }
            if now >= until {
                for (i, slot) in self.links.iter().enumerate() {
                    if slot.as_ref().is_some_and(Conn::busy) && !dead.contains(&i) {
                        dead.push(i);
                    }
                }
                break;
            }
            self.idle.pace(progressed);
        }
        dead.sort_unstable();
        Ok(dead)
    }

    /// One attempt at round `t` under the current epoch — the same
    /// protocol script as the blocking master, phrased as broadcasts and
    /// sweeps instead of per-worker blocking calls.
    fn run_round(&mut self, t: usize) -> Result<ProtocolRound, Abort> {
        let n = self.members.len();
        let active: Vec<usize> = (0..n).filter(|&i| self.members[i]).collect();
        let allocation = self.engine.allocation().clone();
        let before = self.wire_snapshot();

        // Barrier: every active worker starts round t under this epoch.
        let start = Frame::RoundStart { epoch: self.epoch, round: t as u64 };
        self.broadcast(&start, &active, Instant::now());
        let mut logical = active.len();

        // Lines 9–11: collect local costs, filtering stale pre-epoch frames.
        let mut local_costs = vec![0.0f64; n];
        self.collect(t, Phase::Cost, &active, &mut local_costs, &mut logical)?;
        let compute_finished = self.started.elapsed().as_secs_f64();

        // Straggler: ascending argmax over the active members, strict `>`
        // — the same tie-breaking as the engine and the blocking master.
        let mut global_cost = f64::MIN;
        let mut straggler = active[0];
        for &i in &active {
            if local_costs[i] > global_cost {
                global_cost = local_costs[i];
                straggler = i;
            }
        }

        // Line 12: the coordination scalars. All non-stragglers share one
        // frame, so it encodes once for the whole fleet.
        let alpha = self.engine.alpha();
        let others: Vec<usize> = active.iter().copied().filter(|&i| i != straggler).collect();
        let shared =
            Frame::Coordination { round: t as u64, global_cost, alpha, is_straggler: false };
        let now = Instant::now();
        self.broadcast(&shared, &others, now);
        let pin = Frame::Coordination { round: t as u64, global_cost, alpha, is_straggler: true };
        self.links[straggler].as_mut().expect("straggler is active").queue(&pin, now);
        logical += active.len();

        // Lines 13–14: collect the non-stragglers' reported gains.
        let mut gains = vec![0.0f64; n];
        self.collect(t, Phase::Decision, &others, &mut gains, &mut logical)?;

        // The engine commits the round — from here the round stands even
        // if a delivery below discovers a death.
        let outcome = self.engine.observe_reported(straggler, &gains);

        let record = |master: &Self, logical: usize, control_finished: f64| -> ProtocolRound {
            let wire = master.wire_delta(&before);
            ProtocolRound {
                round: t,
                allocation: allocation.clone(),
                local_costs: local_costs.clone(),
                global_cost,
                straggler,
                messages: logical,
                bytes: (wire.bytes_sent + wire.bytes_received) as usize,
                retries: wire.retransmissions as usize,
                acks: wire.acks as usize,
                duplicates: wire.duplicates as usize,
                compute_finished,
                control_finished,
                active: master.members.clone(),
                alpha: master.engine.alpha(),
            }
        };

        // The rare simplex-guard rescale: non-stragglers replay
        // `x = x_old + gain · scale`.
        if let Some(scale) = outcome.rescale {
            self.broadcast(&Frame::Adjust { round: t as u64, scale }, &others, Instant::now());
            logical += others.len();
        }

        // Line 15: the straggler's pinned share.
        let assignment = Frame::Assignment { round: t as u64, share: outcome.straggler_share };
        self.links[straggler]
            .as_mut()
            .expect("straggler is active")
            .queue(&assignment, Instant::now());
        logical += 1;

        // Deliver the commit: the round's wire accounting closes once the
        // queues drain; a death discovered here maps to round-stands.
        let dead = self.drain()?;
        let committed = record(self, logical, self.started.elapsed().as_secs_f64());
        if !dead.is_empty() {
            return Err(Abort::Dead { workers: dead, committed: Some(Box::new(committed)) });
        }
        Ok(committed)
    }

    /// Synchronously drives one connection until its queues drain — the
    /// blocking-send equivalent used on the rare bury/shutdown paths.
    fn settle(conn: &mut Conn, limit: Duration) -> Result<(), ConnFail> {
        let until = Instant::now() + limit;
        let mut idle = IdleWait::new();
        while conn.busy() {
            let now = Instant::now();
            if now >= until {
                return Err(ConnFail::Dead);
            }
            let progressed = pump(conn, now)?;
            idle.pace(progressed);
        }
        Ok(())
    }

    /// Declares `worker` dead, crosses a membership epoch, and announces
    /// it to the survivors — cascading if an announcement discovers
    /// further deaths. Mirrors the blocking master's bury exactly.
    fn bury(&mut self, worker: usize, next_round: usize) -> Result<(), NetError> {
        let mut pending = vec![worker];
        while let Some(dead) = pending.pop() {
            if !self.members[dead] {
                continue;
            }
            self.members[dead] = false;
            if let Some(conn) = self.links[dead].take() {
                self.retired.absorb(&conn.stats());
            }
            if !self.members.iter().any(|&m| m) {
                return Err(NetError::Protocol("every worker has died".into()));
            }
            self.engine.apply_membership(&self.members);
            self.epoch += 1;
            let mask = self.members.clone();
            for i in 0..self.links.len() {
                if !self.members[i] {
                    continue;
                }
                let frame = Frame::Epoch {
                    epoch: self.epoch,
                    round: next_round as u64,
                    share: self.engine.allocation().share(i),
                    members: mask.clone(),
                };
                let conn = self.links[i].as_mut().expect("members have connections");
                conn.queue(&frame, Instant::now());
                if Self::settle(conn, self.cfg.frame_timeout).is_err() {
                    pending.push(i);
                }
            }
        }
        Ok(())
    }
}

/// Accepts `cfg.num_workers` connections on `listener`, runs Algorithm 1
/// to the horizon under the event-driven readiness loop, and shuts the
/// fleet down. The report's trajectory is bitwise identical to
/// [`run_master`](crate::master::run_master) and to the sequential
/// engine; only wall-clock scaling differs.
///
/// # Panics
///
/// Panics if the configuration names an empty fleet or a zero horizon.
pub fn run_master_evented(
    listener: &TcpListener,
    cfg: &MasterConfig,
) -> Result<NetRunReport, NetError> {
    assert!(cfg.num_workers > 0, "at least one worker required");
    assert!(cfg.rounds > 0, "at least one round required");
    listener.set_nonblocking(true).map_err(TransportError::from)?;
    let result = drive(listener, cfg);
    let _ = listener.set_nonblocking(false);
    result
}

fn drive(listener: &TcpListener, cfg: &MasterConfig) -> Result<NetRunReport, NetError> {
    let n = cfg.num_workers;
    let engine = Dolbie::with_config(Allocation::uniform(n), cfg.dolbie);
    let links = admit(listener, cfg, &engine)?;
    let mut master = EventMaster {
        cfg,
        links,
        members: vec![true; n],
        engine,
        epoch: 0,
        retired: WireStats::default(),
        wheel: TimerWheel::new(Instant::now()),
        idle: IdleWait::new(),
        started: Instant::now(),
    };
    let mut records: Vec<ProtocolRound> = Vec::with_capacity(cfg.rounds);
    let mut t = 0;
    while t < cfg.rounds {
        match master.run_round(t) {
            Ok(record) => {
                records.push(record);
                t += 1;
            }
            Err(Abort::Fatal(e)) => return Err(e),
            Err(Abort::Dead { workers, committed }) => {
                master.clear_awaiting();
                if let Some(record) = committed {
                    // The engine had committed before the death surfaced:
                    // the round stands and the run continues at t + 1.
                    records.push(*record);
                    t += 1;
                }
                for worker in workers {
                    master.bury(worker, t)?;
                }
            }
        }
    }

    // Orderly shutdown; a worker dying at the very end is not an error.
    for conn in master.links.iter_mut().flatten() {
        conn.queue(&Frame::Shutdown, Instant::now());
        let _ = EventMaster::settle(conn, master.cfg.frame_timeout);
    }
    let mut wire = master.retired;
    for conn in master.links.iter().flatten() {
        wire.absorb(&conn.stats());
    }
    Ok(NetRunReport {
        trace: ProtocolTrace { architecture: "tcp-master-worker-evented", rounds: records },
        final_allocation: master.engine.allocation().clone(),
        epochs: master.epoch,
        members: master.members,
        wire,
        wall_clock: master.started.elapsed().as_secs_f64(),
    })
}
