//! The event-driven master: one thread, non-blocking sockets, a
//! level-triggered readiness loop — the scalable replacement for the
//! sequential blocking master in [`crate::master`].
//!
//! The blocking master admits workers one at a time and reads round
//! frames worker-by-worker in id order, so one slow connection serializes
//! the fleet and worst-case round latency is `N × frame_timeout`. Here
//! every socket is non-blocking and the loop sweeps readiness instead:
//! frames are reassembled per connection by the shared
//! [`FrameCodec`](crate::transport::FrameCodec), broadcasts encode once
//! and land on every transmit queue as raw bytes, writes batch into as
//! few syscalls as the kernel accepts, and per-connection deadlines ride
//! a hashed timer wheel — so `K` simultaneously stalled workers cost a
//! round one `frame_timeout` total, not `K` of them. The sweep machinery
//! itself (connections, pumps, deadlines, broadcast, crash discovery)
//! lives in `crate::fleet`, shared with the shard-master tier; this
//! module owns only the flat master's protocol script.
//!
//! ## Connection state machine
//!
//! A connection is **handshaking** (accepted, Hello awaited under a
//! deadline — see `crate::handshake`), **admitted** (assigned a worker
//! id, speaking the round protocol, possibly through the lossy
//! envelope), or **dead** (socket error, deadline expiry, or a declared
//! crash — its stats retire into the run totals). A handshake failure of
//! any kind — timeout, garbage bytes, premature close, a non-Hello
//! opener — rejects that socket and keeps listening for the real fleet;
//! it never aborts the run.
//!
//! ## Determinism boundary
//!
//! Readiness order is scheduler noise, so nothing trajectory-relevant may
//! depend on it. The round logic only ever reads completed per-worker
//! values out of id-indexed arrays and reduces them with the engine's own
//! ascending strict-`>` argmax, so any interleaving of frame arrivals
//! produces the same straggler, the same gains vector, and therefore the
//! same bitwise trajectory as the blocking master and the sequential
//! engine. What *is* timing-dependent — in both masters — is when a
//! crash surfaces; the crash→epoch mapping (pre-commit restart vs
//! post-commit stand) is preserved, not the wall-clock instant.

use crate::fleet::{Fleet, Phase, SweepFail};
use crate::handshake::{admit_concurrent, welcome_frame};
use crate::master::{MasterConfig, NetRunReport};
use crate::transport::{TransportError, WireStats};
use crate::wire::Frame;
use crate::NetError;
use dolbie_core::{Allocation, Dolbie, LoadBalancer};
use dolbie_simnet::{ProtocolRound, ProtocolTrace};
use std::net::TcpListener;
use std::time::Instant;

/// How a round attempt ended, when not in a completed record.
enum Abort {
    /// These workers' sockets died or their deadlines expired — all
    /// deaths discovered in one sweep, so simultaneous stalls bury
    /// together instead of costing a timeout each. If the engine had
    /// already committed the round, the record rides along.
    Dead { workers: Vec<usize>, committed: Option<Box<ProtocolRound>> },
    /// Unrecoverable failure (protocol violation, malformed bytes).
    Fatal(NetError),
}

impl From<SweepFail> for Abort {
    fn from(fail: SweepFail) -> Self {
        match fail {
            SweepFail::Dead(workers) => Self::Dead { workers, committed: None },
            SweepFail::Fatal(e) => Self::Fatal(e),
        }
    }
}

/// The event-driven master's run state.
struct EventMaster<'a> {
    cfg: &'a MasterConfig,
    fleet: Fleet,
    members: Vec<bool>,
    engine: Dolbie,
    epoch: u32,
    retired: WireStats,
    started: Instant,
}

impl EventMaster<'_> {
    /// One attempt at round `t` under the current epoch — the same
    /// protocol script as the blocking master, phrased as broadcasts and
    /// sweeps instead of per-worker blocking calls.
    fn run_round(&mut self, t: usize) -> Result<ProtocolRound, Abort> {
        let n = self.members.len();
        let active: Vec<usize> = (0..n).filter(|&i| self.members[i]).collect();
        let allocation = self.engine.allocation().clone();
        let before = self.fleet.wire_snapshot();

        // Barrier: every active worker starts round t under this epoch.
        let start = Frame::RoundStart { epoch: self.epoch, round: t as u64 };
        self.fleet.broadcast(&start, &active, Instant::now());
        let mut logical = active.len();

        // Lines 9–11: collect local costs, filtering stale pre-epoch frames.
        let mut local_costs = vec![0.0f64; n];
        self.fleet.collect(t, self.epoch, Phase::Cost, &active, &mut local_costs, &mut logical)?;
        let compute_finished = self.started.elapsed().as_secs_f64();

        // Straggler: ascending argmax over the active members, strict `>`
        // — the same tie-breaking as the engine and the blocking master.
        let mut global_cost = f64::MIN;
        let mut straggler = active[0];
        for &i in &active {
            if local_costs[i] > global_cost {
                global_cost = local_costs[i];
                straggler = i;
            }
        }

        // Line 12: the coordination scalars. All non-stragglers share one
        // frame, so it encodes once for the whole fleet.
        let alpha = self.engine.alpha();
        let others: Vec<usize> = active.iter().copied().filter(|&i| i != straggler).collect();
        let shared =
            Frame::Coordination { round: t as u64, global_cost, alpha, is_straggler: false };
        let now = Instant::now();
        self.fleet.broadcast(&shared, &others, now);
        let pin = Frame::Coordination { round: t as u64, global_cost, alpha, is_straggler: true };
        self.fleet.queue_to(straggler, &pin, now);
        logical += active.len();

        // Lines 13–14: collect the non-stragglers' reported gains.
        let mut gains = vec![0.0f64; n];
        self.fleet.collect(t, self.epoch, Phase::Decision, &others, &mut gains, &mut logical)?;

        // The engine commits the round — from here the round stands even
        // if a delivery below discovers a death.
        let outcome = self.engine.observe_reported(straggler, &gains);

        let record = |master: &Self, logical: usize, control_finished: f64| -> ProtocolRound {
            let wire = master.fleet.wire_delta(&before);
            ProtocolRound {
                round: t,
                allocation: allocation.clone(),
                local_costs: local_costs.clone(),
                global_cost,
                straggler,
                messages: logical,
                bytes: (wire.bytes_sent + wire.bytes_received) as usize,
                retries: wire.retransmissions as usize,
                acks: wire.acks as usize,
                duplicates: wire.duplicates as usize,
                compute_finished,
                control_finished,
                active: master.members.clone(),
                alpha: master.engine.alpha(),
            }
        };

        // The rare simplex-guard rescale: non-stragglers replay
        // `x = x_old + gain · scale`.
        if let Some(scale) = outcome.rescale {
            self.fleet.broadcast(
                &Frame::Adjust { round: t as u64, scale },
                &others,
                Instant::now(),
            );
            logical += others.len();
        }

        // Line 15: the straggler's pinned share.
        let assignment = Frame::Assignment { round: t as u64, share: outcome.straggler_share };
        self.fleet.queue_to(straggler, &assignment, Instant::now());
        logical += 1;

        // Deliver the commit: the round's wire accounting closes once the
        // queues drain; a death discovered here maps to round-stands.
        let dead = self.fleet.drain().map_err(Abort::Fatal)?;
        let committed = record(self, logical, self.started.elapsed().as_secs_f64());
        if !dead.is_empty() {
            return Err(Abort::Dead { workers: dead, committed: Some(Box::new(committed)) });
        }
        Ok(committed)
    }

    /// Declares `worker` dead, crosses a membership epoch, and announces
    /// it to the survivors — cascading if an announcement discovers
    /// further deaths. Mirrors the blocking master's bury exactly.
    fn bury(&mut self, worker: usize, next_round: usize) -> Result<(), NetError> {
        let mut pending = vec![worker];
        while let Some(dead) = pending.pop() {
            if !self.members[dead] {
                continue;
            }
            self.members[dead] = false;
            if let Some(conn) = self.fleet.links[dead].take() {
                self.retired.absorb(&conn.stats());
            }
            if !self.members.iter().any(|&m| m) {
                return Err(NetError::Protocol("every worker has died".into()));
            }
            self.engine.apply_membership(&self.members);
            self.epoch += 1;
            let mask = self.members.clone();
            for i in 0..self.fleet.links.len() {
                if !self.members[i] {
                    continue;
                }
                let frame = Frame::Epoch {
                    epoch: self.epoch,
                    round: next_round as u64,
                    share: self.engine.allocation().share(i),
                    members: mask.clone(),
                };
                let conn = self.fleet.links[i].as_mut().expect("members have connections");
                conn.queue(&frame, Instant::now());
                if Fleet::settle(conn, self.cfg.frame_timeout).is_err() {
                    pending.push(i);
                }
            }
        }
        Ok(())
    }
}

/// Accepts `cfg.num_workers` connections on `listener`, runs Algorithm 1
/// to the horizon under the event-driven readiness loop, and shuts the
/// fleet down. The report's trajectory is bitwise identical to
/// [`run_master`](crate::master::run_master) and to the sequential
/// engine; only wall-clock scaling differs.
///
/// # Panics
///
/// Panics if the configuration names an empty fleet or a zero horizon.
pub fn run_master_evented(
    listener: &TcpListener,
    cfg: &MasterConfig,
) -> Result<NetRunReport, NetError> {
    assert!(cfg.num_workers > 0, "at least one worker required");
    assert!(cfg.rounds > 0, "at least one round required");
    listener.set_nonblocking(true).map_err(TransportError::from)?;
    let result = drive(listener, cfg);
    let _ = listener.set_nonblocking(false);
    result
}

fn drive(listener: &TcpListener, cfg: &MasterConfig) -> Result<NetRunReport, NetError> {
    let n = cfg.num_workers;
    let engine = Dolbie::with_config(Allocation::uniform(n), cfg.dolbie);
    let links = admit_concurrent(
        listener,
        n,
        cfg.frame_timeout,
        &cfg.fault,
        |id| {
            welcome_frame(
                id as u32,
                n as u32,
                cfg.rounds as u64,
                cfg.env,
                engine.allocation().share(id),
                &cfg.fault,
            )
        },
        |id| id as u64 + 1,
    )?;
    let mut master = EventMaster {
        cfg,
        fleet: Fleet::new(links, cfg.frame_timeout),
        members: vec![true; n],
        engine,
        epoch: 0,
        retired: WireStats::default(),
        started: Instant::now(),
    };
    let mut records: Vec<ProtocolRound> = Vec::with_capacity(cfg.rounds);
    let mut t = 0;
    while t < cfg.rounds {
        match master.run_round(t) {
            Ok(record) => {
                records.push(record);
                t += 1;
            }
            Err(Abort::Fatal(e)) => return Err(e),
            Err(Abort::Dead { workers, committed }) => {
                master.fleet.clear_awaiting();
                if let Some(record) = committed {
                    // The engine had committed before the death surfaced:
                    // the round stands and the run continues at t + 1.
                    records.push(*record);
                    t += 1;
                }
                for worker in workers {
                    master.bury(worker, t)?;
                }
            }
        }
    }

    // Orderly shutdown; a worker dying at the very end is not an error,
    // and the linger keeps acking stragglers' retransmissions until they
    // close.
    master.fleet.shutdown(master.cfg.frame_timeout);
    let mut wire = master.retired;
    for conn in master.fleet.links.iter().flatten() {
        wire.absorb(&conn.stats());
    }
    Ok(NetRunReport {
        trace: ProtocolTrace { architecture: "tcp-master-worker-evented", rounds: records },
        final_allocation: master.engine.allocation().clone(),
        epochs: master.epoch,
        members: master.members,
        wire,
        wall_clock: master.started.elapsed().as_secs_f64(),
    })
}
