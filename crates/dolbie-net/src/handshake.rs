//! The single home of worker admission: the `Hello → Welcome` handshake
//! and its rejection semantics, shared by the blocking master
//! ([`crate::master`]), the evented master ([`crate::evented`]), and the
//! shard-master tier ([`crate::shard`]) — one implementation of the
//! admission rules instead of a per-coordinator copy.
//!
//! The rules, everywhere: strict magic/version checks ride inside
//! `Frame` decode; worker ids are assigned in Hello-completion order; a
//! socket that fails the handshake — timeout, garbage bytes, a premature
//! close, or a well-formed non-`Hello` opener — is rejected while the
//! listener keeps accepting, so a rogue or slow peer never aborts or
//! consumes a slot of the real fleet. The handshake precedes the lossy
//! envelope; faults start with the first round frame.

use crate::env::WireEnvSpec;
use crate::fleet::{Conn, IdleWait, TimerWheel};
use crate::transport::{FrameConn, Link, TransportError};
use crate::wire::Frame;
use crate::NetError;
use dolbie_simnet::faults::FaultPlan;
use std::io::ErrorKind;
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Builds the `Welcome` frame every coordinator sends in response to a
/// worker's `Hello` — the one place the fault-plan fields map onto the
/// wire, so the three admission paths cannot drift apart.
pub(crate) fn welcome_frame(
    worker_id: u32,
    num_workers: u32,
    rounds: u64,
    env: WireEnvSpec,
    initial_share: f64,
    fault: &FaultPlan,
) -> Frame {
    Frame::Welcome {
        worker_id,
        num_workers,
        rounds,
        env,
        initial_share,
        drop_probability: fault.drop_probability,
        duplicate_probability: fault.duplicate_probability,
        fault_seed: fault.seed,
    }
}

/// Sequential blocking admission, used by the blocking master: one
/// socket at a time, a blocking `Hello` read under `frame_timeout`, then
/// the `Welcome` from the `welcome` closure (keyed by the slot about to
/// be filled) and a [`Link`] carrying the fault plan with peer code
/// `peer_code(slot)`.
pub(crate) fn admit_blocking(
    listener: &TcpListener,
    count: usize,
    frame_timeout: Duration,
    fault: &FaultPlan,
    mut welcome: impl FnMut(usize) -> Frame,
    mut peer_code: impl FnMut(usize) -> u64,
) -> Result<Vec<Option<Link>>, NetError> {
    let mut links: Vec<Option<Link>> = Vec::with_capacity(count);
    while links.len() < count {
        let slot = links.len();
        let (stream, _) = listener.accept().map_err(TransportError::from)?;
        let Ok(mut conn) = FrameConn::new(stream) else { continue };
        match conn.recv(frame_timeout) {
            Ok(Frame::Hello { .. }) => {}
            Ok(_) | Err(_) => continue, // rejected
        }
        if conn.send(&welcome(slot)).is_err() {
            continue; // died between Hello and Welcome: rejected
        }
        links.push(Some(Link::with_plan(conn, fault.clone(), 0, peer_code(slot))));
    }
    Ok(links)
}

/// Concurrent evented admission, used by the evented master and every
/// shard-master: every pending socket handshakes under its own deadline,
/// slots assigned in Hello-completion order. The listener must already
/// be non-blocking. Welcome content and lossy peer codes come from the
/// closures, so the flat master (local ids) and a shard-master (global
/// ids offset by its range) admit through the identical machine.
pub(crate) fn admit_concurrent(
    listener: &TcpListener,
    count: usize,
    frame_timeout: Duration,
    fault: &FaultPlan,
    mut welcome: impl FnMut(usize) -> Frame,
    mut peer_code: impl FnMut(usize) -> u64,
) -> Result<Vec<Option<Conn>>, NetError> {
    let mut wheel = TimerWheel::new(Instant::now());
    let mut idle = IdleWait::new();
    let mut candidates: Vec<Option<Conn>> = Vec::new();
    let mut admitted: Vec<Option<Conn>> = (0..count).map(|_| None).collect();
    let mut next_id = 0usize;
    while next_id < count {
        let now = Instant::now();
        let mut progressed = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if let Ok(mut conn) = Conn::new(stream) {
                        conn.gen += 1;
                        let idx = candidates.len();
                        wheel.arm(now + frame_timeout, idx, conn.gen);
                        candidates.push(Some(conn));
                        progressed = true;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(TransportError::from(e).into()),
            }
        }
        for slot in candidates.iter_mut() {
            if next_id >= count {
                break;
            }
            let Some(conn) = slot.as_mut() else { continue };
            match conn.pump_read(now) {
                Ok(p) => progressed |= p,
                Err(_) => {
                    // Rejected: dead socket or undecodable bytes.
                    *slot = None;
                    continue;
                }
            }
            match conn.inbox.pop_front() {
                None => {}
                Some(Frame::Hello { .. }) => {
                    let mut conn = slot.take().expect("candidate present");
                    let id = next_id;
                    next_id += 1;
                    conn.queue(&welcome(id), now);
                    // The handshake precedes the envelope; faults start
                    // with the first round frame (like the blocking side).
                    conn.install_lossy(fault, 0, peer_code(id));
                    // Write errors surface on the first round pump.
                    let _ = conn.pump_write();
                    conn.gen += 1; // cancels the Hello deadline
                    admitted[id] = Some(conn);
                    progressed = true;
                }
                // A well-formed but out-of-protocol opener: rejected.
                Some(_) => *slot = None,
            }
        }
        for timer in wheel.expire(now) {
            let stale = candidates
                .get(timer.conn())
                .and_then(|c| c.as_ref())
                .is_some_and(|c| c.gen == timer.gen());
            if stale {
                // Hello never arrived within the deadline: rejected.
                candidates[timer.conn()] = None;
            }
        }
        idle.pace(progressed);
    }
    Ok(admitted)
}
