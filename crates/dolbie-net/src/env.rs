//! Wire-encodable environments: seeded cost-function streams both sides
//! of a connection can derive independently.
//!
//! A `DynCost` cannot travel over a socket, and sending one would also
//! break the §IV-B privacy property (workers never reveal their cost
//! *functions*, only scalar costs and decisions). Instead the master ships
//! a tiny [`WireEnvSpec`] — a kind code and a seed — in the `Welcome`
//! frame, and every worker derives its own per-round cost function from
//! it with pure hashing. The same spec materializes the full
//! [`Environment`](dolbie_core::Environment) for the sequential
//! reference run, so the wire runtime
//! and the in-process engine are fed bitwise-identical costs.

use dolbie_core::cost::{DynCost, LatencyCost, LinearCost};
use dolbie_core::environment::FnEnvironment;

/// The family of cost functions a [`WireEnvSpec`] generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvKind {
    /// The chaos-sweep mix: per-(round, worker) hash picks a
    /// `LatencyCost` or a `LinearCost` with hashed parameters — a
    /// time-varying adversary exercising both curvature regimes.
    ChaosMix,
    /// Static heterogeneous linear slopes `1 + ((seed + i) mod 7)`:
    /// a fixed instance on which convergence is easy to eyeball in the
    /// two-terminal demo.
    StaticRamp,
}

/// A seeded environment small enough to live in a handshake frame.
///
/// # Examples
///
/// ```
/// use dolbie_net::env::{EnvKind, WireEnvSpec};
///
/// let spec = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 42 };
/// // A worker derives only its own cost...
/// let mine = spec.cost_for(3, 1);
/// // ...and the reference run derives everyone's; the streams agree.
/// let mut env = spec.environment(4);
/// use dolbie_core::Environment;
/// let all = env.reveal(3);
/// assert_eq!(mine.eval(0.25).to_bits(), all[1].eval(0.25).to_bits());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEnvSpec {
    /// Which cost family to generate.
    pub kind: EnvKind,
    /// Seed of the per-(round, worker) derivation.
    pub seed: u64,
}

impl WireEnvSpec {
    /// The wire code of this spec's kind.
    pub fn kind_code(&self) -> u8 {
        match self.kind {
            EnvKind::ChaosMix => 0,
            EnvKind::StaticRamp => 1,
        }
    }

    /// Rebuilds a spec from its wire code, or `None` for unknown codes.
    pub fn from_code(code: u8, seed: u64) -> Option<Self> {
        let kind = match code {
            0 => EnvKind::ChaosMix,
            1 => EnvKind::StaticRamp,
            _ => return None,
        };
        Some(Self { kind, seed })
    }

    /// Worker `i`'s cost function for `round` — the only cost a worker
    /// node ever derives.
    pub fn cost_for(&self, round: usize, i: usize) -> DynCost {
        match self.kind {
            EnvKind::ChaosMix => {
                let h = hash(self.seed, ((round as u64) << 8) | i as u64);
                if h & 1 == 0 {
                    let speed = 50.0 + (h % 2000) as f64;
                    let comm = ((h >> 13) % 100) as f64 / 1000.0;
                    Box::new(LatencyCost::new(256.0, speed, comm))
                } else {
                    let slope = 0.1 + (h % 500) as f64 / 100.0;
                    Box::new(LinearCost::new(slope, ((h >> 9) % 5) as f64 * 0.02))
                }
            }
            EnvKind::StaticRamp => {
                let slope = 1.0 + ((self.seed.wrapping_add(i as u64)) % 7) as f64;
                Box::new(LinearCost::new(slope, 0.0))
            }
        }
    }

    /// Materializes the full `n`-worker [`Environment`] — what the
    /// sequential reference run and the master-side simulations consume.
    ///
    /// [`Environment`]: dolbie_core::Environment
    pub fn environment(&self, n: usize) -> FnEnvironment<impl FnMut(usize) -> Vec<DynCost>> {
        let spec = *self;
        FnEnvironment::new(n, move |round| (0..n).map(|i| spec.cost_for(round, i)).collect())
    }
}

fn hash(seed: u64, salt: u64) -> u64 {
    splitmix64(seed ^ splitmix64(salt))
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for kind in [EnvKind::ChaosMix, EnvKind::StaticRamp] {
            let spec = WireEnvSpec { kind, seed: 99 };
            assert_eq!(WireEnvSpec::from_code(spec.kind_code(), 99), Some(spec));
        }
        assert_eq!(WireEnvSpec::from_code(200, 0), None);
    }

    #[test]
    fn derivation_is_deterministic_and_seed_sensitive() {
        let a = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 5 };
        let b = WireEnvSpec { kind: EnvKind::ChaosMix, seed: 6 };
        let probe = |spec: &WireEnvSpec| -> Vec<u64> {
            (0..32).map(|t| spec.cost_for(t, t % 4).eval(0.3).to_bits()).collect()
        };
        assert_eq!(probe(&a), probe(&a));
        assert_ne!(probe(&a), probe(&b));
    }
}
