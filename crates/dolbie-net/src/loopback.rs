//! In-process loopback runs: a real TCP master and `N` real TCP workers
//! on OS threads, all over 127.0.0.1 — the harness behind the parity and
//! chaos tests and the tier-1 smoke.
//!
//! Nothing here is simulated: the bytes cross the kernel's loopback
//! interface through the same wire/transport/master/worker code paths the
//! multi-process `dolbie_node` binary uses.

use crate::master::{run_master, MasterConfig, NetRunReport};
use crate::transport::connect_with_backoff;
use crate::worker::{run_worker, WorkerOptions, WorkerReport};
use crate::NetError;
use std::net::TcpListener;
use std::time::Duration;

/// Options of one loopback run.
#[derive(Debug, Clone)]
pub struct LoopbackOptions {
    /// The master's configuration (fleet size, horizon, environment,
    /// fault plan, deadlines).
    pub master: MasterConfig,
    /// Worker-side options, shared by every worker thread.
    pub worker: WorkerOptions,
    /// Kills worker-thread `k` right after it reports its local cost of
    /// the given round (crash-path testing). Note worker ids are assigned
    /// in accept order, so the *wire* id of the killed worker may differ
    /// from `k`; the round is what matters.
    pub kill: Option<(usize, usize)>,
}

impl LoopbackOptions {
    /// A lossless loopback run from a master configuration.
    pub fn new(master: MasterConfig) -> Self {
        Self { master, worker: WorkerOptions::default(), kill: None }
    }
}

/// The master's report plus every worker thread's outcome.
#[derive(Debug)]
pub struct LoopbackRun {
    /// The master-side run report (trajectory, epochs, wire totals).
    pub report: NetRunReport,
    /// Per-thread worker outcomes; a deliberately killed worker reports
    /// through its injected early return, so `Err` here means a genuine
    /// failure.
    pub workers: Vec<Result<WorkerReport, NetError>>,
}

/// Runs master + `N` workers over loopback TCP, master on the calling
/// thread, and reaps everything before returning.
pub fn run_loopback(opts: &LoopbackOptions) -> Result<LoopbackRun, NetError> {
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(crate::transport::TransportError::from)?;
    let addr = listener.local_addr().map_err(crate::transport::TransportError::from)?;

    let mut handles = Vec::with_capacity(opts.master.num_workers);
    for k in 0..opts.master.num_workers {
        let mut worker_opts = opts.worker.clone();
        if let Some((victim, round)) = opts.kill {
            if victim == k {
                worker_opts.die_after_round = Some(round);
            }
        }
        handles.push(std::thread::spawn(move || -> Result<WorkerReport, NetError> {
            let stream = connect_with_backoff(addr, 10, Duration::from_millis(10), k as u64)
                .map_err(crate::transport::TransportError::from)?;
            run_worker(stream, &worker_opts)
        }));
    }

    let master_result = run_master(&listener, &opts.master);
    let workers: Vec<Result<WorkerReport, NetError>> = handles
        .into_iter()
        .map(|h| {
            h.join().unwrap_or_else(|_| Err(NetError::Protocol("worker thread panicked".into())))
        })
        .collect();
    Ok(LoopbackRun { report: master_result?, workers })
}
