//! In-process loopback runs: a real TCP master and `N` real TCP workers
//! on OS threads, all over 127.0.0.1 — the harness behind the parity and
//! chaos tests, the tier-1 smoke, and the `net_scale` experiment.
//!
//! Nothing here is simulated: the bytes cross the kernel's loopback
//! interface through the same wire/transport/master/worker code paths the
//! multi-process `dolbie_node` binary uses. Worker threads run on small
//! fixed stacks and connect under the N-scaled
//! [`connect_schedule`], so fleets of
//! thousands neither exhaust memory nor trample the OS listen backlog.

use crate::evented::run_master_evented;
use crate::master::{run_master, MasterConfig, MasterKind, NetRunReport};
use crate::transport::{connect_schedule, connect_with_backoff};
use crate::worker::{run_worker, WorkerOptions, WorkerReport};
use crate::NetError;
use std::net::TcpListener;
use std::time::Duration;

/// Worker threads carry tiny state (one connection, a few scalars); a
/// small fixed stack lets a 4096-thread fleet fit comfortably.
const WORKER_STACK_BYTES: usize = 256 * 1024;

/// Options of one loopback run.
#[derive(Debug, Clone)]
pub struct LoopbackOptions {
    /// The master's configuration (fleet size, horizon, environment,
    /// fault plan, deadlines).
    pub master: MasterConfig,
    /// Which master implementation drives the run (default: evented).
    pub master_kind: MasterKind,
    /// Worker-side options, shared by every worker thread.
    pub worker: WorkerOptions,
    /// Kills worker-thread `k` right after it reports its local cost of
    /// the given round (crash-path testing). Note worker ids are assigned
    /// in admission order, so the *wire* id of the killed worker may
    /// differ from `k`; the round is what matters.
    pub kill: Option<(usize, usize)>,
    /// Stalls worker-thread `k` after it reports its local cost of the
    /// given round: silent, socket open, for the given hold. Several
    /// entries stall several workers at once — the head-of-line
    /// regression scenario.
    pub stalls: Vec<(usize, usize, Duration)>,
}

impl LoopbackOptions {
    /// A lossless loopback run from a master configuration.
    pub fn new(master: MasterConfig) -> Self {
        Self {
            master,
            master_kind: MasterKind::default(),
            worker: WorkerOptions::default(),
            kill: None,
            stalls: Vec::new(),
        }
    }

    /// Selects the master implementation.
    pub fn with_master_kind(mut self, kind: MasterKind) -> Self {
        self.master_kind = kind;
        self
    }
}

/// The master's report plus every worker thread's outcome.
#[derive(Debug)]
pub struct LoopbackRun {
    /// The master-side run report (trajectory, epochs, wire totals).
    pub report: NetRunReport,
    /// Per-thread worker outcomes; a deliberately killed or stalled
    /// worker reports through its injected early return, so `Err` here
    /// means a genuine failure.
    pub workers: Vec<Result<WorkerReport, NetError>>,
}

/// Runs master + `N` workers over loopback TCP, master on the calling
/// thread, and reaps everything before returning.
pub fn run_loopback(opts: &LoopbackOptions) -> Result<LoopbackRun, NetError> {
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(crate::transport::TransportError::from)?;
    let addr = listener.local_addr().map_err(crate::transport::TransportError::from)?;
    let n = opts.master.num_workers;

    let mut handles = Vec::with_capacity(n);
    for k in 0..n {
        let mut worker_opts = opts.worker.clone();
        if let Some((victim, round)) = opts.kill {
            if victim == k {
                worker_opts.die_after_round = Some(round);
            }
        }
        for &(victim, round, hold) in &opts.stalls {
            if victim == k {
                worker_opts.stall_after_round = Some((round, hold));
            }
        }
        let (attempts, base, stagger) = connect_schedule(n, k);
        let handle = std::thread::Builder::new()
            .name(format!("dolbie-worker-{k}"))
            .stack_size(WORKER_STACK_BYTES)
            .spawn(move || -> Result<WorkerReport, NetError> {
                if !stagger.is_zero() {
                    // Spread the SYN herd across the accept loop's
                    // capacity instead of a single instant.
                    std::thread::sleep(stagger);
                }
                let stream = connect_with_backoff(addr, attempts, base, k as u64)
                    .map_err(crate::transport::TransportError::from)?;
                run_worker(stream, &worker_opts)
            })
            .map_err(crate::transport::TransportError::from)?;
        handles.push(handle);
    }

    let master_result = match opts.master_kind {
        MasterKind::Blocking => run_master(&listener, &opts.master),
        MasterKind::Evented => run_master_evented(&listener, &opts.master),
    };
    let workers: Vec<Result<WorkerReport, NetError>> = handles
        .into_iter()
        .map(|h| {
            h.join().unwrap_or_else(|_| Err(NetError::Protocol("worker thread panicked".into())))
        })
        .collect();
    Ok(LoopbackRun { report: master_result?, workers })
}
