//! Socket transport, split into a readiness-free **buffer/codec layer**
//! ([`FrameCodec`]: reassembly, strict decode, batched transmit queues)
//! and the policies on top of it: the blocking [`FrameConn`]/[`Link`]
//! used by workers and the blocking master, bounded seeded reconnect,
//! and the deterministic lossy link layer. The event-driven master
//! ([`crate::evented`]) drives the same codec from a non-blocking
//! readiness loop.
//!
//! ## The lossy mode
//!
//! A lossy [`Link`] replays a [`FaultPlan`]'s drop/duplicate/ack-drop
//! decisions at the socket layer. Every protocol frame is carried in a
//! [`Frame::Data`] envelope tagged with a per-direction sequence number
//! and attempt counter; a "dropped" transmission is simply never written
//! to the socket (real non-delivery), the sender waits out a real
//! retransmission timeout ([`RetryPolicy`](dolbie_simnet::faults::RetryPolicy))
//! and tries again, the receiver
//! acknowledges every arriving copy (unless the plan drops the ack) and
//! deduplicates by sequence number. The final attempt is written
//! unconditionally and not awaited — TCP itself guarantees its delivery —
//! so progress is guaranteed and a lossy run always terminates.
//!
//! Because loss only ever *delays* frames and never changes their
//! contents or relative order, the protocol trajectory under a lossy link
//! is identical to the lossless one; only wall-clock and wire-byte
//! accounting differ. Lossless links skip the envelope entirely: zero
//! overhead, raw protocol frames on the wire.

use crate::wire::{Frame, WireError, MAX_FRAME_BYTES};
use dolbie_simnet::faults::FaultPlan;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A transport failure: I/O, malformed bytes, or a protocol violation.
#[derive(Debug)]
pub enum TransportError {
    /// The socket failed (includes read-deadline timeouts and EOF).
    Io(std::io::Error),
    /// The peer sent undecodable bytes.
    Wire(WireError),
    /// The peer sent a well-formed frame that violates the protocol.
    Protocol(&'static str),
}

impl TransportError {
    /// Whether this is a read-deadline expiry (as opposed to a dead peer
    /// or malformed traffic).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            Self::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// Wire-level counters of one connection (or a whole run, summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Frames written to the socket (envelope and ack frames included).
    pub frames_sent: u64,
    /// Frames read off the socket.
    pub frames_received: u64,
    /// Bytes written, length prefixes included.
    pub bytes_sent: u64,
    /// Bytes read.
    pub bytes_received: u64,
    /// Data retransmission attempts beyond each frame's first.
    pub retransmissions: u64,
    /// Fault-injected duplicate copies written.
    pub duplicates: u64,
    /// Acknowledgement frames written.
    pub acks: u64,
}

impl WireStats {
    /// Adds another connection's counters into this one.
    pub fn absorb(&mut self, other: &WireStats) {
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.retransmissions += other.retransmissions;
        self.duplicates += other.duplicates;
        self.acks += other.acks;
    }
}

/// The pure buffer/codec layer of a framed connection: bytes in one side,
/// frames out the other, plus an outgoing byte queue — no socket, no
/// blocking, no readiness. Both the blocking [`FrameConn`] and the
/// event-driven master's connections sit on top of this.
///
/// Incoming bytes accumulate in a reassembly buffer and complete frames
/// parse off its front, so a read ending mid-frame never desynchronizes
/// the stream — the partial bytes stay buffered for the next ingest.
/// Outgoing frames encode into a contiguous transmit buffer the owner
/// drains at whatever pace the socket accepts, which is what lets the
/// event loop batch many frames into one `write` call.
#[derive(Debug, Default)]
pub struct FrameCodec {
    rx: Vec<u8>,
    tx: Vec<u8>,
    tx_at: usize,
    stats: WireStats,
}

impl FrameCodec {
    /// An empty codec.
    pub fn new() -> Self {
        Self { rx: Vec::with_capacity(4096), tx: Vec::new(), tx_at: 0, stats: WireStats::default() }
    }

    /// Appends raw bytes read off the socket.
    pub fn ingest(&mut self, bytes: &[u8]) {
        self.rx.extend_from_slice(bytes);
        self.stats.bytes_received += bytes.len() as u64;
    }

    /// Parses one complete frame off the front of the reassembly buffer.
    /// `Ok(None)` means more bytes are needed; malformed bytes are a hard
    /// error (strict decode never partially consumes).
    pub fn pop_frame(&mut self) -> Result<Option<Frame>, WireError> {
        match Frame::decode(&self.rx) {
            Ok((frame, used)) => {
                self.rx.drain(..used);
                self.stats.frames_received += 1;
                Ok(Some(frame))
            }
            Err(WireError::Truncated) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Encodes `frame` onto the transmit queue. Counted as sent here —
    /// the bytes are committed to this connection from this point.
    pub fn queue(&mut self, frame: &Frame) {
        let bytes = frame.encode();
        self.queue_raw(&bytes);
    }

    /// Appends pre-encoded frame bytes to the transmit queue — the
    /// coalesced-broadcast path: encode a frame once, queue it on many
    /// connections without re-encoding.
    pub fn queue_raw(&mut self, bytes: &[u8]) {
        self.tx.extend_from_slice(bytes);
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
    }

    /// The bytes awaiting transmission.
    pub fn pending_tx(&self) -> &[u8] {
        &self.tx[self.tx_at..]
    }

    /// Marks `n` pending bytes as written; reclaims the buffer once fully
    /// drained.
    pub fn advance_tx(&mut self, n: usize) {
        self.tx_at += n;
        debug_assert!(self.tx_at <= self.tx.len());
        if self.tx_at == self.tx.len() {
            self.tx.clear();
            self.tx_at = 0;
        }
    }

    /// Whether any bytes await transmission.
    pub fn has_tx(&self) -> bool {
        self.tx_at < self.tx.len()
    }

    /// This connection's byte/frame counters.
    pub fn stats(&self) -> WireStats {
        self.stats
    }
}

/// A framed **blocking** TCP connection: length-prefixed frames in, frames
/// out, with a per-call read deadline — a [`FrameCodec`] plus a socket and
/// the readiness policy "block until the deadline".
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
    codec: FrameCodec,
}

impl FrameConn {
    /// Wraps a connected stream; disables Nagle so the small protocol
    /// frames are not batched behind a delayed-ack timer.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(Self { stream, codec: FrameCodec::new() })
    }

    /// Writes one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.codec.queue(frame);
        while self.codec.has_tx() {
            match self.stream.write(self.codec.pending_tx()) {
                Ok(0) => {
                    return Err(std::io::Error::from(std::io::ErrorKind::WriteZero).into());
                }
                Ok(k) => self.codec.advance_tx(k),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Reads one frame, waiting at most `deadline`.
    pub fn recv(&mut self, deadline: Duration) -> Result<Frame, TransportError> {
        let until = Instant::now() + deadline;
        loop {
            if let Some(frame) = self.codec.pop_frame()? {
                return Ok(frame);
            }
            let remaining = until.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(std::io::Error::from(std::io::ErrorKind::TimedOut).into());
            }
            // set_read_timeout(Some(0)) is an error by contract; clamp up.
            self.stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(std::io::Error::from(std::io::ErrorKind::UnexpectedEof).into()),
                Ok(k) => self.codec.ingest(&chunk[..k]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// This connection's byte/frame counters.
    pub fn stats(&self) -> WireStats {
        self.codec.stats()
    }
}

/// Sender/receiver state of the lossy envelope on one connection.
#[derive(Debug)]
struct LossyState {
    plan: FaultPlan,
    /// This endpoint's node code in the fault-decision hash (master 0,
    /// worker `i` → `i + 1`; the `dolbie-simnet` convention).
    self_code: u64,
    peer_code: u64,
    next_seq: u64,
    last_delivered: Option<u64>,
    inbox: VecDeque<Frame>,
    retransmissions: u64,
    duplicates: u64,
    acks: u64,
}

/// A protocol-frame channel over one TCP connection: either raw frames
/// (lossless) or the deterministic lossy envelope.
#[derive(Debug)]
pub struct Link {
    conn: FrameConn,
    lossy: Option<LossyState>,
}

impl Link {
    /// A raw pass-through link: protocol frames directly on the wire.
    pub fn lossless(conn: FrameConn) -> Self {
        Self { conn, lossy: None }
    }

    /// A link replaying `plan`'s socket-layer faults. `self_code` and
    /// `peer_code` are the endpoints' node codes (master 0, worker `i` →
    /// `i + 1`), which key the per-attempt fate hashes so both ends agree
    /// on every decision. Falls back to a pass-through if the plan is
    /// lossless.
    pub fn with_plan(conn: FrameConn, plan: FaultPlan, self_code: u64, peer_code: u64) -> Self {
        if plan.is_lossless() {
            return Self::lossless(conn);
        }
        Self {
            conn,
            lossy: Some(LossyState {
                plan,
                self_code,
                peer_code,
                next_seq: 0,
                last_delivered: None,
                inbox: VecDeque::new(),
                retransmissions: 0,
                duplicates: 0,
                acks: 0,
            }),
        }
    }

    /// Sends one protocol frame; in lossy mode this blocks through the
    /// retransmission schedule until a copy is acknowledged (or the final
    /// attempt is force-written).
    pub fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        if self.lossy.is_none() {
            return self.conn.send(frame);
        }
        let (seq, retry, plan, me, peer) = {
            let state = self.lossy.as_mut().expect("checked above");
            let seq = state.next_seq;
            state.next_seq += 1;
            (seq, state.plan.retry, state.plan.clone(), state.self_code, state.peer_code)
        };
        let mut rto = retry.ack_timeout;
        for attempt in 0..retry.max_attempts {
            let forced = attempt + 1 == retry.max_attempts;
            if attempt > 0 {
                self.lossy.as_mut().expect("lossy mode").retransmissions += 1;
            }
            let delivered = forced || !plan.wire_drop(seq, me, peer, attempt);
            if delivered {
                let data =
                    Frame::Data { seq, attempt: attempt as u32, inner: Box::new(frame.clone()) };
                self.conn.send(&data)?;
                if plan.wire_duplicate(seq, me, peer, attempt) {
                    self.conn.send(&data)?;
                    self.lossy.as_mut().expect("lossy mode").duplicates += 1;
                }
                if forced {
                    // TCP delivers what we wrote; nothing left to await.
                    return Ok(());
                }
                if self.await_ack(seq, Duration::from_secs_f64(rto))? {
                    return Ok(());
                }
            } else {
                // The "network" ate this attempt before the wire: nothing
                // was written. Wait out the timeout anyway (that is the
                // injected delay), servicing any incoming traffic.
                let _ = self.await_ack(seq, Duration::from_secs_f64(rto))?;
            }
            rto *= retry.backoff;
        }
        unreachable!("the forced final attempt returns")
    }

    /// Receives the next protocol frame, waiting at most `deadline`.
    pub fn recv(&mut self, deadline: Duration) -> Result<Frame, TransportError> {
        if self.lossy.is_none() {
            return self.conn.recv(deadline);
        }
        let until = Instant::now() + deadline;
        loop {
            if let Some(frame) = self.lossy.as_mut().expect("lossy mode").inbox.pop_front() {
                return Ok(frame);
            }
            let remaining = until.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(std::io::Error::from(std::io::ErrorKind::TimedOut).into());
            }
            let frame = self.conn.recv(remaining)?;
            self.on_wire_frame(frame)?;
        }
    }

    /// Waits up to `window` for the ack of `seq`, servicing interleaved
    /// peer traffic. Returns whether the ack arrived.
    fn await_ack(&mut self, seq: u64, window: Duration) -> Result<bool, TransportError> {
        let until = Instant::now() + window;
        loop {
            let remaining = until.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(false);
            }
            match self.conn.recv(remaining) {
                Ok(Frame::Ack { seq: acked }) if acked == seq => return Ok(true),
                Ok(frame) => self.on_wire_frame(frame)?,
                Err(e) if e.is_timeout() => return Ok(false),
                Err(e) => return Err(e),
            }
        }
    }

    /// Receiver-side handling of one frame off the wire in lossy mode:
    /// ack-or-suppress, dedup, and inbox the payload.
    fn on_wire_frame(&mut self, frame: Frame) -> Result<(), TransportError> {
        match frame {
            Frame::Data { seq, attempt, inner } => {
                let state = self.lossy.as_ref().expect("lossy mode");
                // Ack fate is keyed on the DATA direction (peer → self),
                // so the sender would reach the same verdict.
                let suppressed = state.plan.wire_ack_drop(
                    seq,
                    state.peer_code,
                    state.self_code,
                    attempt as usize,
                );
                if !suppressed {
                    self.conn.send(&Frame::Ack { seq })?;
                    self.lossy.as_mut().expect("lossy mode").acks += 1;
                }
                let state = self.lossy.as_mut().expect("lossy mode");
                // Per-direction seqs are strictly increasing; anything at
                // or below the high-water mark is a retransmitted or
                // duplicated copy of a frame already delivered upward.
                if state.last_delivered.is_none_or(|last| seq > last) {
                    state.last_delivered = Some(seq);
                    state.inbox.push_back(*inner);
                }
                Ok(())
            }
            // A late ack for an attempt we stopped waiting on.
            Frame::Ack { .. } => Ok(()),
            _ => Err(TransportError::Protocol("raw frame on a lossy link")),
        }
    }

    /// Combined socket and link-layer counters.
    pub fn stats(&self) -> WireStats {
        let mut stats = self.conn.stats();
        if let Some(state) = &self.lossy {
            stats.retransmissions = state.retransmissions;
            stats.duplicates = state.duplicates;
            stats.acks = state.acks;
        }
        stats
    }
}

/// Connects with bounded, seeded exponential backoff: attempt `k` waits
/// `base · 2^k · (1 + jitter_k)` with deterministic per-seed jitter in
/// `[0, 0.5)`, with each wait clamped to [`MAX_BACKOFF_SLEEP`] so long
/// retry schedules grow linearly rather than exponentially past the cap.
/// Returns the last error if every attempt fails.
pub fn connect_with_backoff(
    addr: SocketAddr,
    attempts: usize,
    base: Duration,
    seed: u64,
) -> std::io::Result<TcpStream> {
    assert!(attempts >= 1, "at least one connection attempt is required");
    let mut last = None;
    for k in 0..attempts {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
        if k + 1 < attempts {
            let jitter = (mix(seed, k as u64) >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
            let wait = base.mul_f64((1u64 << k.min(16)) as f64 * (1.0 + jitter));
            std::thread::sleep(wait.min(MAX_BACKOFF_SLEEP));
        }
    }
    Err(last.expect("at least one attempt ran"))
}

/// Per-attempt ceiling of the reconnect backoff: past this point more
/// attempts buy a longer *total* wait without ever parking a worker for
/// minutes at a time.
pub const MAX_BACKOFF_SLEEP: Duration = Duration::from_secs(2);

/// The connect retry schedule for a fleet of `n` workers racing one
/// listener: `(attempts, base, stagger)`.
///
/// The OS listen backlog is fixed (std offers no knob), so at large `n`
/// simultaneous SYNs overflow it and late workers ride kernel SYN
/// retransmits or outright refusals. Two N-scaled levers compensate:
/// the worker's *attempt budget* grows with `log2 n` (each capped at
/// [`MAX_BACKOFF_SLEEP`], so the worst-case total wait scales ~linearly
/// in the budget), and worker `k` delays its first SYN by
/// `k · stagger` to spread the herd across the accept loop's capacity
/// instead of a single instant.
pub fn connect_schedule(n: usize, k: usize) -> (usize, Duration, Duration) {
    let log2n = usize::BITS - n.max(1).leading_zeros();
    let attempts = 10 + 2 * log2n as usize;
    let stagger = if n > 256 { Duration::from_micros(100) * (k as u32) } else { Duration::ZERO };
    (attempts, Duration::from_millis(10), stagger)
}

fn mix(seed: u64, salt: u64) -> u64 {
    let mut z =
        (seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Default per-frame read deadline used by both node roles: generous
/// enough for the full lossy retransmission schedule, short enough that a
/// crashed peer is detected promptly.
pub const DEFAULT_FRAME_TIMEOUT: Duration = Duration::from_secs(10);

#[allow(unused)]
const _ASSERT_CAP_FITS: () = assert!(MAX_FRAME_BYTES <= u32::MAX as usize);

#[cfg(test)]
mod tests {
    use super::*;
    use dolbie_simnet::faults::RetryPolicy;
    use std::net::TcpListener;

    fn pair() -> (FrameConn, FrameConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (FrameConn::new(client).unwrap(), FrameConn::new(server).unwrap())
    }

    #[test]
    fn frames_cross_a_real_socket() {
        let (mut a, mut b) = pair();
        let frame = Frame::LocalCost { epoch: 0, round: 9, cost: 1.0 / 3.0 };
        a.send(&frame).unwrap();
        let got = b.recv(Duration::from_secs(2)).unwrap();
        assert_eq!(got, frame);
        assert_eq!(a.stats().frames_sent, 1);
        assert_eq!(b.stats().frames_received, 1);
        assert_eq!(a.stats().bytes_sent, b.stats().bytes_received);
    }

    #[test]
    fn read_deadline_expires_without_desync() {
        let (mut a, mut b) = pair();
        let err = b.recv(Duration::from_millis(30)).unwrap_err();
        assert!(err.is_timeout());
        // The stream still works after the timeout.
        a.send(&Frame::Shutdown).unwrap();
        assert_eq!(b.recv(Duration::from_secs(2)).unwrap(), Frame::Shutdown);
    }

    #[test]
    fn lossy_link_delivers_exactly_once_despite_faults() {
        let (client, server) = pair();
        let plan = FaultPlan::seeded(21)
            .with_drop_probability(0.4)
            .with_duplicate_probability(0.3)
            .with_retry(RetryPolicy::new(0.01, 1.5, 6));
        let sender = std::thread::spawn({
            let plan = plan.clone();
            move || {
                let mut link = Link::with_plan(client, plan, 1, 0);
                for round in 0..50u64 {
                    link.send(&Frame::LocalCost { epoch: 0, round, cost: round as f64 }).unwrap();
                }
                link.stats()
            }
        });
        let mut link = Link::with_plan(server, plan, 0, 1);
        for round in 0..50u64 {
            let frame = link.recv(Duration::from_secs(10)).unwrap();
            assert_eq!(
                frame,
                Frame::LocalCost { epoch: 0, round, cost: round as f64 },
                "in-order exactly-once delivery"
            );
        }
        let sent = sender.join().unwrap();
        assert!(sent.retransmissions > 0, "40% drop over 50 frames must retransmit somewhere");
        assert!(sent.duplicates > 0, "30% duplication must fire somewhere");
    }

    #[test]
    fn lossless_link_adds_zero_envelope_overhead() {
        let (client, server) = pair();
        let mut tx = Link::with_plan(client, FaultPlan::none(), 1, 0);
        let mut rx = Link::lossless(server);
        let frame = Frame::Assignment { round: 0, share: 0.5 };
        tx.send(&frame).unwrap();
        assert_eq!(rx.recv(Duration::from_secs(2)).unwrap(), frame);
        assert_eq!(tx.stats().bytes_sent, frame.encode().len() as u64);
        assert_eq!(tx.stats().retransmissions + tx.stats().acks + tx.stats().duplicates, 0);
    }

    #[test]
    fn backoff_connect_eventually_reaches_a_late_listener() {
        // Reserve a port, close it, then re-listen shortly after the
        // client starts retrying.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let opener = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            let listener = TcpListener::bind(addr).unwrap();
            listener.accept().map(|_| ()).unwrap();
        });
        let stream = connect_with_backoff(addr, 8, Duration::from_millis(25), 7).unwrap();
        drop(stream);
        opener.join().unwrap();
    }
}
