//! The worker node role: one worker's half of Algorithm 1 over a socket.
//!
//! A worker is authoritative for exactly one scalar — its own share — and
//! never reveals its cost *function*, only the scalars §IV-B prescribes:
//! the observed local cost (line 4) and its risk-averse decision (line 7).
//! The per-round cost function is derived locally from the
//! [`WireEnvSpec`](crate::env::WireEnvSpec) the master ships in `Welcome`.
//!
//! The arithmetic here is the worker side of the engine's reported-round
//! contract: `gain = (α · (x' − x)).max(0.0)`, `x ← x + gain`, with the
//! rare `Adjust` replaying `x ← x_old + gain · scale` — bitwise the
//! update the sequential engine applies, which is what makes the whole
//! distributed trajectory bitwise-reproducible.

use crate::transport::{FrameConn, Link, TransportError, WireStats, DEFAULT_FRAME_TIMEOUT};
use crate::wire::{Frame, VERSION};
use crate::NetError;
use dolbie_core::cost::DynCost;
use dolbie_core::observation::max_acceptable_share;
use dolbie_simnet::faults::{FaultPlan, RetryPolicy};
use std::net::TcpStream;
use std::time::Duration;

/// Knobs of a worker run.
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Per-frame read deadline; `None` uses [`DEFAULT_FRAME_TIMEOUT`].
    pub frame_timeout: Option<Duration>,
    /// Overrides the lossy link's retransmission pacing (the fault plan
    /// itself always comes from `Welcome`). Senders need not agree on
    /// pacing, so tests can run a faster schedule than the default.
    pub retry: Option<RetryPolicy>,
    /// Fault injection for crash tests: drop the connection right after
    /// reporting the local cost of this round, simulating a worker killed
    /// mid-round.
    pub die_after_round: Option<usize>,
    /// Fault injection for stall tests: after reporting the local cost of
    /// the given round, go silent for the given duration with the socket
    /// held open — the head-of-line shape a hung-but-connected worker
    /// presents — then return. The master's frame deadline declares the
    /// worker dead long before the stall ends.
    pub stall_after_round: Option<(usize, Duration)>,
}

/// What a worker saw over its run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// The identity the master assigned in `Welcome`.
    pub worker_id: usize,
    /// Rounds this worker participated in (counting restarts once).
    pub rounds_seen: usize,
    /// The worker's final authoritative share.
    pub final_share: f64,
    /// Membership epochs crossed.
    pub epochs_seen: u32,
    /// This connection's wire counters.
    pub wire: WireStats,
}

/// Runs the worker protocol on `stream` until `Shutdown` (or injected
/// death). Handshakes raw, then speaks through the fault plan announced
/// in `Welcome`.
pub fn run_worker(stream: TcpStream, opts: &WorkerOptions) -> Result<WorkerReport, NetError> {
    let timeout = opts.frame_timeout.unwrap_or(DEFAULT_FRAME_TIMEOUT);
    let mut conn = FrameConn::new(stream).map_err(TransportError::from)?;
    conn.send(&Frame::Hello { version: VERSION })?;
    let (worker_id, env, mut share, plan) = match conn.recv(timeout)? {
        Frame::Welcome {
            worker_id,
            env,
            initial_share,
            drop_probability,
            duplicate_probability,
            fault_seed,
            ..
        } => {
            let mut plan = FaultPlan::seeded(fault_seed);
            if drop_probability > 0.0 {
                plan = plan.with_drop_probability(drop_probability);
            }
            if duplicate_probability > 0.0 {
                plan = plan.with_duplicate_probability(duplicate_probability);
            }
            if let Some(retry) = opts.retry {
                plan = plan.with_retry(retry);
            }
            (worker_id as usize, env, initial_share, plan)
        }
        _ => return Err(NetError::Protocol("expected Welcome after Hello".into())),
    };
    let mut link = Link::with_plan(conn, plan, worker_id as u64 + 1, 0);

    let mut cost_fn: Option<DynCost> = None;
    // The pre-decision share and gain of the current round, kept for the
    // rare `Adjust` replay.
    let (mut x_old, mut gain) = (share, 0.0f64);
    let mut rounds_seen = 0usize;
    let mut epochs_seen = 0u32;
    let mut my_epoch = 0u32;

    loop {
        match link.recv(timeout)? {
            Frame::RoundStart { epoch, round } => {
                if epoch != my_epoch {
                    return Err(NetError::Protocol(format!(
                        "round started under epoch {epoch}, worker is at {my_epoch}"
                    )));
                }
                // Lines 1–4: execute, observe, report.
                let f = env.cost_for(round as usize, worker_id);
                let cost = f.eval(share);
                cost_fn = Some(f);
                rounds_seen += 1;
                link.send(&Frame::LocalCost { epoch: my_epoch, round, cost })?;
                if let Some((stall_round, hold)) = opts.stall_after_round {
                    if stall_round == round as usize {
                        // Injected stall: hold the socket open, say
                        // nothing, and leave only after the master has
                        // long since moved on.
                        std::thread::sleep(hold);
                        return Ok(WorkerReport {
                            worker_id,
                            rounds_seen,
                            final_share: share,
                            epochs_seen,
                            wire: link.stats(),
                        });
                    }
                }
                if opts.die_after_round == Some(round as usize) {
                    // Injected crash: vanish without a goodbye.
                    return Ok(WorkerReport {
                        worker_id,
                        rounds_seen,
                        final_share: share,
                        epochs_seen,
                        wire: link.stats(),
                    });
                }
            }
            Frame::Coordination { global_cost, alpha, is_straggler, round } => {
                if is_straggler {
                    // Line 8: the pin arrives as an Assignment.
                    continue;
                }
                // Lines 5–7: risk-averse assistance, the engine's exact
                // arithmetic.
                let f = cost_fn
                    .as_ref()
                    .ok_or_else(|| NetError::Protocol("coordination before any round".into()))?;
                x_old = share;
                let target = max_acceptable_share(&**f, share, global_cost);
                gain = (alpha * (target - share)).max(0.0);
                share = x_old + gain;
                link.send(&Frame::Decision { epoch: my_epoch, round, share, gain })?;
            }
            Frame::Assignment { share: pinned, .. } => {
                share = pinned;
            }
            Frame::Adjust { scale, .. } => {
                share = x_old + gain * scale;
            }
            Frame::Epoch { epoch, share: authoritative, .. } => {
                // A crash elsewhere: adopt the post-renormalization share,
                // discarding any tentative in-round state.
                my_epoch = epoch;
                share = authoritative;
                epochs_seen += 1;
            }
            Frame::Shutdown => {
                return Ok(WorkerReport {
                    worker_id,
                    rounds_seen,
                    final_share: share,
                    epochs_seen,
                    wire: link.stats(),
                });
            }
            _ => return Err(NetError::Protocol("unexpected frame at the worker".into())),
        }
    }
}
