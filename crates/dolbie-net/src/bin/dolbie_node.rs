//! `dolbie_node` — run one DOLBIE node role over real TCP.
//!
//! ```text
//! dolbie_node master --listen 127.0.0.1:4100 --workers 4 [--rounds 500]
//!                    [--env-seed 7] [--env chaos|ramp] [--drop-p 0.1]
//!                    [--dup-p 0.05] [--fault-seed 21] [--verify]
//!                    [--master blocking|evented]
//! dolbie_node worker --connect 127.0.0.1:4100
//! dolbie_node root   --listen 127.0.0.1:4200 --shards 4 --workers 64
//!                    [--rounds 500] [--env chaos|ramp] [--env-seed 7]
//!                    [--drop-p 0.1] [--dup-p 0.05] [--fault-seed 21]
//!                    [--bb-drop-p 0.1] [--bb-dup-p 0.05] [--bb-seed 33]
//!                    [--min-live-shards 1]
//! dolbie_node shard  --connect 127.0.0.1:4200 --listen 127.0.0.1:4301
//!                    --shard 1 --shards 4
//!                    [--bb-drop-p 0.1] [--bb-dup-p 0.05] [--bb-seed 33]
//! ```
//!
//! The master prints `listening on <addr>` once bound (with the resolved
//! port when `--listen` named port 0), accepts exactly `--workers`
//! connections, runs the horizon, and prints a per-run summary. With
//! `--verify` it replays the same environment through the sequential
//! engine and exits 1 unless the TCP trajectory is bitwise identical.
//! Malformed flags exit 2 with a message naming the flag and value.
//!
//! The sharded control plane is three processes deep: one `root`
//! coordinating `--shards` shard-masters, each `shard` a real evented
//! TCP master over its contiguous worker range (workers point their
//! `--connect` at their shard, not the root). Fault flags live on the
//! root; they ship to every shard-master in `ShardWelcome`.

use dolbie_core::{run_episode, Dolbie, DolbieConfig, EpisodeOptions};
use dolbie_net::env::{EnvKind, WireEnvSpec};
use dolbie_net::evented::run_master_evented;
use dolbie_net::master::{run_master, MasterConfig, MasterKind};
use dolbie_net::shard::{run_root, run_shard_master, ShardMasterOptions, ShardedConfig};
use dolbie_net::transport::{connect_with_backoff, DEFAULT_FRAME_TIMEOUT};
use dolbie_net::worker::{run_worker, WorkerOptions};
use dolbie_simnet::faults::FaultPlan;
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  dolbie_node master --listen ADDR --workers N [--rounds T] [--env chaos|ramp]\n\
         \x20                  [--env-seed S] [--drop-p P] [--dup-p P] [--fault-seed S] [--verify]\n\
         \x20                  [--master blocking|evented]\n\
         \x20 dolbie_node worker --connect ADDR\n\
         \x20 dolbie_node root   --listen ADDR --shards M --workers N [--rounds T]\n\
         \x20                  [--env chaos|ramp] [--env-seed S] [--drop-p P] [--dup-p P]\n\
         \x20                  [--fault-seed S] [--bb-drop-p P] [--bb-dup-p P] [--bb-seed S]\n\
         \x20                  [--min-live-shards Q]\n\
         \x20 dolbie_node shard  --connect ROOT --listen ADDR --shard K --shards M\n\
         \x20                  [--bb-drop-p P] [--bb-dup-p P] [--bb-seed S]"
    );
    std::process::exit(2);
}

fn bad(flag: &str, value: &str, expected: &str) -> ! {
    eprintln!("error: invalid value '{value}' for {flag}: expected {expected}");
    std::process::exit(2);
}

fn take_value(flag: &str, it: &mut std::env::Args) -> String {
    it.next().unwrap_or_else(|| {
        eprintln!("error: {flag} requires a value");
        std::process::exit(2);
    })
}

fn parse_addr(flag: &str, value: &str) -> SocketAddr {
    value.parse().unwrap_or_else(|_| bad(flag, value, "a socket address like 127.0.0.1:4100"))
}

fn parse_usize(flag: &str, value: &str, min: usize) -> usize {
    match value.parse::<usize>() {
        Ok(v) if v >= min => v,
        _ => bad(flag, value, &format!("an integer >= {min}")),
    }
}

fn parse_prob(flag: &str, value: &str) -> f64 {
    match value.parse::<f64>() {
        Ok(p) if (0.0..1.0).contains(&p) => p,
        _ => bad(flag, value, "a probability in [0, 1)"),
    }
}

fn parse_u64(flag: &str, value: &str) -> u64 {
    value.parse().unwrap_or_else(|_| bad(flag, value, "an unsigned integer"))
}

fn main() {
    let mut args = std::env::args();
    let _ = args.next();
    match args.next().as_deref() {
        Some("master") => master_main(args),
        Some("worker") => worker_main(args),
        Some("root") => root_main(args),
        Some("shard") => shard_main(args),
        _ => usage(),
    }
}

fn master_main(mut args: std::env::Args) {
    let mut listen: Option<SocketAddr> = None;
    let mut workers: Option<usize> = None;
    let mut rounds = 500usize;
    let mut env_kind = EnvKind::ChaosMix;
    let mut env_seed = 7u64;
    let mut drop_p = 0.0;
    let mut dup_p = 0.0;
    let mut fault_seed = 0u64;
    let mut verify = false;
    let mut master_kind = MasterKind::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = Some(parse_addr("--listen", &take_value("--listen", &mut args))),
            "--workers" => {
                workers = Some(parse_usize("--workers", &take_value("--workers", &mut args), 1))
            }
            "--rounds" => rounds = parse_usize("--rounds", &take_value("--rounds", &mut args), 1),
            "--env" => {
                let value = take_value("--env", &mut args);
                env_kind = match value.as_str() {
                    "chaos" => EnvKind::ChaosMix,
                    "ramp" => EnvKind::StaticRamp,
                    _ => bad("--env", &value, "'chaos' or 'ramp'"),
                };
            }
            "--env-seed" => {
                env_seed = parse_u64("--env-seed", &take_value("--env-seed", &mut args))
            }
            "--drop-p" => drop_p = parse_prob("--drop-p", &take_value("--drop-p", &mut args)),
            "--dup-p" => dup_p = parse_prob("--dup-p", &take_value("--dup-p", &mut args)),
            "--fault-seed" => {
                fault_seed = parse_u64("--fault-seed", &take_value("--fault-seed", &mut args))
            }
            "--verify" => verify = true,
            "--master" => {
                let value = take_value("--master", &mut args);
                master_kind = MasterKind::parse(&value)
                    .unwrap_or_else(|| bad("--master", &value, "'blocking' or 'evented'"));
            }
            other => {
                eprintln!("error: unknown flag '{other}' for dolbie_node master");
                std::process::exit(2);
            }
        }
    }
    let (Some(listen), Some(workers)) = (listen, workers) else { usage() };

    let env = WireEnvSpec { kind: env_kind, seed: env_seed };
    let mut fault = FaultPlan::seeded(fault_seed);
    if drop_p > 0.0 {
        fault = fault.with_drop_probability(drop_p);
    }
    if dup_p > 0.0 {
        fault = fault.with_duplicate_probability(dup_p);
    }
    let cfg = MasterConfig::new(workers, rounds, env).with_fault_plan(fault);

    let listener = TcpListener::bind(listen).unwrap_or_else(|e| {
        eprintln!("error: cannot listen on {listen}: {e}");
        std::process::exit(1);
    });
    let local = listener.local_addr().expect("bound listener has an address");
    println!("listening on {local}");

    let report = match master_kind {
        MasterKind::Blocking => run_master(&listener, &cfg),
        MasterKind::Evented => run_master_evented(&listener, &cfg),
    }
    .unwrap_or_else(|e| {
        eprintln!("error: master run failed: {e}");
        std::process::exit(1);
    });
    println!(
        "completed {} rounds over {} workers in {:.3} s ({:.0} rounds/s)",
        report.trace.rounds.len(),
        workers,
        report.wall_clock,
        report.trace.rounds.len() as f64 / report.wall_clock.max(1e-9),
    );
    println!(
        "wire: {} frames / {} bytes sent, {} frames / {} bytes received, \
         {} retransmissions, {} duplicates, {} acks",
        report.wire.frames_sent,
        report.wire.bytes_sent,
        report.wire.frames_received,
        report.wire.bytes_received,
        report.wire.retransmissions,
        report.wire.duplicates,
        report.wire.acks,
    );
    println!("epochs crossed: {}", report.epochs);
    println!("final allocation: {}", report.final_allocation);

    if verify {
        if report.epochs > 0 {
            eprintln!("verify: skipped — membership changed mid-run, no sequential twin exists");
            std::process::exit(1);
        }
        let mut sequential =
            Dolbie::with_config(dolbie_core::Allocation::uniform(workers), DolbieConfig::new());
        let mut driver = env.environment(workers);
        let reference = run_episode(&mut sequential, &mut driver, EpisodeOptions::new(rounds));
        for (t, round) in report.trace.rounds.iter().enumerate() {
            for i in 0..workers {
                let net = round.allocation.share(i).to_bits();
                let seq = reference.records[t].allocation.share(i).to_bits();
                if net != seq {
                    eprintln!(
                        "verify: FAILED at round {t}, worker {i}: net {net:#018x} != sequential {seq:#018x}"
                    );
                    std::process::exit(1);
                }
            }
        }
        println!("verify: OK — {rounds} rounds bitwise identical to the sequential engine");
    }
}

fn root_main(mut args: std::env::Args) {
    let mut listen: Option<SocketAddr> = None;
    let mut shards: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut rounds = 500usize;
    let mut env_kind = EnvKind::ChaosMix;
    let mut env_seed = 7u64;
    let mut drop_p = 0.0;
    let mut dup_p = 0.0;
    let mut fault_seed = 0u64;
    let mut bb_drop_p = 0.0;
    let mut bb_dup_p = 0.0;
    let mut bb_seed = 0u64;
    let mut min_live_shards = 1usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = Some(parse_addr("--listen", &take_value("--listen", &mut args))),
            "--shards" => {
                shards = Some(parse_usize("--shards", &take_value("--shards", &mut args), 1))
            }
            "--workers" => {
                workers = Some(parse_usize("--workers", &take_value("--workers", &mut args), 2))
            }
            "--rounds" => rounds = parse_usize("--rounds", &take_value("--rounds", &mut args), 1),
            "--env" => {
                let value = take_value("--env", &mut args);
                env_kind = match value.as_str() {
                    "chaos" => EnvKind::ChaosMix,
                    "ramp" => EnvKind::StaticRamp,
                    _ => bad("--env", &value, "'chaos' or 'ramp'"),
                };
            }
            "--env-seed" => {
                env_seed = parse_u64("--env-seed", &take_value("--env-seed", &mut args))
            }
            "--drop-p" => drop_p = parse_prob("--drop-p", &take_value("--drop-p", &mut args)),
            "--dup-p" => dup_p = parse_prob("--dup-p", &take_value("--dup-p", &mut args)),
            "--fault-seed" => {
                fault_seed = parse_u64("--fault-seed", &take_value("--fault-seed", &mut args))
            }
            "--bb-drop-p" => {
                bb_drop_p = parse_prob("--bb-drop-p", &take_value("--bb-drop-p", &mut args))
            }
            "--bb-dup-p" => {
                bb_dup_p = parse_prob("--bb-dup-p", &take_value("--bb-dup-p", &mut args))
            }
            "--bb-seed" => bb_seed = parse_u64("--bb-seed", &take_value("--bb-seed", &mut args)),
            "--min-live-shards" => {
                min_live_shards =
                    parse_usize("--min-live-shards", &take_value("--min-live-shards", &mut args), 1)
            }
            other => {
                eprintln!("error: unknown flag '{other}' for dolbie_node root");
                std::process::exit(2);
            }
        }
    }
    let (Some(listen), Some(shards), Some(workers)) = (listen, shards, workers) else { usage() };
    if shards > workers {
        eprintln!("error: --shards {shards} exceeds --workers {workers}");
        std::process::exit(2);
    }
    if min_live_shards > shards {
        eprintln!("error: --min-live-shards {min_live_shards} exceeds --shards {shards}");
        std::process::exit(2);
    }

    let env = WireEnvSpec { kind: env_kind, seed: env_seed };
    let mut fault = FaultPlan::seeded(fault_seed);
    if drop_p > 0.0 {
        fault = fault.with_drop_probability(drop_p);
    }
    if dup_p > 0.0 {
        fault = fault.with_duplicate_probability(dup_p);
    }
    let mut backbone_fault = FaultPlan::seeded(bb_seed);
    if bb_drop_p > 0.0 {
        backbone_fault = backbone_fault.with_drop_probability(bb_drop_p);
    }
    if bb_dup_p > 0.0 {
        backbone_fault = backbone_fault.with_duplicate_probability(bb_dup_p);
    }
    let cfg = ShardedConfig::new(workers, shards, rounds, env)
        .with_fault_plan(fault)
        .with_backbone_fault_plan(backbone_fault)
        .with_min_live_shards(min_live_shards);

    let listener = TcpListener::bind(listen).unwrap_or_else(|e| {
        eprintln!("error: cannot listen on {listen}: {e}");
        std::process::exit(1);
    });
    let local = listener.local_addr().expect("bound listener has an address");
    println!("root listening on {local}, awaiting {shards} shard-masters");

    let report = run_root(&listener, &cfg).unwrap_or_else(|e| {
        eprintln!("error: root run failed: {e}");
        std::process::exit(1);
    });
    let messages: usize = report.rounds.iter().map(|r| r.messages).sum();
    println!(
        "root completed {} rounds over {} shards ({} workers) in {:.3} s ({:.0} rounds/s)",
        report.rounds.len(),
        shards,
        workers,
        report.wall_clock,
        report.rounds.len() as f64 / report.wall_clock.max(1e-9),
    );
    println!(
        "backbone: {} logical frames ({:.1}/round — O(M), not O(N)), {} bytes sent, {} bytes received",
        messages,
        messages as f64 / report.rounds.len().max(1) as f64,
        report.wire.bytes_sent,
        report.wire.bytes_received,
    );
    if !report.epochs.is_empty() {
        println!(
            "membership epochs crossed: {} (dead shard-masters, in burial order: {:?})",
            report.epochs.len(),
            report.dead_shards,
        );
    }
}

fn shard_main(mut args: std::env::Args) {
    let mut connect: Option<SocketAddr> = None;
    let mut listen: Option<SocketAddr> = None;
    let mut shard: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut bb_drop_p = 0.0;
    let mut bb_dup_p = 0.0;
    let mut bb_seed = 0u64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => {
                connect = Some(parse_addr("--connect", &take_value("--connect", &mut args)))
            }
            "--listen" => listen = Some(parse_addr("--listen", &take_value("--listen", &mut args))),
            "--shard" => shard = Some(parse_usize("--shard", &take_value("--shard", &mut args), 0)),
            "--shards" => {
                shards = Some(parse_usize("--shards", &take_value("--shards", &mut args), 1))
            }
            "--bb-drop-p" => {
                bb_drop_p = parse_prob("--bb-drop-p", &take_value("--bb-drop-p", &mut args))
            }
            "--bb-dup-p" => {
                bb_dup_p = parse_prob("--bb-dup-p", &take_value("--bb-dup-p", &mut args))
            }
            "--bb-seed" => bb_seed = parse_u64("--bb-seed", &take_value("--bb-seed", &mut args)),
            other => {
                eprintln!("error: unknown flag '{other}' for dolbie_node shard");
                std::process::exit(2);
            }
        }
    }
    let (Some(connect), Some(listen), Some(shard), Some(shards)) = (connect, listen, shard, shards)
    else {
        usage()
    };
    if shard >= shards {
        eprintln!("error: --shard {shard} is out of range for --shards {shards}");
        std::process::exit(2);
    }

    let listener = TcpListener::bind(listen).unwrap_or_else(|e| {
        eprintln!("error: cannot listen on {listen}: {e}");
        std::process::exit(1);
    });
    let local = listener.local_addr().expect("bound listener has an address");
    println!("shard {shard}/{shards} listening on {local}, dialing root at {connect}");

    let stream = connect_with_backoff(connect, 10, Duration::from_millis(50), shard as u64)
        .unwrap_or_else(|e| {
            eprintln!("error: cannot reach root at {connect}: {e}");
            std::process::exit(1);
        });
    let mut backbone_fault = FaultPlan::seeded(bb_seed);
    if bb_drop_p > 0.0 {
        backbone_fault = backbone_fault.with_drop_probability(bb_drop_p);
    }
    if bb_dup_p > 0.0 {
        backbone_fault = backbone_fault.with_duplicate_probability(bb_dup_p);
    }
    let opts = ShardMasterOptions {
        shard,
        num_shards: shards,
        frame_timeout: DEFAULT_FRAME_TIMEOUT,
        backbone_fault,
        die_after_round: None,
        die_mid_round: false,
    };
    let report = run_shard_master(stream, &listener, &opts).unwrap_or_else(|e| {
        eprintln!("error: shard-master run failed: {e}");
        std::process::exit(1);
    });
    println!(
        "shard {} done: {} rounds over workers {:?}, {} frames / {} bytes on the worker tier",
        report.shard,
        report.rounds.len(),
        report.range,
        report.wire.frames_sent + report.wire.frames_received,
        report.wire.bytes_sent + report.wire.bytes_received,
    );
}

fn worker_main(mut args: std::env::Args) {
    let mut connect: Option<SocketAddr> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => {
                connect = Some(parse_addr("--connect", &take_value("--connect", &mut args)))
            }
            other => {
                eprintln!("error: unknown flag '{other}' for dolbie_node worker");
                std::process::exit(2);
            }
        }
    }
    let Some(connect) = connect else { usage() };

    let stream =
        connect_with_backoff(connect, 10, Duration::from_millis(50), 0).unwrap_or_else(|e| {
            eprintln!("error: cannot reach master at {connect}: {e}");
            std::process::exit(1);
        });
    let report = run_worker(stream, &WorkerOptions::default()).unwrap_or_else(|e| {
        eprintln!("error: worker run failed: {e}");
        std::process::exit(1);
    });
    println!(
        "worker {} done: {} rounds, final share {:.6}, {} epochs crossed",
        report.worker_id, report.rounds_seen, report.final_share, report.epochs_seen
    );
}
