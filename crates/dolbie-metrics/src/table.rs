//! CSV and Markdown emission for experiment results.
//!
//! The figure-regeneration harness writes one CSV per paper figure into
//! `results/` and appends Markdown tables to EXPERIMENTS.md; this module is
//! the tiny, dependency-free writer behind both.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular table of results: named columns, rows of cells.
///
/// # Examples
///
/// ```
/// use dolbie_metrics::Table;
///
/// let mut t = Table::new(vec!["round", "DOLBIE", "EQU"]);
/// t.push_row(vec!["1".into(), "0.52".into(), "1.90".into()]);
/// assert!(t.to_csv().starts_with("round,DOLBIE,EQU\n"));
/// assert!(t.to_markdown().contains("| round | DOLBIE | EQU |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    pub fn new<S: Into<String>>(columns: Vec<S>) -> Self {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        assert!(!columns.is_empty(), "a table needs at least one column");
        Self { columns, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row width must match the header");
        self.rows.push(row);
    }

    /// Convenience: appends a row of floats formatted with 6 significant
    /// digits.
    pub fn push_numeric_row(&mut self, row: &[f64]) {
        self.push_row(row.iter().map(|v| format!("{v:.6}")).collect());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Renders as CSV (quoting cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        fn quote(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self.columns.iter().map(|c| quote(c)).collect();
        let _ = writeln!(out, "{}", header.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| quote(c)).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Renders as a GitHub-flavored Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ =
            writeln!(out, "|{}|", self.columns.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from directory creation or the write.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips_simple_cells() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1".into(), "x".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,x\n");
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.columns(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["c"]);
        t.push_row(vec!["hello, \"world\"".into()]);
        assert_eq!(t.to_csv(), "c\n\"hello, \"\"world\"\"\"\n");
    }

    #[test]
    fn markdown_has_separator_row() {
        let mut t = Table::new(vec!["x", "y"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn numeric_rows_format_consistently() {
        let mut t = Table::new(vec!["v"]);
        t.push_numeric_row(&[1.0 / 3.0]);
        assert!(t.to_csv().contains("0.333333"));
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("dolbie-metrics-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut t = Table::new(vec!["a"]);
        t.push_row(vec!["1".into()]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }
}
