//! Scalar-sample summaries: mean, deviation, confidence intervals,
//! quantiles.
//!
//! Figures 4, 5 and 11 of the paper report means with 95% confidence
//! intervals over 100 realizations, and box statistics for algorithm
//! overhead. This module provides those summaries without any external
//! statistics dependency.

use std::fmt;

/// Critical value of the standard normal at 97.5% — the paper's 95% CI is
/// `mean ± 1.96 · stderr` over 100 realizations, where the normal
/// approximation is accurate.
pub const Z_95: f64 = 1.959_963_984_540_054;

/// Summary statistics of a sample of `f64` values.
///
/// # Examples
///
/// ```
/// use dolbie_metrics::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.len(), 4);
/// let (lo, hi) = s.ci95();
/// assert!(lo < 2.5 && 2.5 < hi);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    variance: f64,
    min: f64,
    max: f64,
    sorted: Vec<f64>,
}

impl Summary {
    /// Computes the summary of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains a non-finite value.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "summary requires at least one sample");
        assert!(samples.iter().all(|x| x.is_finite()), "samples must be finite");
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Self { count, mean, variance, min: sorted[0], max: sorted[count - 1], sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the summary holds zero samples (never true: construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (zero for a single sample).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        self.std_dev() / (self.count as f64).sqrt()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The normal-approximation 95% confidence interval of the mean,
    /// `(mean − 1.96·se, mean + 1.96·se)`.
    pub fn ci95(&self) -> (f64, f64) {
        let half = Z_95 * self.std_error();
        (self.mean - half, self.mean + half)
    }

    /// Half-width of the 95% confidence interval.
    pub fn ci95_half_width(&self) -> f64 {
        Z_95 * self.std_error()
    }

    /// Linear-interpolation quantile, `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 1 {
            return self.sorted[0];
        }
        let pos = q * (self.count as f64 - 1.0);
        let idx = pos.floor() as usize;
        let frac = pos - idx as f64;
        if idx + 1 >= self.count {
            return self.sorted[self.count - 1];
        }
        self.sorted[idx] * (1.0 - frac) + self.sorted[idx + 1] * frac
    }

    /// Median (`quantile(0.5)`).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The five-number box summary `(min, q1, median, q3, max)` used for
    /// the overhead panel of Fig. 11.
    pub fn box_stats(&self) -> (f64, f64, f64, f64, f64) {
        (self.min, self.quantile(0.25), self.median(), self.quantile(0.75), self.max)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self.ci95();
        write!(
            f,
            "{:.6} ± {:.6} (95% CI [{:.6}, {:.6}], n={})",
            self.mean,
            self.ci95_half_width(),
            lo,
            hi,
            self.count
        )
    }
}

/// Per-round mean ± CI across realizations: given one series per
/// realization (all the same length), returns the per-round [`Summary`] —
/// the data behind the shaded CI bands of Figs. 4–5.
///
/// # Panics
///
/// Panics if `series` is empty or the realizations have unequal lengths.
pub fn per_round_summaries(series: &[Vec<f64>]) -> Vec<Summary> {
    assert!(!series.is_empty(), "need at least one realization");
    let rounds = series[0].len();
    assert!(
        series.iter().all(|s| s.len() == rounds),
        "all realizations must cover the same number of rounds"
    );
    (0..rounds)
        .map(|t| {
            let column: Vec<f64> = series.iter().map(|s| s[t]).collect();
            Summary::from_samples(&column)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95(), (3.5, 3.5));
        assert_eq!(s.median(), 3.5);
        assert_eq!(s.quantile(0.9), 3.5);
    }

    #[test]
    fn ci_shrinks_with_more_samples() {
        let few = Summary::from_samples(&[1.0, 2.0, 3.0]);
        let many: Vec<f64> = (0..300).map(|i| 1.0 + (i % 3) as f64).collect();
        let many = Summary::from_samples(&many);
        assert!(many.ci95_half_width() < few.ci95_half_width());
        assert!((many.mean() - few.mean()).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median(), 2.5);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert!((s.quantile(0.25) - 1.75).abs() < 1e-12);
        let (min, q1, med, q3, max) = s.box_stats();
        assert_eq!(min, 1.0);
        assert_eq!(max, 4.0);
        assert!(q1 <= med && med <= q3);
    }

    #[test]
    fn display_is_informative() {
        let s = Summary::from_samples(&[1.0, 2.0]);
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("95% CI"));
    }

    #[test]
    fn per_round_summaries_aggregate_columns() {
        let series = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![2.0, 30.0]];
        let sums = per_round_summaries(&series);
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].mean(), 2.0);
        assert_eq!(sums[1].mean(), 20.0);
        assert_eq!(sums[0].len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_sample_panics() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "same number of rounds")]
    fn ragged_series_panics() {
        let _ = per_round_summaries(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
