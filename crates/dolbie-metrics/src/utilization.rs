//! Per-worker time decomposition (Fig. 11, upper panel).
//!
//! The paper decomposes each worker's wall-clock time per round into
//! **computation**, **communication**, and **waiting** (idle time at the
//! synchronization barrier). Under synchronous execution, the round takes
//! `l_t = max_i l_{i,t}` for everyone, so worker `i` waits
//! `l_t − l_{i,t}`.

/// One worker's time decomposition accumulated over an episode.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Seconds spent computing (`f^P` components).
    pub computation: f64,
    /// Seconds spent communicating (`f^C` components).
    pub communication: f64,
    /// Seconds spent idle at the barrier (`Σ_t (l_t − l_{i,t})`).
    pub waiting: f64,
}

impl TimeBreakdown {
    /// Total wall-clock seconds attributed to this worker.
    pub fn total(&self) -> f64 {
        self.computation + self.communication + self.waiting
    }

    /// Fraction of time spent busy (computing or communicating).
    /// Returns 1.0 for an all-zero breakdown.
    pub fn utilization(&self) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 1.0;
        }
        (self.computation + self.communication) / total
    }
}

/// Accumulates per-worker breakdowns across rounds.
///
/// # Examples
///
/// ```
/// use dolbie_metrics::UtilizationTracker;
///
/// let mut tracker = UtilizationTracker::new(2);
/// // Worker 0 computes 1.0 s + comm 0.2 s; worker 1 computes 0.5 s + 0.2 s.
/// tracker.record_round(&[1.0, 0.5], &[0.2, 0.2]);
/// let b = tracker.breakdowns();
/// assert_eq!(b[0].waiting, 0.0);                 // the straggler never waits
/// assert!((b[1].waiting - 0.5).abs() < 1e-12);   // 1.2 − 0.7
/// ```
#[derive(Debug, Clone)]
pub struct UtilizationTracker {
    breakdowns: Vec<TimeBreakdown>,
    rounds: usize,
}

impl UtilizationTracker {
    /// Creates a tracker over `n` workers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "at least one worker required");
        Self { breakdowns: vec![TimeBreakdown::default(); n], rounds: 0 }
    }

    /// Records one synchronous round from per-worker computation and
    /// communication times. Waiting time is derived: the round lasts until
    /// the slowest worker finishes, `l_t = max_i (comp_i + comm_i)`.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the tracked worker count.
    pub fn record_round(&mut self, computation: &[f64], communication: &[f64]) {
        assert_eq!(computation.len(), self.breakdowns.len(), "one computation time per worker");
        assert_eq!(communication.len(), self.breakdowns.len(), "one communication time per worker");
        let round_time =
            computation.iter().zip(communication).map(|(&c, &m)| c + m).fold(f64::MIN, f64::max);
        for (i, b) in self.breakdowns.iter_mut().enumerate() {
            b.computation += computation[i];
            b.communication += communication[i];
            b.waiting += round_time - (computation[i] + communication[i]);
        }
        self.rounds += 1;
    }

    /// The accumulated per-worker breakdowns.
    pub fn breakdowns(&self) -> &[TimeBreakdown] {
        &self.breakdowns
    }

    /// Rounds recorded so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The breakdown averaged over workers — the bars of Fig. 11's upper
    /// panel.
    pub fn mean_breakdown(&self) -> TimeBreakdown {
        let n = self.breakdowns.len() as f64;
        let mut mean = TimeBreakdown::default();
        for b in &self.breakdowns {
            mean.computation += b.computation / n;
            mean.communication += b.communication / n;
            mean.waiting += b.waiting / n;
        }
        mean
    }

    /// Mean idle (waiting) time per worker — the headline metric of the
    /// paper's Fig. 11 discussion ("the average idle time among the workers
    /// ... is reduced by ...").
    pub fn mean_idle_time(&self) -> f64 {
        self.mean_breakdown().waiting
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiting_is_relative_to_slowest() {
        let mut t = UtilizationTracker::new(3);
        t.record_round(&[1.0, 2.0, 0.5], &[0.0, 0.0, 0.0]);
        let b = t.breakdowns();
        assert_eq!(b[1].waiting, 0.0);
        assert_eq!(b[0].waiting, 1.0);
        assert_eq!(b[2].waiting, 1.5);
        assert_eq!(t.rounds(), 1);
    }

    #[test]
    fn accumulates_over_rounds() {
        let mut t = UtilizationTracker::new(2);
        t.record_round(&[1.0, 0.5], &[0.1, 0.1]);
        t.record_round(&[0.5, 1.0], &[0.1, 0.1]);
        let b = t.breakdowns();
        assert!((b[0].computation - 1.5).abs() < 1e-12);
        assert!((b[0].communication - 0.2).abs() < 1e-12);
        assert!((b[0].waiting - 0.5).abs() < 1e-12);
        assert!((b[1].waiting - 0.5).abs() < 1e-12);
    }

    #[test]
    fn totals_and_utilization() {
        let b = TimeBreakdown { computation: 3.0, communication: 1.0, waiting: 1.0 };
        assert_eq!(b.total(), 5.0);
        assert!((b.utilization() - 0.8).abs() < 1e-12);
        assert_eq!(TimeBreakdown::default().utilization(), 1.0);
    }

    #[test]
    fn mean_breakdown_averages_workers() {
        let mut t = UtilizationTracker::new(2);
        t.record_round(&[2.0, 1.0], &[0.0, 0.0]);
        let mean = t.mean_breakdown();
        assert!((mean.computation - 1.5).abs() < 1e-12);
        assert!((mean.waiting - 0.5).abs() < 1e-12);
        assert!((t.mean_idle_time() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn balanced_round_has_zero_waiting() {
        let mut t = UtilizationTracker::new(4);
        t.record_round(&[1.0; 4], &[0.5; 4]);
        assert!(t.breakdowns().iter().all(|b| b.waiting == 0.0));
        assert!(t.breakdowns().iter().all(|b| (b.utilization() - 1.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "one computation time per worker")]
    fn mismatched_round_panics() {
        let mut t = UtilizationTracker::new(2);
        t.record_round(&[1.0], &[0.0]);
    }
}
