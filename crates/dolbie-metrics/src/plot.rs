//! A minimal, dependency-free SVG line-chart renderer.
//!
//! The figure-regeneration harness writes CSV series for external tooling,
//! but a reproduction repository is far easier to eyeball with actual
//! pictures. This module renders multi-series line charts (optionally with
//! symmetric confidence bands and a log-scale y-axis) straight to SVG —
//! enough to regenerate the visual shape of the paper's Figs. 3–8 without
//! pulling in a plotting stack.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One plotted series: a name (for the legend), points, and an optional
/// symmetric band half-width per point (for 95% CI shading).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
    /// Optional per-point half-width of a shaded band around `y`.
    pub band: Option<Vec<f64>>,
}

impl Series {
    /// Creates a plain series from points.
    pub fn new<S: Into<String>>(name: S, points: Vec<(f64, f64)>) -> Self {
        Self { name: name.into(), points, band: None }
    }

    /// Creates a series from a `y` vector with `x = 0, 1, 2, ...`.
    pub fn from_values<S: Into<String>>(name: S, values: &[f64]) -> Self {
        Self::new(name, values.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect())
    }

    /// Attaches a symmetric band (e.g. a CI half-width per point).
    ///
    /// # Panics
    ///
    /// Panics if the band length differs from the point count.
    pub fn with_band(mut self, half_widths: Vec<f64>) -> Self {
        assert_eq!(half_widths.len(), self.points.len(), "one band value per point");
        self.band = Some(half_widths);
        self
    }
}

/// Chart-level options.
#[derive(Debug, Clone)]
pub struct PlotConfig {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Use `log10` scaling on the y-axis (all y values must be positive).
    pub log_y: bool,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

impl PlotConfig {
    /// A 860x480 linear-scale chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            log_y: false,
            width: 860,
            height: 480,
        }
    }

    /// Enables log-scale y.
    pub fn with_log_y(mut self) -> Self {
        self.log_y = true;
        self
    }
}

/// A categorical palette that stays readable on white (Okabe–Ito).
const PALETTE: [&str; 8] =
    ["#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#000000", "#F0E442"];

const MARGIN_LEFT: f64 = 72.0;
const MARGIN_RIGHT: f64 = 24.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 56.0;

fn nice_ticks(lo: f64, hi: f64, target: usize) -> Vec<f64> {
    if hi <= lo {
        return vec![lo];
    }
    let raw_step = (hi - lo) / target as f64;
    let magnitude = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / magnitude;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.0 {
        2.0
    } else if norm < 7.0 {
        5.0
    } else {
        10.0
    } * magnitude;
    let start = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut v = start;
    while v <= hi + step * 1e-9 {
        ticks.push(v);
        v += step;
    }
    ticks
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(1e-3..1e4).contains(&a) {
        format!("{v:.1e}")
    } else if a >= 10.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders the chart to an SVG string.
///
/// # Panics
///
/// Panics if no series contains a finite point, or if `log_y` is set and a
/// point has `y <= 0`.
pub fn render_svg(config: &PlotConfig, series: &[Series]) -> String {
    let transform = |y: f64| -> f64 {
        if config.log_y {
            assert!(y > 0.0, "log-scale chart requires positive y values, got {y}");
            y.log10()
        } else {
            y
        }
    };

    // Data extents (bands included).
    let mut x_min = f64::MAX;
    let mut x_max = f64::MIN;
    let mut y_min = f64::MAX;
    let mut y_max = f64::MIN;
    for s in series {
        for (k, &(x, y)) in s.points.iter().enumerate() {
            if !(x.is_finite() && y.is_finite()) {
                continue;
            }
            let half = s.band.as_ref().map_or(0.0, |b| b[k]);
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            let (lo, hi) = if config.log_y {
                (transform((y - half).max(y * 1e-3)), transform(y + half))
            } else {
                (y - half, y + half)
            };
            y_min = y_min.min(lo);
            y_max = y_max.max(hi);
        }
    }
    assert!(x_min <= x_max && y_min <= y_max, "no finite data to plot");
    if y_min == y_max {
        y_min -= 0.5;
        y_max += 0.5;
    }
    if x_min == x_max {
        x_min -= 0.5;
        x_max += 0.5;
    }
    let pad = (y_max - y_min) * 0.05;
    y_min -= pad;
    y_max += pad;

    let w = config.width as f64;
    let h = config.height as f64;
    let plot_w = w - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = h - MARGIN_TOP - MARGIN_BOTTOM;
    let sx = move |x: f64| MARGIN_LEFT + (x - x_min) / (x_max - x_min) * plot_w;
    let sy = move |ty: f64| MARGIN_TOP + (y_max - ty) / (y_max - y_min) * plot_h;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="Helvetica,Arial,sans-serif">"#
    );
    let _ = writeln!(svg, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    let _ = writeln!(
        svg,
        r#"<text x="{:.1}" y="24" font-size="16" text-anchor="middle" font-weight="bold">{}</text>"#,
        MARGIN_LEFT + plot_w / 2.0,
        xml_escape(&config.title)
    );

    // Gridlines + ticks.
    let y_ticks = if config.log_y {
        let lo = y_min.floor() as i64;
        let hi = y_max.ceil() as i64;
        (lo..=hi).map(|e| e as f64).filter(|&e| e >= y_min && e <= y_max).collect()
    } else {
        nice_ticks(y_min, y_max, 6)
    };
    for &ty in &y_ticks {
        let ypx = sy(ty);
        let _ = writeln!(
            svg,
            r##"<line x1="{:.1}" y1="{ypx:.1}" x2="{:.1}" y2="{ypx:.1}" stroke="#dddddd" stroke-width="1"/>"##,
            MARGIN_LEFT,
            MARGIN_LEFT + plot_w
        );
        let label = if config.log_y { fmt_tick(10f64.powf(ty)) } else { fmt_tick(ty) };
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"#,
            MARGIN_LEFT - 6.0,
            ypx + 4.0,
            label
        );
    }
    for &tx in &nice_ticks(x_min, x_max, 8) {
        let xpx = sx(tx);
        let _ = writeln!(
            svg,
            r##"<line x1="{xpx:.1}" y1="{:.1}" x2="{xpx:.1}" y2="{:.1}" stroke="#eeeeee" stroke-width="1"/>"##,
            MARGIN_TOP,
            MARGIN_TOP + plot_h
        );
        let _ = writeln!(
            svg,
            r#"<text x="{xpx:.1}" y="{:.1}" font-size="11" text-anchor="middle">{}</text>"#,
            MARGIN_TOP + plot_h + 16.0,
            fmt_tick(tx)
        );
    }
    // Axes.
    let _ = writeln!(
        svg,
        r##"<rect x="{:.1}" y="{:.1}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#333333"/>"##,
        MARGIN_LEFT, MARGIN_TOP
    );
    let _ = writeln!(
        svg,
        r#"<text x="{:.1}" y="{:.1}" font-size="13" text-anchor="middle">{}</text>"#,
        MARGIN_LEFT + plot_w / 2.0,
        h - 12.0,
        xml_escape(&config.x_label)
    );
    let _ = writeln!(
        svg,
        r#"<text x="16" y="{:.1}" font-size="13" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
        MARGIN_TOP + plot_h / 2.0,
        MARGIN_TOP + plot_h / 2.0,
        xml_escape(&config.y_label)
    );

    // Bands first (under the lines).
    for (k, s) in series.iter().enumerate() {
        let color = PALETTE[k % PALETTE.len()];
        if let Some(band) = &s.band {
            let mut d = String::new();
            for (i, &(x, y)) in s.points.iter().enumerate() {
                let ty = transform((y + band[i]).max(f64::MIN_POSITIVE));
                let cmd = if i == 0 { 'M' } else { 'L' };
                let _ = write!(d, "{cmd}{:.1},{:.1} ", sx(x), sy(ty));
            }
            for (i, &(x, y)) in s.points.iter().enumerate().rev() {
                let lo = if config.log_y { (y - band[i]).max(y * 1e-3) } else { y - band[i] };
                let _ = write!(d, "L{:.1},{:.1} ", sx(x), sy(transform(lo)));
            }
            let _ = writeln!(
                svg,
                r#"<path d="{d}Z" fill="{color}" fill-opacity="0.15" stroke="none"/>"#
            );
        }
    }
    // Lines.
    for (k, s) in series.iter().enumerate() {
        let color = PALETTE[k % PALETTE.len()];
        let mut d = String::new();
        for (i, &(x, y)) in s.points.iter().enumerate() {
            let cmd = if i == 0 { 'M' } else { 'L' };
            let _ = write!(d, "{cmd}{:.1},{:.1} ", sx(x), sy(transform(y)));
        }
        let _ = writeln!(svg, r#"<path d="{d}" fill="none" stroke="{color}" stroke-width="1.8"/>"#);
    }
    // Legend.
    for (k, s) in series.iter().enumerate() {
        let color = PALETTE[k % PALETTE.len()];
        let y = MARGIN_TOP + 8.0 + 16.0 * k as f64;
        let x = MARGIN_LEFT + plot_w - 150.0;
        let _ = writeln!(
            svg,
            r#"<line x1="{x:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{color}" stroke-width="2.5"/>"#,
            x + 22.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="12">{}</text>"#,
            x + 28.0,
            y + 4.0,
            xml_escape(&s.name)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// Renders and writes the chart to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or the write.
///
/// # Panics
///
/// As [`render_svg`].
pub fn write_svg<P: AsRef<Path>>(
    path: P,
    config: &PlotConfig,
    series: &[Series],
) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, render_svg(config, series))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series::from_values("a", &[1.0, 2.0, 1.5, 3.0]),
            Series::from_values("b", &[0.5, 0.6, 0.7, 0.8]).with_band(vec![0.1; 4]),
        ]
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render_svg(&PlotConfig::new("Demo", "round", "latency (s)"), &demo_series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("Demo"));
        assert!(svg.contains("latency (s)"));
        // One legend entry per series and one path per line plus the band.
        assert_eq!(svg.matches("stroke-width=\"1.8\"").count(), 2);
        assert_eq!(svg.matches("fill-opacity=\"0.15\"").count(), 1);
    }

    #[test]
    fn log_scale_renders_decade_ticks() {
        let series = vec![Series::from_values("x", &[0.01, 0.1, 1.0, 10.0])];
        let svg = render_svg(&PlotConfig::new("Log", "round", "cost").with_log_y(), &series);
        assert!(svg.contains(">0.010<") || svg.contains(">1.0e-2<"), "decade label present");
    }

    #[test]
    fn escapes_xml_in_labels() {
        let series = vec![Series::from_values("a<b>&c", &[1.0, 2.0])];
        let svg = render_svg(&PlotConfig::new("T&C", "x<y", "p>q"), &series);
        assert!(svg.contains("a&lt;b&gt;&amp;c"));
        assert!(svg.contains("T&amp;C"));
        assert!(!svg.contains("a<b>"));
    }

    #[test]
    fn constant_series_does_not_degenerate() {
        let series = vec![Series::from_values("flat", &[2.0, 2.0, 2.0])];
        let svg = render_svg(&PlotConfig::new("Flat", "x", "y"), &series);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn nice_ticks_are_round_numbers() {
        let ticks = nice_ticks(0.0, 1.0, 5);
        assert!(ticks.contains(&0.2) || ticks.contains(&0.25) || ticks.contains(&0.5));
        let ticks = nice_ticks(0.0, 103.0, 5);
        assert!(ticks.iter().all(|t| (t % 20.0).abs() < 1e-9 || (t % 25.0).abs() < 1e-9));
        assert_eq!(nice_ticks(1.0, 1.0, 5), vec![1.0]);
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("dolbie-plot-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/demo.svg");
        write_svg(&path, &PlotConfig::new("D", "x", "y"), &demo_series()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("<svg"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "no finite data")]
    fn empty_series_panics() {
        let _ = render_svg(&PlotConfig::new("E", "x", "y"), &[Series::new("e", vec![])]);
    }

    #[test]
    #[should_panic(expected = "positive y")]
    fn log_scale_rejects_non_positive() {
        let series = vec![Series::from_values("bad", &[0.0, 1.0])];
        let _ = render_svg(&PlotConfig::new("L", "x", "y").with_log_y(), &series);
    }
}
