//! Decision-overhead timing (Fig. 11, lower panel).
//!
//! The paper measures "the overhead introduced by the load balancing
//! algorithms" — the wall-clock cost of the *decision update itself*, which
//! is where OPT and OGD lose (instantaneous solves / gradient + projection)
//! and DOLBIE wins (a handful of scalar operations per worker).

use std::time::{Duration, Instant};

/// Collects wall-clock durations of repeated operations (e.g. one balancer
/// update per round).
///
/// # Examples
///
/// ```
/// use dolbie_metrics::OverheadTimer;
///
/// let mut timer = OverheadTimer::new();
/// let out = timer.time(|| 2 + 2);
/// assert_eq!(out, 4);
/// assert_eq!(timer.samples().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OverheadTimer {
    samples: Vec<Duration>,
}

impl OverheadTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times one invocation of `f`, recording its duration and returning
    /// its output.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        out
    }

    /// The recorded durations.
    pub fn samples(&self) -> &[Duration] {
        &self.samples
    }

    /// The recorded durations in microseconds, for summarization.
    pub fn samples_micros(&self) -> Vec<f64> {
        self.samples.iter().map(|d| d.as_secs_f64() * 1e6).collect()
    }

    /// Total recorded time.
    pub fn total(&self) -> Duration {
        self.samples.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_each_invocation() {
        let mut t = OverheadTimer::new();
        for i in 0..5 {
            let v = t.time(|| i * 2);
            assert_eq!(v, i * 2);
        }
        assert_eq!(t.samples().len(), 5);
        assert_eq!(t.samples_micros().len(), 5);
        assert!(t.total() >= Duration::ZERO);
    }

    #[test]
    fn measures_real_work() {
        let mut t = OverheadTimer::new();
        t.time(|| {
            // A tiny but non-zero amount of work.
            let mut acc = 0u64;
            for i in 0..10_000 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert!(t.samples()[0] > Duration::ZERO);
        assert!(t.samples_micros()[0] > 0.0);
    }
}
