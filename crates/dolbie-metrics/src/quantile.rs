//! Streaming quantile estimation (the P² algorithm).
//!
//! Long experiments (thousands of rounds × hundreds of realizations) want
//! latency/overhead quantiles without buffering every sample. This is the
//! classic P² estimator of Jain & Chlamtac (1985): five markers track the
//! quantile with O(1) memory and O(1) updates, adjusted by parabolic
//! interpolation.

/// A streaming estimator of a single quantile.
///
/// # Examples
///
/// ```
/// use dolbie_metrics::P2Quantile;
///
/// let mut median = P2Quantile::new(0.5);
/// for i in 1..=1001 {
///     median.observe(i as f64);
/// }
/// let est = median.estimate().unwrap();
/// assert!((est - 501.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    quantile: f64,
    /// Marker heights (the first 5 observations until initialized).
    heights: [f64; 5],
    /// Marker positions (1-based sample ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile, `q ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside the open interval `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        Self {
            quantile: q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The targeted quantile.
    pub fn quantile(&self) -> f64 {
        self.quantile
    }

    /// Number of samples observed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn observe(&mut self, value: f64) {
        assert!(value.is_finite(), "samples must be finite");
        if self.count < 5 {
            self.heights[self.count] = value;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            }
            return;
        }
        self.count += 1;

        // Find the cell containing the new observation and clamp extremes.
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value >= self.heights[4] {
            self.heights[4] = value;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if value >= self.heights[i] && value < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust the three interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, sign)
                    };
                self.heights[i] = new_height;
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + sign / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + sign) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - sign) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = if sign > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i])
                / (self.positions[j] - self.positions[i]).abs().max(1.0)
    }

    /// The current estimate, or `None` before any sample arrived.
    ///
    /// With fewer than five samples this is the exact sample quantile
    /// (nearest-rank); afterwards, the P² marker estimate.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let mut sorted = self.heights[..self.count].to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let rank = (self.quantile * self.count as f64).ceil() as usize;
            return Some(sorted[rank.clamp(1, self.count) - 1]);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random stream.
    fn lcg_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn exact_quantile(samples: &[f64], q: f64) -> f64 {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[((q * sorted.len() as f64) as usize).min(sorted.len() - 1)]
    }

    #[test]
    fn median_of_uniform_stream_is_close_to_exact() {
        let samples = lcg_stream(42, 20_000);
        let mut p2 = P2Quantile::new(0.5);
        for &s in &samples {
            p2.observe(s);
        }
        let exact = exact_quantile(&samples, 0.5);
        let est = p2.estimate().unwrap();
        assert!((est - exact).abs() < 0.01, "est {est} vs exact {exact}");
        assert_eq!(p2.count(), 20_000);
        assert_eq!(p2.quantile(), 0.5);
    }

    #[test]
    fn tail_quantiles_track_heavy_tails() {
        // A long-tailed stream: x -> 1/(1-u), Pareto-ish.
        let samples: Vec<f64> =
            lcg_stream(7, 50_000).into_iter().map(|u| 1.0 / (1.0 - u * 0.999)).collect();
        for q in [0.9, 0.99] {
            let mut p2 = P2Quantile::new(q);
            for &s in &samples {
                p2.observe(s);
            }
            let exact = exact_quantile(&samples, q);
            let est = p2.estimate().unwrap();
            assert!((est - exact).abs() / exact < 0.15, "q={q}: est {est} vs exact {exact}");
        }
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p2 = P2Quantile::new(0.5);
        assert_eq!(p2.estimate(), None);
        p2.observe(3.0);
        assert_eq!(p2.estimate(), Some(3.0));
        p2.observe(1.0);
        p2.observe(2.0);
        // Median of {1, 2, 3} = 2.
        assert_eq!(p2.estimate(), Some(2.0));
    }

    #[test]
    fn monotone_stream_tracks_midpoint() {
        let mut p2 = P2Quantile::new(0.5);
        for i in 0..10_000 {
            p2.observe(i as f64);
        }
        let est = p2.estimate().unwrap();
        assert!((est - 5_000.0).abs() < 100.0, "est {est}");
    }

    #[test]
    fn constant_stream_is_exact() {
        let mut p2 = P2Quantile::new(0.9);
        for _ in 0..1000 {
            p2.observe(7.0);
        }
        assert_eq!(p2.estimate(), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn degenerate_quantile_is_rejected() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_sample_is_rejected() {
        let mut p2 = P2Quantile::new(0.5);
        p2.observe(f64::NAN);
    }
}
