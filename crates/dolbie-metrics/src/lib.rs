//! # dolbie-metrics
//!
//! Statistics and experiment recording for the DOLBIE reproduction:
//!
//! - [`Summary`] / [`per_round_summaries`] — means, deviations, the 95%
//!   confidence intervals of Figs. 4–5 and the box statistics of Fig. 11;
//! - [`UtilizationTracker`] — the computation / communication / waiting
//!   decomposition of Fig. 11's upper panel;
//! - [`OverheadTimer`] — wall-clock timing of decision updates (Fig. 11's
//!   lower panel);
//! - [`Table`] — CSV / Markdown emission for `results/` and EXPERIMENTS.md;
//! - [`plot`] — a dependency-free SVG line-chart renderer so the harness
//!   can emit actual figures next to the CSVs;
//! - [`P2Quantile`] — O(1)-memory streaming quantiles (the P² algorithm)
//!   for long-running latency telemetry.
//!
//! The crate is deliberately dependency-free so the measurement layer adds
//! no noise of its own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plot;
mod quantile;
mod summary;
mod table;
mod timer;
mod utilization;

pub use plot::{render_svg, write_svg, PlotConfig, Series};
pub use quantile::P2Quantile;
pub use summary::{per_round_summaries, Summary, Z_95};
pub use table::Table;
pub use timer::OverheadTimer;
pub use utilization::{TimeBreakdown, UtilizationTracker};
