//! # dolbie-baselines
//!
//! The comparison set of §VI-B of the DOLBIE paper, implemented against the
//! same [`dolbie_core::LoadBalancer`] interface as DOLBIE so
//! every experiment drives all algorithms identically:
//!
//! | Algorithm | Module | Update rule |
//! |---|---|---|
//! | EQU | [`equ`] | static `1/N` split |
//! | OGD | [`ogd`] | projected subgradient step on the max-cost |
//! | ABS | [`abs`] | inverse-historical-cost reassignment every `P` rounds |
//! | LB-BSP | [`lbbsp`] | fixed `Δ`-transfer from straggler to fastest after `D` steady rounds |
//! | OPT | [`opt`] | clairvoyant per-round minimizer (dynamic-regret comparator) |
//!
//! The [`simplex`] module supplies the Euclidean projection OGD requires
//! (and DOLBIE, by design, does not).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abs;
pub mod equ;
pub mod lbbsp;
pub mod ogd;
pub mod opt;
pub mod simplex;

pub use abs::Abs;
pub use equ::Equ;
pub use lbbsp::LbBsp;
pub use ogd::Ogd;
pub use opt::ClairvoyantOpt;

use dolbie_core::{Environment, LoadBalancer};

/// Builds the paper's full §VI comparison suite — EQU, OGD, ABS, LB-BSP,
/// OPT, and DOLBIE itself — with the experimental hyper-parameters of the
/// paper (`β = α_1 = 0.001`, `P = D = 5`, `Δ = 5/B` with `B = 256`), all
/// initialized at the uniform split.
///
/// `env` seeds OPT's clairvoyance and must be a copy of the environment the
/// episode will actually run on.
///
/// # Examples
///
/// ```
/// use dolbie_baselines::paper_suite;
/// use dolbie_core::environment::StaticLinearEnvironment;
///
/// let env = StaticLinearEnvironment::from_slopes(vec![2.0, 1.0]);
/// let suite = paper_suite(2, env);
/// let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
/// assert_eq!(names, ["EQU", "OGD", "ABS", "LB-BSP", "DOLBIE", "OPT"]);
/// ```
pub fn paper_suite<E>(n: usize, env: E) -> Vec<Box<dyn LoadBalancer>>
where
    E: Environment + Clone + 'static,
{
    vec![
        Box::new(Equ::new(n)),
        Box::new(Ogd::new(n, 0.001)),
        Box::new(Abs::new(n, 5)),
        Box::new(LbBsp::new(n, 5.0 / 256.0, 5)),
        Box::new(dolbie_core::Dolbie::with_config(
            dolbie_core::Allocation::uniform(n),
            dolbie_core::DolbieConfig::new().with_initial_alpha(0.001),
        )),
        Box::new(ClairvoyantOpt::new(env)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dolbie_core::environment::StaticLinearEnvironment;
    use dolbie_core::{run_episode, EpisodeOptions};

    #[test]
    fn suite_runs_end_to_end_and_opt_wins() {
        let env = StaticLinearEnvironment::from_slopes(vec![6.0, 1.0, 2.0, 1.5]);
        let mut totals = Vec::new();
        for mut balancer in paper_suite(4, env.clone()) {
            let mut driver = env.clone();
            let trace = run_episode(balancer.as_mut(), &mut driver, EpisodeOptions::new(80));
            totals.push((trace.algorithm.clone(), trace.total_cost()));
        }
        let opt_total = totals.iter().find(|(n, _)| n == "OPT").unwrap().1;
        for (name, total) in &totals {
            assert!(
                opt_total <= total + 1e-6,
                "OPT ({opt_total}) must lower-bound {name} ({total})"
            );
        }
        // And DOLBIE beats the static EQU baseline on this instance.
        let equ = totals.iter().find(|(n, _)| n == "EQU").unwrap().1;
        let dolbie = totals.iter().find(|(n, _)| n == "DOLBIE").unwrap().1;
        assert!(dolbie < equ, "DOLBIE ({dolbie}) should beat EQU ({equ})");
    }
}
