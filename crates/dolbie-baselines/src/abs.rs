//! Adaptive Batch Size (ABS), after Su et al. (reference \[3\] in the paper).

use dolbie_core::{Allocation, LoadBalancer, Observation};

/// The ABS baseline of §VI-B: every `P` rounds, reassign workload
/// **inversely proportional to each worker's historical local cost** over
/// the window (§II-B: "balance the workload by updating the decisions
/// inversely proportional to the historical local cost of each worker").
///
/// The rule looks sensible but has two structural flaws that the paper
/// exploits and that this implementation faithfully reproduces:
///
/// 1. **Wrong fixed point.** `b_i ∝ 1/l̄_i` stabilizes where `b_i · l_i`
///    is equal across workers — equal *work × time*, not equal time. For
///    linear costs `l_i = a_i b_i` the fixed point is `b_i ∝ 1/√a_i`,
///    leaving the slow workers with strictly higher latency than the fast
///    ones (suboptimal by up to `√(a_max/a_min)`), and a load-independent
///    communication term skews it further.
/// 2. **Oscillation.** The update is a fixed-point iteration
///    `b ← normalize(1/l(b))` applied once per window; away from the fixed
///    point it over-corrects, producing the "radical fluctuation" and the
///    step-like latency plots of Figs. 3–5.
///
/// # Examples
///
/// ```
/// use dolbie_baselines::Abs;
/// use dolbie_core::LoadBalancer;
///
/// let abs = Abs::new(4, 5); // window P = 5 as in the paper's experiments
/// assert_eq!(abs.allocation().num_workers(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Abs {
    x: Allocation,
    window: usize,
    rounds_in_window: usize,
    latency_sums: Vec<f64>,
}

impl Abs {
    /// Creates ABS over `n` workers with tuning period `P = window` (the
    /// paper's experiments use `P = 5`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `window == 0`.
    pub fn new(n: usize, window: usize) -> Self {
        assert!(window > 0, "tuning period must be positive");
        Self { x: Allocation::uniform(n), window, rounds_in_window: 0, latency_sums: vec![0.0; n] }
    }

    /// The tuning period `P`.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl LoadBalancer for Abs {
    fn name(&self) -> &str {
        "ABS"
    }

    fn allocation(&self) -> &Allocation {
        &self.x
    }

    fn observe(&mut self, observation: &Observation<'_>) {
        let n = observation.num_workers();
        assert_eq!(n, self.x.num_workers(), "observation covers a different worker set");
        for i in 0..n {
            self.latency_sums[i] += observation.local_costs()[i];
        }
        self.rounds_in_window += 1;
        if self.rounds_in_window < self.window {
            return;
        }
        // Window boundary: shares inversely proportional to mean latency.
        let weights: Vec<f64> = self
            .latency_sums
            .iter()
            .map(|&l| {
                let mean = l / self.window as f64;
                // A worker with (essentially) zero observed latency is
                // treated as very fast rather than infinitely fast.
                1.0 / mean.max(1e-12)
            })
            .collect();
        if let Ok(next) = Allocation::from_weights(weights) {
            self.x = next;
        }
        self.rounds_in_window = 0;
        self.latency_sums.iter_mut().for_each(|l| *l = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dolbie_core::cost::{DynCost, LinearCost};

    fn step(abs: &mut Abs, costs: &[DynCost], t: usize) {
        let played = abs.allocation().clone();
        let obs = Observation::from_costs(t, &played, costs);
        abs.observe(&obs);
    }

    #[test]
    fn updates_only_at_window_boundaries() {
        let mut abs = Abs::new(2, 3);
        let costs: Vec<DynCost> =
            vec![Box::new(LinearCost::new(4.0, 0.0)), Box::new(LinearCost::new(1.0, 0.0))];
        let initial = abs.allocation().clone();
        step(&mut abs, &costs, 0);
        assert_eq!(abs.allocation(), &initial, "no update mid-window");
        step(&mut abs, &costs, 1);
        assert_eq!(abs.allocation(), &initial);
        step(&mut abs, &costs, 2);
        assert_ne!(abs.allocation(), &initial, "update at the window boundary");
    }

    #[test]
    fn cycles_forever_on_static_linear_costs() {
        // For l_i = a_i x_i the b ∝ 1/l̄ map has an exact 2-cycle from the
        // uniform start (0.5 → a1/(a0+a1) → 0.5 → ...): ABS never settles
        // even on a *static* instance, and its time-averaged global cost
        // stays well above the optimum — the paper's §II-B critique made
        // precise.
        let slopes = [9.0, 1.0];
        let costs: Vec<DynCost> =
            slopes.iter().map(|&a| Box::new(LinearCost::new(a, 0.0)) as DynCost).collect();
        let mut abs = Abs::new(2, 1);
        let mut shares = Vec::new();
        let mut total_cost = 0.0;
        for t in 0..200 {
            let played = abs.allocation().clone();
            let obs = Observation::from_costs(t, &played, &costs);
            total_cost += obs.global_cost();
            abs.observe(&obs);
            shares.push(abs.allocation().share(0));
        }
        let late = &shares[190..];
        let swing = late.iter().cloned().fold(f64::MIN, f64::max)
            - late.iter().cloned().fold(f64::MAX, f64::min);
        assert!(swing > 0.3, "ABS must keep cycling, swing = {swing} ({late:?})");
        let opt = dolbie_core::instantaneous_minimizer(&costs).unwrap();
        let mean_cost = total_cost / 200.0;
        assert!(
            mean_cost > 1.5 * opt.level,
            "time-averaged ABS cost {mean_cost} must sit well above OPT {}",
            opt.level
        );
    }

    #[test]
    fn iteration_oscillates_away_from_fixed_point() {
        // Starting from uniform on a skewed instance, consecutive window
        // updates over-correct: the share of the slow worker swings.
        let costs: Vec<DynCost> =
            vec![Box::new(LinearCost::new(16.0, 0.0)), Box::new(LinearCost::new(1.0, 0.0))];
        let mut abs = Abs::new(2, 1);
        let mut shares = Vec::new();
        for t in 0..6 {
            step(&mut abs, &costs, t);
            shares.push(abs.allocation().share(0));
        }
        // x0: 0.5 -> 1/17 ≈ 0.059 -> then overshoots back up.
        assert!(shares[0] < 0.1, "first correction crashes the slow share: {shares:?}");
        assert!(shares[1] > shares[0] * 1.5, "then it rebounds: {shares:?}");
    }

    #[test]
    fn feasibility_always_holds() {
        let mut abs = Abs::new(4, 2);
        let costs: Vec<DynCost> = vec![
            Box::new(LinearCost::new(10.0, 0.5)),
            Box::new(LinearCost::new(0.1, 0.0)),
            Box::new(LinearCost::new(3.0, 0.2)),
            Box::new(LinearCost::new(1.0, 1.0)),
        ];
        for t in 0..40 {
            step(&mut abs, &costs, t);
            let sum: f64 = abs.allocation().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(abs.allocation().iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn zero_latency_worker_is_treated_as_fast() {
        // A pure-plateau worker reporting ~zero latency should attract
        // (essentially all) work without producing NaNs.
        let costs: Vec<DynCost> =
            vec![Box::new(LinearCost::new(0.0, 0.0)), Box::new(LinearCost::new(1.0, 0.0))];
        let mut abs = Abs::new(2, 1);
        step(&mut abs, &costs, 0);
        assert!(abs.allocation().share(0) > 0.999);
        assert!(abs.allocation().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn accessors_and_name() {
        let abs = Abs::new(2, 5);
        assert_eq!(abs.window(), 5);
        assert_eq!(abs.name(), "ABS");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_is_rejected() {
        let _ = Abs::new(2, 0);
    }
}
