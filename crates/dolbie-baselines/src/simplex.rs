//! Euclidean projection onto the probability simplex.
//!
//! The OGD baseline (§VI-B) needs `π_F(v) = argmin_{x ∈ Δ} ||x − v||₂`
//! after each gradient step; the paper cites the sort-based method of
//! Blondel et al. \[39\] / Liu & Ye \[31\]. Two classic algorithms are
//! provided:
//!
//! - [`project_sorted`] — the `O(N log N)` sort-and-threshold method, and
//! - [`project_michelot`] — Michelot's iterative active-set method,
//!
//! which agree to machine precision (verified by property tests). The
//! existence of this module is itself part of the paper's point: DOLBIE
//! never needs it.

use dolbie_core::Allocation;

/// Projects `v` onto the probability simplex with the sort-and-threshold
/// algorithm (`O(N log N)`).
///
/// # Panics
///
/// Panics if `v` is empty or contains a non-finite value.
///
/// # Examples
///
/// ```
/// use dolbie_baselines::simplex::project_sorted;
///
/// let x = project_sorted(&[0.9, 0.5]);
/// // Shift both by the same θ: (0.9 − θ) + (0.5 − θ) = 1 ⇒ θ = 0.2.
/// assert!((x.share(0) - 0.7).abs() < 1e-12);
/// assert!((x.share(1) - 0.3).abs() < 1e-12);
/// ```
pub fn project_sorted(v: &[f64]) -> Allocation {
    assert!(!v.is_empty(), "cannot project an empty vector");
    assert!(v.iter().all(|x| x.is_finite()), "projection input must be finite");
    let mut u = v.to_vec();
    u.sort_by(|a, b| b.partial_cmp(a).expect("finite values compare"));
    let mut cumulative = 0.0;
    let mut theta = 0.0;
    for (j, &uj) in u.iter().enumerate() {
        cumulative += uj;
        let candidate = (cumulative - 1.0) / (j as f64 + 1.0);
        if uj - candidate > 0.0 {
            theta = candidate;
        }
    }
    let shares: Vec<f64> = v.iter().map(|&x| (x - theta).max(0.0)).collect();
    Allocation::from_update(shares).expect("simplex projection is feasible by construction")
}

/// Projects `v` onto the probability simplex with Michelot's active-set
/// algorithm.
///
/// Usually faster than sorting when few coordinates end up clipped; used
/// here primarily as an independent implementation to cross-validate
/// [`project_sorted`].
///
/// # Panics
///
/// Panics if `v` is empty or contains a non-finite value.
pub fn project_michelot(v: &[f64]) -> Allocation {
    assert!(!v.is_empty(), "cannot project an empty vector");
    assert!(v.iter().all(|x| x.is_finite()), "projection input must be finite");
    let mut active: Vec<bool> = vec![true; v.len()];
    let mut active_count = v.len();
    let mut theta;
    loop {
        let sum: f64 = v.iter().zip(&active).filter(|&(_, &a)| a).map(|(&x, _)| x).sum();
        theta = (sum - 1.0) / active_count as f64;
        let mut removed = 0;
        for (x, a) in v.iter().zip(active.iter_mut()) {
            if *a && *x - theta <= 0.0 {
                *a = false;
                removed += 1;
            }
        }
        if removed == 0 {
            break;
        }
        active_count -= removed;
        // At least one coordinate always survives: the maximum.
        debug_assert!(active_count > 0, "projection emptied the active set");
    }
    let shares: Vec<f64> = v.iter().map(|&x| (x - theta).max(0.0)).collect();
    Allocation::from_update(shares).expect("simplex projection is feasible by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_on_simplex_is_fixed() {
        let v = [0.2, 0.3, 0.5];
        let x = project_sorted(&v);
        for (a, b) in x.iter().zip(&v) {
            assert!((a - b).abs() < 1e-12);
        }
        let y = project_michelot(&v);
        for (a, b) in y.iter().zip(&v) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn clips_negative_coordinates() {
        let x = project_sorted(&[1.5, -0.8]);
        assert_eq!(x.share(0), 1.0);
        assert_eq!(x.share(1), 0.0);
    }

    #[test]
    fn preserves_coordinate_order() {
        let v = [0.9, 0.1, 0.5, 0.5];
        let x = project_sorted(&v);
        assert!(x.share(0) >= x.share(2));
        assert!(x.share(2) >= x.share(1));
        assert_eq!(x.share(2), x.share(3));
    }

    #[test]
    fn single_coordinate_maps_to_one() {
        assert_eq!(project_sorted(&[42.0]).share(0), 1.0);
        assert_eq!(project_michelot(&[-3.0]).share(0), 1.0);
    }

    #[test]
    fn all_equal_input_maps_to_uniform() {
        let x = project_michelot(&[7.0; 5]);
        for i in 0..5 {
            assert!((x.share(i) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_is_idempotent() {
        let v = [2.0, -1.0, 0.4, 0.9];
        let once = project_sorted(&v);
        let twice = project_sorted(once.as_slice());
        assert!(once.l2_distance(&twice) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        let _ = project_sorted(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_input_panics() {
        let _ = project_michelot(&[f64::NAN, 1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Both algorithms agree on arbitrary inputs.
        #[test]
        fn sorted_and_michelot_agree(v in proptest::collection::vec(-10.0f64..10.0, 1..40)) {
            let a = project_sorted(&v);
            let b = project_michelot(&v);
            prop_assert!(a.l2_distance(&b) < 1e-9, "{a} vs {b}");
        }

        /// The projection is no farther from the input than any sampled
        /// feasible point (optimality certificate by sampling).
        #[test]
        fn projection_is_closest(
            v in proptest::collection::vec(-5.0f64..5.0, 2..10),
            w in proptest::collection::vec(0.01f64..1.0, 2..10),
        ) {
            let n = v.len().min(w.len());
            let p = project_sorted(&v[..n]);
            let candidate = Allocation::from_weights(w[..n].to_vec()).unwrap();
            let dist = |x: &Allocation| -> f64 {
                x.iter().zip(&v[..n]).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
            };
            prop_assert!(dist(&p) <= dist(&candidate) + 1e-9);
        }

        /// Output is always on the simplex.
        #[test]
        fn output_is_feasible(v in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
            let p = project_michelot(&v);
            let sum: f64 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&x| x >= 0.0));
        }

        /// Translation invariance: projecting v and v + c·1 gives the same
        /// point (a known property of the simplex projection).
        #[test]
        fn translation_invariance(v in proptest::collection::vec(-5.0f64..5.0, 2..20),
                                  c in -3.0f64..3.0) {
            let shifted: Vec<f64> = v.iter().map(|x| x + c).collect();
            let a = project_sorted(&v);
            let b = project_sorted(&shifted);
            prop_assert!(a.l2_distance(&b) < 1e-9);
        }
    }
}
