//! Load-Balanced Bulk Synchronous Parallel (LB-BSP), after Chen et al.
//! (reference \[6\] in the paper).

use dolbie_core::{Allocation, LoadBalancer, Observation};

/// The LB-BSP baseline of §VI-B: "if the fastest worker in the previous
/// round preceded the straggler for consecutive `D` rounds, the workload of
/// the straggler ... is reduced by `Δ`. The same amount of work `Δ` is
/// additionally assigned to the fastest worker."
///
/// Two design choices the paper critiques are faithfully reproduced:
///
/// 1. only *two* workers (fastest and straggler) move per update, and
/// 2. the increment `Δ` is a **prescribed fixed amount**, blind to how
///    heterogeneous the system actually is — so convergence takes many
///    rounds and the final accuracy is limited by the quantization `Δ`.
///
/// # Examples
///
/// ```
/// use dolbie_baselines::LbBsp;
/// use dolbie_core::LoadBalancer;
///
/// // Δ = 5 samples of a 256-sample batch, D = 5 rounds (the paper's setup).
/// let lb = LbBsp::new(4, 5.0 / 256.0, 5);
/// assert_eq!(lb.allocation().num_workers(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct LbBsp {
    x: Allocation,
    delta: f64,
    patience: usize,
    consecutive: usize,
    last_fastest: Option<usize>,
}

impl LbBsp {
    /// Creates LB-BSP over `n` workers moving a share of `delta` from the
    /// straggler to the fastest worker after the same worker has been
    /// fastest for `patience` consecutive rounds.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `delta` is not in `(0, 1)`, or `patience == 0`.
    pub fn new(n: usize, delta: f64, patience: usize) -> Self {
        assert!(delta.is_finite() && delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        assert!(patience > 0, "patience D must be positive");
        Self { x: Allocation::uniform(n), delta, patience, consecutive: 0, last_fastest: None }
    }

    /// The fixed increment `Δ` (as a share of the total workload).
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The required consecutive-rounds count `D`.
    pub fn patience(&self) -> usize {
        self.patience
    }

    fn fastest(observation: &Observation<'_>) -> usize {
        let costs = observation.local_costs();
        let mut best = 0;
        for (i, &c) in costs.iter().enumerate() {
            if c < costs[best] {
                best = i;
            }
        }
        best
    }
}

impl LoadBalancer for LbBsp {
    fn name(&self) -> &str {
        "LB-BSP"
    }

    fn allocation(&self) -> &Allocation {
        &self.x
    }

    fn observe(&mut self, observation: &Observation<'_>) {
        let n = observation.num_workers();
        assert_eq!(n, self.x.num_workers(), "observation covers a different worker set");
        if n < 2 {
            return;
        }
        let fastest = Self::fastest(observation);
        let straggler = observation.straggler();
        if Some(fastest) == self.last_fastest {
            self.consecutive += 1;
        } else {
            self.last_fastest = Some(fastest);
            self.consecutive = 1;
        }
        if self.consecutive < self.patience || fastest == straggler {
            return;
        }
        // Move Δ from the straggler to the fastest worker, clamped so the
        // straggler's share stays non-negative.
        let moved = self.delta.min(self.x.share(straggler));
        if moved <= 0.0 {
            return;
        }
        let mut shares = self.x.as_slice().to_vec();
        shares[straggler] -= moved;
        shares[fastest] += moved;
        self.x = Allocation::from_update(shares).expect("Δ-transfer preserves feasibility");
        self.consecutive = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dolbie_core::cost::{DynCost, LinearCost};

    fn step(lb: &mut LbBsp, costs: &[DynCost], t: usize) {
        let played = lb.allocation().clone();
        let obs = Observation::from_costs(t, &played, costs);
        lb.observe(&obs);
    }

    fn skewed_costs() -> Vec<DynCost> {
        vec![
            Box::new(LinearCost::new(8.0, 0.0)),
            Box::new(LinearCost::new(1.0, 0.0)),
            Box::new(LinearCost::new(2.0, 0.0)),
        ]
    }

    #[test]
    fn waits_for_patience_then_moves_delta() {
        let mut lb = LbBsp::new(3, 0.05, 3);
        let costs = skewed_costs();
        let initial = lb.allocation().clone();
        step(&mut lb, &costs, 0);
        step(&mut lb, &costs, 1);
        assert_eq!(lb.allocation(), &initial, "patience not yet reached");
        step(&mut lb, &costs, 2);
        let x = lb.allocation();
        assert!((x.share(0) - (1.0 / 3.0 - 0.05)).abs() < 1e-12, "straggler sheds Δ");
        assert!((x.share(1) - (1.0 / 3.0 + 0.05)).abs() < 1e-12, "fastest gains Δ");
        assert!((x.share(2) - 1.0 / 3.0).abs() < 1e-12, "bystander untouched");
    }

    #[test]
    fn counter_resets_when_fastest_changes() {
        let mut lb = LbBsp::new(2, 0.1, 2);
        let a: Vec<DynCost> =
            vec![Box::new(LinearCost::new(4.0, 0.0)), Box::new(LinearCost::new(1.0, 0.0))];
        let b: Vec<DynCost> =
            vec![Box::new(LinearCost::new(1.0, 0.0)), Box::new(LinearCost::new(4.0, 0.0))];
        step(&mut lb, &a, 0); // fastest = 1, streak 1
        step(&mut lb, &b, 1); // fastest = 0, streak resets to 1
        step(&mut lb, &a, 2); // fastest = 1, streak 1 again
        assert_eq!(lb.allocation(), &Allocation::uniform(2), "no transfer yet");
        step(&mut lb, &a, 3); // streak 2 -> transfer
        assert_ne!(lb.allocation(), &Allocation::uniform(2));
    }

    #[test]
    fn transfer_clamps_at_zero_share() {
        let mut lb = LbBsp::new(2, 0.4, 1);
        let costs: Vec<DynCost> =
            vec![Box::new(LinearCost::new(100.0, 0.0)), Box::new(LinearCost::new(0.01, 0.0))];
        for t in 0..10 {
            step(&mut lb, &costs, t);
            assert!(lb.allocation().iter().all(|&x| x >= 0.0));
        }
        // Straggler fully drained but never negative.
        assert!(lb.allocation().share(0) < 1e-12);
        assert!((lb.allocation().share(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn converges_slower_than_quantization_allows() {
        // With Δ = 0.05 the terminal allocation can only be a multiple of
        // Δ away from uniform: verify the quantization artifact the paper
        // points out.
        let mut lb = LbBsp::new(2, 0.05, 1);
        let costs: Vec<DynCost> =
            vec![Box::new(LinearCost::new(3.0, 0.0)), Box::new(LinearCost::new(1.0, 0.0))];
        for t in 0..100 {
            step(&mut lb, &costs, t);
        }
        let x0 = lb.allocation().share(0);
        let steps_from_uniform = (0.5 - x0) / 0.05;
        assert!(
            (steps_from_uniform - steps_from_uniform.round()).abs() < 1e-9,
            "allocation must sit on the Δ-grid, got {x0}"
        );
        // Oscillates around the optimum 0.25 within one Δ.
        assert!((x0 - 0.25).abs() <= 0.05 + 1e-9);
    }

    #[test]
    fn single_worker_is_noop() {
        let mut lb = LbBsp::new(1, 0.1, 1);
        let costs: Vec<DynCost> = vec![Box::new(LinearCost::new(1.0, 0.0))];
        step(&mut lb, &costs, 0);
        assert_eq!(lb.allocation().share(0), 1.0);
    }

    #[test]
    fn accessors_and_name() {
        let lb = LbBsp::new(3, 5.0 / 256.0, 5);
        assert!((lb.delta() - 5.0 / 256.0).abs() < 1e-12);
        assert_eq!(lb.patience(), 5);
        assert_eq!(lb.name(), "LB-BSP");
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn delta_of_one_is_rejected() {
        let _ = LbBsp::new(2, 1.0, 1);
    }
}
