//! Equal assignment (EQU).

use dolbie_core::{Allocation, LoadBalancer, Observation};

/// The EQU baseline: every worker processes `1/N` of the workload in every
/// round, regardless of observed costs.
///
/// This "frequently assumed in the analysis of distributed training"
/// policy (§VI-B) is the natural lower anchor: it ignores heterogeneity
/// entirely, so its global cost is pinned to the slowest worker.
///
/// # Examples
///
/// ```
/// use dolbie_baselines::Equ;
/// use dolbie_core::LoadBalancer;
///
/// let equ = Equ::new(4);
/// assert_eq!(equ.allocation().share(2), 0.25);
/// ```
#[derive(Debug, Clone)]
pub struct Equ {
    x: Allocation,
}

impl Equ {
    /// Creates EQU over `n` workers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self { x: Allocation::uniform(n) }
    }
}

impl LoadBalancer for Equ {
    fn name(&self) -> &str {
        "EQU"
    }

    fn allocation(&self) -> &Allocation {
        &self.x
    }

    fn observe(&mut self, _observation: &Observation<'_>) {
        // Intentionally static.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dolbie_core::cost::{DynCost, LinearCost};

    #[test]
    fn never_moves() {
        let mut equ = Equ::new(3);
        let costs: Vec<DynCost> =
            (0..3).map(|i| Box::new(LinearCost::new(1.0 + i as f64, 0.0)) as DynCost).collect();
        for t in 0..5 {
            let played = equ.allocation().clone();
            let obs = Observation::from_costs(t, &played, &costs);
            equ.observe(&obs);
            assert_eq!(equ.allocation(), &Allocation::uniform(3));
        }
        assert_eq!(equ.name(), "EQU");
    }
}
