//! The clairvoyant Dynamic Optimum (OPT) baseline.

use dolbie_core::{
    instantaneous_minimizer_cached, Allocation, Environment, LoadBalancer, Observation, OracleCache,
};

/// The OPT baseline of §VI-B: "we assume a priori knowledge of all system
/// variables, and we solve the instantaneous optimization problem in each
/// round" — the comparator in the definition of dynamic regret. As the
/// paper notes, "OPT cannot be implemented in reality due to the lack of
/// future information".
///
/// Clairvoyance is realized by giving OPT *its own copy* of the (seeded,
/// deterministic) environment: before each round it peeks at the cost
/// functions that copy will reveal and plays the oracle solution. This
/// requires the environment to replay identically, which all environments
/// in this workspace do.
///
/// # Examples
///
/// ```
/// use dolbie_baselines::ClairvoyantOpt;
/// use dolbie_core::environment::StaticLinearEnvironment;
/// use dolbie_core::LoadBalancer;
///
/// let env = StaticLinearEnvironment::from_slopes(vec![4.0, 1.0]);
/// let opt = ClairvoyantOpt::new(env.clone());
/// // OPT already plays the minimizer in round 0: x = [0.2, 0.8].
/// assert!((opt.allocation().share(0) - 0.2).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct ClairvoyantOpt<E> {
    env: E,
    x: Allocation,
    // Consecutive rounds' optimal levels are close, so each solve
    // warm-starts from the previous one.
    cache: OracleCache,
}

impl<E: Environment> ClairvoyantOpt<E> {
    /// Creates OPT over a private copy of the environment, pre-solving
    /// round 0.
    ///
    /// # Panics
    ///
    /// Panics if the environment produces cost functions the oracle cannot
    /// solve (violating the [`CostFunction`](dolbie_core::cost::CostFunction)
    /// contract).
    pub fn new(mut env: E) -> Self {
        let mut cache = OracleCache::new();
        let costs = env.reveal(0);
        let x = instantaneous_minimizer_cached(&costs, &mut cache)
            .expect("environment produced unusable cost functions")
            .allocation;
        Self { env, x, cache }
    }
}

impl<E: Environment> LoadBalancer for ClairvoyantOpt<E> {
    fn name(&self) -> &str {
        "OPT"
    }

    fn allocation(&self) -> &Allocation {
        &self.x
    }

    fn observe(&mut self, observation: &Observation<'_>) {
        // Pre-solve the next round on the private environment copy,
        // warm-starting from the level just played.
        let next_round = observation.round() + 1;
        let costs = self.env.reveal(next_round);
        self.x = instantaneous_minimizer_cached(&costs, &mut self.cache)
            .expect("environment produced unusable cost functions")
            .allocation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dolbie_core::environment::{RotatingStragglerEnvironment, StaticLinearEnvironment};
    use dolbie_core::{run_episode, EpisodeOptions};

    #[test]
    fn tracks_the_per_round_minimizer_exactly() {
        let env = RotatingStragglerEnvironment::new(3, 4, 6.0, 1.0);
        let mut opt = ClairvoyantOpt::new(env.clone());
        let mut driver_env = env;
        let trace = run_episode(&mut opt, &mut driver_env, EpisodeOptions::new(20).with_optimum());
        let tracker = trace.regret().unwrap();
        assert!(
            tracker.dynamic_regret().abs() < 1e-6,
            "OPT must have (numerically) zero dynamic regret, got {}",
            tracker.dynamic_regret()
        );
    }

    #[test]
    fn beats_every_online_algorithm_on_static_instance() {
        let env = StaticLinearEnvironment::from_slopes(vec![5.0, 1.0, 2.0]);
        let mut opt = ClairvoyantOpt::new(env.clone());
        let mut driver = env.clone();
        let opt_trace = run_episode(&mut opt, &mut driver, EpisodeOptions::new(30));
        let mut dolbie = dolbie_core::Dolbie::new(3);
        let mut driver2 = env;
        let dolbie_trace = run_episode(&mut dolbie, &mut driver2, EpisodeOptions::new(30));
        assert!(opt_trace.total_cost() <= dolbie_trace.total_cost() + 1e-9);
    }

    #[test]
    fn name_is_stable() {
        let env = StaticLinearEnvironment::from_slopes(vec![1.0]);
        assert_eq!(ClairvoyantOpt::new(env).name(), "OPT");
    }
}
