//! Projected online (sub)gradient descent (OGD).

use crate::simplex::project_sorted;
use dolbie_core::{Allocation, LoadBalancer, Observation};

/// The OGD baseline of §VI-B: `x_{t+1} = π_F(x_t − β g̃_t)`, where `g̃_t`
/// is a subgradient of the global cost `f_t(x) = max_i f_{i,t}(x_i)` at
/// `x_t` and `π_F` is the Euclidean projection onto the simplex.
///
/// A valid subgradient of the pointwise max at `x_t` is
/// `f'_{s_t,t}(x_{s_t,t}) · e_{s_t}`: only the straggler's coordinate is
/// active. This is why, as the paper observes, "the update in OGD ...
/// occurs only at the fastest and slowest workers" and convergence is slow
/// compared to DOLBIE, where *all* non-stragglers move.
///
/// Unlike DOLBIE, OGD needs a derivative (numeric if the cost has no
/// closed form) and a projection every round.
///
/// # Examples
///
/// ```
/// use dolbie_baselines::Ogd;
/// use dolbie_core::LoadBalancer;
///
/// let ogd = Ogd::new(4, 0.001);
/// assert_eq!(ogd.allocation().num_workers(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Ogd {
    x: Allocation,
    learning_rate: f64,
}

impl Ogd {
    /// Creates OGD over `n` workers with step size `β` (the paper's
    /// experiments use `β = 0.001`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `learning_rate` is not positive and finite.
    pub fn new(n: usize, learning_rate: f64) -> Self {
        Self::with_initial(Allocation::uniform(n), learning_rate)
    }

    /// Creates OGD from an arbitrary feasible starting point.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not positive and finite.
    pub fn with_initial(initial: Allocation, learning_rate: f64) -> Self {
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "learning rate must be positive and finite"
        );
        Self { x: initial, learning_rate }
    }

    /// The step size `β`.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }
}

impl LoadBalancer for Ogd {
    fn name(&self) -> &str {
        "OGD"
    }

    fn allocation(&self) -> &Allocation {
        &self.x
    }

    fn observe(&mut self, observation: &Observation<'_>) {
        let n = observation.num_workers();
        assert_eq!(n, self.x.num_workers(), "observation covers a different worker set");
        let s = observation.straggler();
        let slope = observation.cost_fns()[s].derivative(self.x.share(s)).max(0.0);
        let mut v: Vec<f64> = self.x.as_slice().to_vec();
        v[s] -= self.learning_rate * slope;
        self.x = project_sorted(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dolbie_core::cost::{DynCost, LinearCost, PowerCost};

    fn step(ogd: &mut Ogd, costs: &[DynCost], t: usize) -> f64 {
        let played = ogd.allocation().clone();
        let obs = Observation::from_costs(t, &played, costs);
        let g = obs.global_cost();
        ogd.observe(&obs);
        g
    }

    #[test]
    fn only_straggler_coordinate_shrinks() {
        let mut ogd = Ogd::new(3, 0.01);
        let costs: Vec<DynCost> = vec![
            Box::new(LinearCost::new(6.0, 0.0)),
            Box::new(LinearCost::new(1.0, 0.0)),
            Box::new(LinearCost::new(1.0, 0.0)),
        ];
        let before = ogd.allocation().clone();
        step(&mut ogd, &costs, 0);
        let after = ogd.allocation();
        assert!(after.share(0) < before.share(0));
        // The projection spreads the removed mass over the others equally.
        assert!(after.share(1) > before.share(1));
        assert!((after.share(1) - after.share(2)).abs() < 1e-12);
    }

    #[test]
    fn converges_on_static_linear_instance() {
        let mut ogd = Ogd::new(2, 0.02);
        let costs: Vec<DynCost> =
            vec![Box::new(LinearCost::new(4.0, 0.0)), Box::new(LinearCost::new(1.0, 0.0))];
        let mut last = f64::MAX;
        for t in 0..2000 {
            last = step(&mut ogd, &costs, t);
        }
        // Optimum level = 0.8.
        assert!(last < 0.9, "OGD should approach the optimum, got {last}");
    }

    #[test]
    fn feasibility_holds_under_nonlinear_costs() {
        let mut ogd = Ogd::new(4, 0.5); // aggressive step to stress projection
        let costs: Vec<DynCost> = vec![
            Box::new(PowerCost::new(8.0, 2.0, 0.0)),
            Box::new(LinearCost::new(1.0, 0.2)),
            Box::new(PowerCost::new(2.0, 3.0, 0.1)),
            Box::new(LinearCost::new(0.5, 0.0)),
        ];
        for t in 0..200 {
            step(&mut ogd, &costs, t);
            let sum: f64 = ogd.allocation().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(ogd.allocation().iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn accessors_and_name() {
        let ogd = Ogd::new(2, 0.001);
        assert_eq!(ogd.learning_rate(), 0.001);
        assert_eq!(ogd.name(), "OGD");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_learning_rate_is_rejected() {
        let _ = Ogd::new(2, 0.0);
    }
}
