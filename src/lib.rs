//! # dolbie
//!
//! Umbrella crate for the DOLBIE reproduction (Wang & Liang, "Distributed
//! Online Min-Max Load Balancing with Risk-Averse Assistance", ICDCS 2023).
//!
//! It re-exports every workspace crate under one roof so examples,
//! integration tests, and downstream users can depend on a single package:
//!
//! - [`core`] — the DOLBIE algorithm, cost functions, oracle, regret.
//! - [`baselines`] — EQU, OGD, ABS, LB-BSP, OPT comparison algorithms.
//! - [`simnet`] — the master-worker and fully-distributed message-passing
//!   protocols on a deterministic discrete-event simulator and a threaded
//!   runtime.
//! - [`net`] — the real TCP runtime: versioned wire protocol, socket-level
//!   fault handling, master/worker node roles with bitwise trajectory
//!   parity.
//! - [`mlsim`] — the distributed-ML evaluation substrate (heterogeneous
//!   hardware model + from-scratch neural-network trainer).
//! - [`edge`] — the edge-computing task-offloading scenario.
//! - [`metrics`] — statistics, confidence intervals, experiment recording.
//!
//! See the repository README for a guided tour and `examples/` for runnable
//! entry points.

#![forbid(unsafe_code)]

pub use dolbie_baselines as baselines;
pub use dolbie_core as core;
pub use dolbie_edge as edge;
pub use dolbie_metrics as metrics;
pub use dolbie_mlsim as mlsim;
pub use dolbie_net as net;
pub use dolbie_simnet as simnet;

pub use dolbie_core::{
    run_episode, Allocation, Dolbie, DolbieConfig, Environment, EpisodeOptions, EpisodeTrace,
    LoadBalancer, Observation,
};
