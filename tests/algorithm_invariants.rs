//! Property-based integration tests: the paper's structural invariants
//! hold for every algorithm on randomized environments.

use dolbie::baselines::paper_suite;
use dolbie::core::cost::{DynCost, LinearCost, PowerCost};
use dolbie::core::environment::FnEnvironment;
use dolbie::core::{run_episode, Dolbie, EpisodeOptions, LoadBalancer, Observation};
use proptest::prelude::*;

/// Deterministic per-round costs derived from a seed: a mix of linear and
/// quadratic, time-varying shapes.
fn seeded_costs(seed: u64, round: usize, n: usize) -> Vec<DynCost> {
    (0..n)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((round as u64) << 32)
                .wrapping_add(i as u64)
                .wrapping_mul(0x2545_F491_4F6C_DD1D);
            let slope = 0.2 + (h % 997) as f64 / 100.0;
            let offset = ((h >> 17) % 13) as f64 * 0.05;
            if h.is_multiple_of(3) {
                Box::new(PowerCost::new(slope, 2.0, offset)) as DynCost
            } else {
                Box::new(LinearCost::new(slope, offset)) as DynCost
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Constraint (2)-(3) feasibility for the entire suite under
    /// adversarial time-varying costs.
    #[test]
    fn whole_suite_stays_feasible(seed in 0u64..u64::MAX, n in 2usize..9) {
        let env = FnEnvironment::new(n, move |round| seeded_costs(seed, round, n));
        // ClairvoyantOpt needs Clone; FnEnvironment closures aren't, so run
        // the online algorithms only (OPT's feasibility is the oracle's
        // job, tested in dolbie-core).
        let mut suite: Vec<Box<dyn LoadBalancer>> = vec![
            Box::new(dolbie::baselines::Equ::new(n)),
            Box::new(dolbie::baselines::Ogd::new(n, 0.001)),
            Box::new(dolbie::baselines::Abs::new(n, 5)),
            Box::new(dolbie::baselines::LbBsp::new(n, 5.0 / 256.0, 5)),
            Box::new(Dolbie::new(n)),
        ];
        let mut env = env;
        for t in 0..25 {
            let costs = dolbie::core::Environment::reveal(&mut env, t);
            for balancer in &mut suite {
                let played = balancer.allocation().clone();
                let obs = Observation::from_costs(t, &played, &costs);
                balancer.observe(&obs);
                let x = balancer.allocation();
                let sum: f64 = x.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6, "{}: sum {sum}", balancer.name());
                prop_assert!(x.iter().all(|&v| v >= 0.0), "{}: negative share", balancer.name());
            }
        }
    }

    /// DOLBIE's defining invariants from Lemma 1 and eqs. (5)-(7): the
    /// straggler never gains, non-stragglers never lose, the step size
    /// never grows.
    #[test]
    fn dolbie_structural_invariants(seed in 0u64..u64::MAX, n in 2usize..9) {
        let mut dolbie = Dolbie::new(n);
        let mut last_alpha = f64::INFINITY;
        for t in 0..30 {
            let costs = seeded_costs(seed, t, n);
            let before = dolbie.allocation().clone();
            let obs = Observation::from_costs(t, &before, &costs);
            let straggler = obs.straggler();
            dolbie.observe(&obs);
            let after = dolbie.allocation();
            for i in 0..n {
                if i == straggler {
                    prop_assert!(after.share(i) <= before.share(i) + 1e-9);
                } else {
                    prop_assert!(after.share(i) + 1e-9 >= before.share(i));
                }
            }
            let alpha = *dolbie.alphas_used().last().expect("observed a round");
            prop_assert!(alpha <= last_alpha + 1e-15, "alpha must be non-increasing");
            last_alpha = alpha;
        }
        prop_assert_eq!(dolbie.stats().guard_activations, 0,
            "the eq. (7) schedule never needs the float guard");
    }
}

#[test]
fn suite_total_costs_are_ordered_sensibly_on_a_static_instance() {
    use dolbie::core::environment::StaticLinearEnvironment;
    let env = StaticLinearEnvironment::from_slopes(vec![8.0, 1.0, 2.0, 4.0, 1.5]);
    let mut totals = std::collections::HashMap::new();
    for mut balancer in paper_suite(5, env.clone()) {
        let mut driver = env.clone();
        let trace = run_episode(balancer.as_mut(), &mut driver, EpisodeOptions::new(150));
        totals.insert(trace.algorithm.clone(), trace.total_cost());
    }
    assert!(totals["OPT"] <= totals["DOLBIE"]);
    assert!(totals["DOLBIE"] < totals["EQU"]);
    assert!(totals["DOLBIE"] < totals["ABS"], "ABS cycles on static instances");
    assert!(totals["OGD"] < totals["EQU"]);
}
