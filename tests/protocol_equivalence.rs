//! Integration across `dolbie-core`, `dolbie-simnet` and `dolbie-mlsim`:
//! both message-passing architectures and the threaded runtime must
//! reproduce the sequential engine's trajectory on the *realistic* cluster
//! environment, with the §IV-C message complexities.

use dolbie::core::{run_episode, Dolbie, DolbieConfig, EpisodeOptions};
use dolbie::mlsim::{Cluster, ClusterConfig, MlModel};
use dolbie::simnet::threaded::run_threaded_master_worker;
use dolbie::simnet::{
    FixedLatency, FullyDistributedSim, JitteredLatency, MasterWorkerSim, RingSim,
};

const N: usize = 10;
const ROUNDS: usize = 30;

fn cluster() -> Cluster {
    let mut cfg = ClusterConfig::paper(MlModel::ResNet18);
    cfg.num_workers = N;
    Cluster::sample(cfg, 4242)
}

#[test]
fn all_five_implementations_agree_on_the_cluster_environment() {
    let env = cluster();
    let mw =
        MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(ROUNDS);
    let fd =
        FullyDistributedSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(ROUNDS);
    let ring = RingSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(ROUNDS);
    let threaded = run_threaded_master_worker(env.clone(), DolbieConfig::new(), ROUNDS)
        .expect("healthy workers never disconnect");
    let mut sequential = Dolbie::new(N);
    let mut driver = env;
    let reference = run_episode(&mut sequential, &mut driver, EpisodeOptions::new(ROUNDS));

    for (t, th) in threaded.iter().enumerate() {
        let r = &reference.records[t].allocation;
        assert!(mw.rounds[t].allocation.l2_distance(r) < 1e-9, "master-worker diverged at {t}");
        assert!(fd.rounds[t].allocation.l2_distance(r) < 1e-9, "fully-distributed diverged at {t}");
        assert!(ring.rounds[t].allocation.l2_distance(r) < 1e-9, "ring diverged at {t}");
        assert!(th.allocation.l2_distance(r) < 1e-9, "threaded diverged at {t}");
        assert!((mw.rounds[t].global_cost - reference.records[t].global_cost).abs() < 1e-9);
    }
}

#[test]
fn crash_recovery_preserves_feasibility_on_the_cluster() {
    use dolbie::simnet::Crash;
    let env = cluster();
    let trace = MasterWorkerSim::new(env, DolbieConfig::new(), FixedLatency::lan())
        .with_crash(Crash { worker: 4, from_round: 8, until_round: 18 })
        .run(ROUNDS);
    let frozen = trace.rounds[8].allocation.share(4);
    for t in 8..18 {
        assert!(!trace.rounds[t].active[4]);
        assert!((trace.rounds[t].allocation.share(4) - frozen).abs() < 1e-12);
        let sum: f64 = trace.rounds[t].allocation.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
    assert!(trace.rounds[ROUNDS - 1].active[4], "worker rejoined after recovery");
}

#[test]
fn message_complexity_matches_section_4c() {
    let env = cluster();
    let mw =
        MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(ROUNDS);
    let fd = FullyDistributedSim::new(env, DolbieConfig::new(), FixedLatency::lan()).run(ROUNDS);
    assert_eq!(mw.total_messages(), ROUNDS * 3 * N);
    assert_eq!(fd.total_messages(), ROUNDS * (N * (N - 1) + (N - 1)));
    assert!(fd.total_bytes() > mw.total_bytes());
}

#[test]
fn network_jitter_changes_wall_clock_but_not_decisions() {
    let env = cluster();
    let calm =
        MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::instant()).run(ROUNDS);
    let stormy = MasterWorkerSim::new(
        env,
        DolbieConfig::new(),
        JitteredLatency::new(FixedLatency::new(0.05, 1e6), 0.05, 1234),
    )
    .run(ROUNDS);
    for (a, b) in calm.rounds.iter().zip(&stormy.rounds) {
        assert!(a.allocation.l2_distance(&b.allocation) < 1e-12);
    }
    assert!(stormy.makespan() > calm.makespan());
    assert!(stormy.mean_control_overhead() > calm.mean_control_overhead());
}

#[test]
fn degraded_node_fault_injection_preserves_decisions() {
    use dolbie::simnet::{DegradedNode, NodeId};
    let env = cluster();
    let healthy =
        MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(ROUNDS);
    // Worker 3's links are 50x slower for rounds 5..15.
    let degraded = MasterWorkerSim::new(
        env,
        DolbieConfig::new(),
        DegradedNode::new(FixedLatency::lan(), NodeId::Worker(3), 50.0, 5, 15),
    )
    .run(ROUNDS);
    for (a, b) in healthy.rounds.iter().zip(&degraded.rounds) {
        assert!(
            a.allocation.l2_distance(&b.allocation) < 1e-12,
            "the synchronous protocol's decisions are delay-invariant"
        );
    }
    assert!(degraded.makespan() > healthy.makespan(), "but the fault costs wall-clock");
}

#[test]
fn one_fault_plan_drives_all_three_architectures_identically() {
    use dolbie::simnet::{Crash, FaultPlan};
    let env = cluster();
    let plan = FaultPlan::seeded(31)
        .with_crash(Crash { worker: 4, from_round: 8, until_round: 18 })
        .with_drop_probability(0.08)
        .with_duplicate_probability(0.02);
    let mw = MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
        .with_fault_plan(plan.clone())
        .run(ROUNDS);
    let fd = FullyDistributedSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan())
        .with_fault_plan(plan.clone())
        .run(ROUNDS);
    let ring = RingSim::new(env, DolbieConfig::new(), FixedLatency::lan())
        .with_fault_plan(plan)
        .run(ROUNDS);

    for t in 0..ROUNDS {
        assert!(
            mw.rounds[t].allocation.l2_distance(&fd.rounds[t].allocation) < 1e-9,
            "master-worker and fully-distributed diverged at {t}"
        );
        assert!(
            mw.rounds[t].allocation.l2_distance(&ring.rounds[t].allocation) < 1e-9,
            "master-worker and ring diverged at {t}"
        );
        let sum: f64 = mw.rounds[t].allocation.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "round {t} must stay feasible");
    }
    for trace in [&mw, &fd, &ring] {
        assert_eq!(trace.degraded_rounds(), 10, "{}", trace.architecture);
        assert!(trace.total_retries() > 0, "{} must retry on lossy links", trace.architecture);
    }
}
