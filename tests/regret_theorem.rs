//! Integration check of Theorem 1 across environments: the measured
//! dynamic regret never exceeds the paper's bound, for synthetic
//! adversaries, the ML cluster, and the edge scenario.

use dolbie::core::environment::{RotatingStragglerEnvironment, StaticLinearEnvironment};
use dolbie::core::{
    run_episode, theorem1_bound, Allocation, Dolbie, DolbieConfig, Environment, EpisodeOptions,
};
use dolbie::edge::{EdgeConfig, EdgeScenario};
use dolbie::mlsim::{Cluster, ClusterConfig, MlModel};

fn check_bound(env: &mut dyn Environment, n: usize, rounds: usize, label: &str) {
    let mut dolbie =
        Dolbie::with_config(Allocation::uniform(n), DolbieConfig::new().with_initial_alpha(0.01));
    let trace = run_episode(&mut dolbie, env, EpisodeOptions::new(rounds).with_optimum());
    let tracker = trace.regret().expect("optimum tracked");
    let bound = theorem1_bound(
        n,
        trace.max_lipschitz().expect("lipschitz tracked"),
        tracker.path_length(),
        dolbie.alphas_used(),
    );
    let regret = tracker.dynamic_regret();
    assert!(
        regret >= -1e-6,
        "{label}: regret {regret} cannot be negative against the clairvoyant comparator"
    );
    assert!(regret <= bound, "{label}: regret {regret} exceeds Theorem 1 bound {bound}");
}

#[test]
fn bound_holds_on_static_environment() {
    let mut env = StaticLinearEnvironment::from_slopes(vec![5.0, 1.0, 2.0, 3.0]);
    check_bound(&mut env, 4, 200, "static linear");
}

#[test]
fn bound_holds_on_rotating_adversary() {
    for n in [3usize, 8, 16] {
        let mut env = RotatingStragglerEnvironment::new(n, 7, 4.0, 1.0);
        check_bound(&mut env, n, 300, "rotating straggler");
    }
}

#[test]
fn bound_holds_on_the_ml_cluster() {
    let mut cfg = ClusterConfig::paper(MlModel::ResNet18);
    cfg.num_workers = 10;
    let mut env = Cluster::sample(cfg, 99);
    check_bound(&mut env, 10, 150, "ml cluster");
}

#[test]
fn bound_holds_on_the_edge_scenario() {
    let mut env = EdgeScenario::sample(EdgeConfig::small(), 5);
    let n = env.num_participants();
    check_bound(&mut env, n, 150, "edge offloading");
}

#[test]
fn regret_grows_sublinearly_per_round_on_static_costs() {
    // On a static instance DOLBIE converges, so regret-per-round must
    // shrink as the horizon grows.
    let per_round = |t: usize| -> f64 {
        let mut env = StaticLinearEnvironment::from_slopes(vec![6.0, 1.0, 2.0]);
        let mut dolbie = Dolbie::new(3);
        let trace = run_episode(&mut dolbie, &mut env, EpisodeOptions::new(t).with_optimum());
        trace.regret().expect("optimum tracked").dynamic_regret() / t as f64
    };
    let short = per_round(50);
    let long = per_round(500);
    assert!(long < short * 0.5, "per-round regret should decay on static costs: {short} -> {long}");
}
