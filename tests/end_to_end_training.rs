//! End-to-end integration: the full §VI suite on the distributed-ML
//! substrate, checking the paper's headline orderings.

use dolbie::baselines::paper_suite;
use dolbie::mlsim::{run_training, Cluster, ClusterConfig, MlModel, TrainingConfig};

fn outcomes(model: MlModel, seed: u64, rounds: usize) -> Vec<dolbie::mlsim::TrainingOutcome> {
    let mut cfg = ClusterConfig::paper(model);
    cfg.num_workers = 12; // smaller than the paper's 30 to keep CI fast
    let cluster = Cluster::sample(cfg, seed);
    paper_suite(12, cluster.clone())
        .into_iter()
        .map(|mut b| {
            run_training(b.as_mut(), cluster.clone(), TrainingConfig::latency_only(rounds))
        })
        .collect()
}

fn total(outcomes: &[dolbie::mlsim::TrainingOutcome], name: &str) -> f64 {
    outcomes.iter().find(|o| o.algorithm == name).expect("algorithm ran").total_wall_clock()
}

#[test]
fn dolbie_beats_every_online_baseline_on_average() {
    // Aggregate over several realizations so single-seed noise cannot
    // flip the ordering this test asserts.
    let mut sums = std::collections::HashMap::new();
    for seed in 0..5u64 {
        for o in outcomes(MlModel::ResNet18, seed, 120) {
            *sums.entry(o.algorithm.clone()).or_insert(0.0) += o.total_wall_clock();
        }
    }
    let dolbie = sums["DOLBIE"];
    assert!(dolbie < sums["EQU"], "DOLBIE {dolbie} vs EQU {}", sums["EQU"]);
    assert!(dolbie < sums["LB-BSP"], "DOLBIE {dolbie} vs LB-BSP {}", sums["LB-BSP"]);
    assert!(dolbie < sums["ABS"], "DOLBIE {dolbie} vs ABS {}", sums["ABS"]);
    assert!(dolbie < sums["OGD"], "DOLBIE {dolbie} vs OGD {}", sums["OGD"]);
    assert!(sums["OPT"] < dolbie, "clairvoyant OPT must win");
}

#[test]
fn opt_lower_bounds_everyone_per_realization() {
    for seed in [3u64, 11] {
        let outs = outcomes(MlModel::Vgg16, seed, 60);
        let opt = total(&outs, "OPT");
        for o in &outs {
            assert!(
                opt <= o.total_wall_clock() + 1e-9,
                "seed {seed}: OPT ({opt}) beaten by {} ({})",
                o.algorithm,
                o.total_wall_clock()
            );
        }
    }
}

#[test]
fn every_algorithm_stays_feasible_for_the_whole_run() {
    for o in outcomes(MlModel::LeNet5, 7, 150) {
        for r in &o.rounds {
            let sum: f64 = r.batch_fractions.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "{} round {}: batch fractions sum to {sum}",
                o.algorithm,
                r.round
            );
            assert!(
                r.batch_fractions.iter().all(|&b| b >= 0.0),
                "{} round {}: negative batch fraction",
                o.algorithm,
                r.round
            );
        }
    }
}

#[test]
fn idle_time_shrinks_under_dolbie() {
    let outs = outcomes(MlModel::ResNet18, 21, 120);
    let idle = |name: &str| {
        outs.iter()
            .find(|o| o.algorithm == name)
            .expect("algorithm ran")
            .utilization
            .mean_idle_time()
    };
    assert!(idle("DOLBIE") < idle("EQU"), "DOLBIE must waste less idle time than EQU");
    assert!(idle("OPT") <= idle("DOLBIE") + 1e-9);
}

#[test]
fn dolbie_advantage_over_lbbsp_grows_with_model_size() {
    // The paper's cross-model claim (Figs. 6-8): the relative advantage of
    // DOLBIE over LB-BSP increases from LeNet5 to VGG16. Aggregated over
    // seeds for robustness.
    let advantage = |model: MlModel| -> f64 {
        let mut lb = 0.0;
        let mut dl = 0.0;
        for seed in 0..3u64 {
            let outs = outcomes(model, seed, 120);
            lb += total(&outs, "LB-BSP");
            dl += total(&outs, "DOLBIE");
        }
        (lb - dl) / lb
    };
    let lenet = advantage(MlModel::LeNet5);
    let vgg = advantage(MlModel::Vgg16);
    assert!(
        vgg > lenet,
        "advantage should grow with model size: LeNet5 {lenet:.3} vs VGG16 {vgg:.3}"
    );
}
