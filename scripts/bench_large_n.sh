#!/usr/bin/env bash
# Regenerates BENCH_large_n.json and results/large_n_scaling.csv: the
# full large-N scaling sweep (N up to 10^6, 10^3 rounds — the acceptance
# configuration) across the round kernels (split, fused, simd), with
# every fused/SIMD row asserting bitwise identity to the sequential
# split engine.
#
# Usage: scripts/bench_large_n.sh [--quick] [--threads N] [--kernel K] [--gate]
#   --kernel K   restrict to one or more kernels: split, fused, simd,
#                all, or a comma list (default: all)
#   --gate       fail (exit 1) if a quick run's throughput drops >20%
#                below the recorded BENCH_large_n.json baseline
# Extra arguments are forwarded to the paper_figures binary. A --quick
# run writes results/large_n_quick.json and leaves the recorded
# BENCH_large_n.json baseline untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p dolbie-bench --bin paper_figures -- "$@" large_n
