#!/usr/bin/env bash
# Regenerates BENCH_large_n.json and results/large_n_scaling.csv: the
# full large-N scaling sweep (N up to 10^6, 10^3 rounds — the acceptance
# configuration), with every row asserting the chunked SoA engine is
# bitwise-identical to the sequential Dolbie.
#
# Usage: scripts/bench_large_n.sh [--quick] [--threads N]
# Extra arguments are forwarded to the paper_figures binary.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p dolbie-bench --bin paper_figures -- "$@" large_n
