#!/usr/bin/env bash
# Tier-1 verification gate: release build, full workspace test suite,
# then a quick paper_figures smoke run in --bench mode, which also
# refreshes BENCH_paper_figures.json at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: format check =="
cargo fmt --check

echo "== tier-1: clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== tier-1: release build =="
cargo build --release --workspace

echo "== tier-1: workspace tests =="
cargo test --workspace -q

echo "== tier-1: paper_figures smoke (quick fig3 fig4 regret, --bench) =="
cargo run --release -p dolbie-bench --bin paper_figures -- --quick --bench fig3 fig4 regret

echo "== tier-1: OK =="
