#!/usr/bin/env bash
# Tier-1 verification gate: release build, full workspace test suite,
# then a quick paper_figures smoke run in --bench mode, which also
# refreshes BENCH_paper_figures.json at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: format check =="
cargo fmt --check

echo "== tier-1: clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

if cargo +nightly --version >/dev/null 2>&1; then
    echo "== tier-1: clippy, portable-simd feature (nightly, deny warnings) =="
    cargo +nightly clippy -p dolbie-core --features portable-simd -- -D warnings
else
    echo "[warn] no nightly toolchain: skipping clippy for the portable-simd feature gate"
fi

echo "== tier-1: rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== tier-1: release build =="
cargo build --release --workspace

echo "== tier-1: workspace tests =="
cargo test --workspace -q

echo "== tier-1: paper_figures smoke (quick fig3 fig4 regret, --bench) =="
cargo run --release -p dolbie-bench --bin paper_figures -- --quick --bench fig3 fig4 regret

echo "== tier-1: large-N engine pin invariant (N=1e5 x 1e4 rounds, release) =="
cargo test --release -p dolbie-core --lib -q -- --ignored \
    sum_stays_pinned_after_1e4_rounds_at_1e5_workers

echo "== tier-1: large-N smoke (quick sweep to N=1e5, all kernels bitwise vs split, gated, <10 s) =="
smoke_start=$SECONDS
cargo run --release -p dolbie-bench --bin paper_figures -- --quick --gate large_n
smoke_elapsed=$((SECONDS - smoke_start))
echo "large-N smoke took ${smoke_elapsed}s"
if [ "$smoke_elapsed" -ge 10 ]; then
    echo "FAIL: large-N smoke exceeded the 10 s budget" >&2
    exit 1
fi

echo "== tier-1: chaos smoke (~20 random fault x membership cases, five invariants, <10 s) =="
smoke_start=$SECONDS
cargo run --release -p dolbie-bench --bin paper_figures -- --quick chaos
smoke_elapsed=$((SECONDS - smoke_start))
echo "chaos smoke took ${smoke_elapsed}s"
if [ "$smoke_elapsed" -ge 10 ]; then
    echo "FAIL: chaos smoke exceeded the 10 s budget" >&2
    exit 1
fi

echo "== tier-1: net smoke (real loopback TCP, bitwise vs sequential, <10 s) =="
smoke_start=$SECONDS
cargo run --release -p dolbie-bench --bin paper_figures -- --quick net
smoke_elapsed=$((SECONDS - smoke_start))
echo "net smoke took ${smoke_elapsed}s"
if [ "$smoke_elapsed" -ge 10 ]; then
    echo "FAIL: net smoke exceeded the 10 s budget" >&2
    exit 1
fi

echo "== tier-1: net-scale smoke (evented master, fleets to N=256, <10 s) =="
smoke_start=$SECONDS
cargo run --release -p dolbie-bench --bin paper_figures -- --quick net_scale
smoke_elapsed=$((SECONDS - smoke_start))
echo "net-scale smoke took ${smoke_elapsed}s"
if [ "$smoke_elapsed" -ge 10 ]; then
    echo "FAIL: net-scale smoke exceeded the 10 s budget" >&2
    exit 1
fi

echo "== tier-1: sharded smoke (two-level control plane, M in {1,4}, bitwise vs sequential, <10 s) =="
smoke_start=$SECONDS
cargo run --release -p dolbie-bench --bin paper_figures -- --quick shard_scale
smoke_elapsed=$((SECONDS - smoke_start))
echo "sharded smoke took ${smoke_elapsed}s"
if [ "$smoke_elapsed" -ge 10 ]; then
    echo "FAIL: sharded smoke exceeded the 10 s budget" >&2
    exit 1
fi

echo "== tier-1: sharded-crash smoke (seeded kills + lossy links over real TCP, quick-suffixed artifacts, <10 s) =="
smoke_start=$SECONDS
cargo run --release -p dolbie-bench --bin paper_figures -- --quick chaos_net
smoke_elapsed=$((SECONDS - smoke_start))
echo "sharded-crash smoke took ${smoke_elapsed}s"
if [ "$smoke_elapsed" -ge 10 ]; then
    echo "FAIL: sharded-crash smoke exceeded the 10 s budget" >&2
    exit 1
fi

echo "== tier-1: mc smoke (exhaustive crash-only interleaving check, N=3 x 3 rounds, <10 s) =="
smoke_start=$SECONDS
cargo run --release -p dolbie-bench --bin paper_figures -- --quick mc
smoke_elapsed=$((SECONDS - smoke_start))
echo "mc smoke took ${smoke_elapsed}s"
if [ "$smoke_elapsed" -ge 10 ]; then
    echo "FAIL: mc smoke exceeded the 10 s budget" >&2
    exit 1
fi

echo "== tier-1: OK =="
