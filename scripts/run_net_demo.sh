#!/usr/bin/env bash
# Multi-process smoke of the dolbie-net runtime: spawns a real
# `dolbie_node master` process plus N real worker processes over
# loopback TCP, waits for a clean converge-and-shutdown, and asserts
# the master's self-verification against the sequential engine passed.
#
#   scripts/run_net_demo.sh [--master blocking|evented] [workers] [rounds]
set -euo pipefail
cd "$(dirname "$0")/.."

MASTER="evented"
if [ "${1:-}" = "--master" ]; then
    MASTER="${2:?--master requires a value (blocking or evented)}"
    case "$MASTER" in
        blocking | evented) ;;
        *)
            echo "error: invalid --master '$MASTER' (expected blocking or evented)" >&2
            exit 2
            ;;
    esac
    shift 2
fi
WORKERS="${1:-4}"
ROUNDS="${2:-500}"
NODE=target/release/dolbie_node

echo "== net demo: building dolbie_node =="
cargo build --release -p dolbie-net --bin dolbie_node

workdir=$(mktemp -d)
master_log="$workdir/master.log"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== net demo: $MASTER master on an ephemeral port, $WORKERS workers, $ROUNDS rounds =="
"$NODE" master --listen 127.0.0.1:0 --workers "$WORKERS" --rounds "$ROUNDS" \
    --master "$MASTER" --env chaos --env-seed 7 --verify >"$master_log" 2>&1 &
master_pid=$!
pids+=("$master_pid")

# The master prints its resolved address once the listener is up.
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$master_log" | head -n1)
    [ -n "$addr" ] && break
    if ! kill -0 "$master_pid" 2>/dev/null; then
        echo "FAIL: master exited before listening" >&2
        cat "$master_log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "FAIL: master never announced its address" >&2
    cat "$master_log" >&2
    exit 1
fi
echo "master is listening on $addr"

for i in $(seq 1 "$WORKERS"); do
    "$NODE" worker --connect "$addr" >"$workdir/worker_$i.log" 2>&1 &
    pids+=("$!")
done

status=0
for pid in "${pids[@]}"; do
    if ! wait "$pid"; then
        status=1
    fi
done
pids=()

echo "---- master output ----"
cat "$master_log"
if [ "$status" -ne 0 ]; then
    echo "FAIL: a node process exited nonzero" >&2
    for i in $(seq 1 "$WORKERS"); do
        echo "---- worker $i ----" >&2
        cat "$workdir/worker_$i.log" >&2
    done
    exit 1
fi
if ! grep -q "verify: OK" "$master_log"; then
    echo "FAIL: master did not report bitwise verification" >&2
    exit 1
fi
echo "== net demo: OK — $WORKERS worker processes joined, converged, and shut down cleanly; trajectory bitwise identical to the sequential engine =="
