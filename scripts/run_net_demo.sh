#!/usr/bin/env bash
# Multi-process smoke of the dolbie-net runtime.
#
# Flat mode (default): spawns a real `dolbie_node master` process plus N
# real worker processes over loopback TCP, waits for a clean
# converge-and-shutdown, and asserts the master's self-verification
# against the sequential engine passed.
#
# Sharded mode (--sharded M): spawns a real `dolbie_node root` process,
# M real `dolbie_node shard` processes dialing its backbone, and N real
# worker processes spread over the shard-masters' listeners — the full
# two-level control plane as separate OS processes — and asserts the
# root drives the complete horizon with a healthy O(M) backbone.
#
#   scripts/run_net_demo.sh [--master blocking|evented] [--sharded M] [workers] [rounds]
set -euo pipefail
cd "$(dirname "$0")/.."

MASTER="evented"
SHARDS=0
while :; do
    case "${1:-}" in
        --master)
            MASTER="${2:?--master requires a value (blocking or evented)}"
            case "$MASTER" in
                blocking | evented) ;;
                *)
                    echo "error: invalid --master '$MASTER' (expected blocking or evented)" >&2
                    exit 2
                    ;;
            esac
            shift 2
            ;;
        --sharded)
            SHARDS="${2:?--sharded requires a shard count}"
            case "$SHARDS" in
                '' | *[!0-9]* | 0)
                    echo "error: invalid --sharded '$SHARDS' (expected a positive integer)" >&2
                    exit 2
                    ;;
            esac
            shift 2
            ;;
        *) break ;;
    esac
done
WORKERS="${1:-4}"
ROUNDS="${2:-500}"
NODE=target/release/dolbie_node

if [ "$SHARDS" -gt "$WORKERS" ]; then
    echo "error: --sharded $SHARDS exceeds the worker count $WORKERS" >&2
    exit 2
fi

echo "== net demo: building dolbie_node =="
cargo build --release -p dolbie-net --bin dolbie_node

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

# Polls a node log for its `listening on <addr>` announcement.
await_addr() { # log pid sed_pattern what
    local log="$1" pid="$2" pattern="$3" what="$4" addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n "$pattern" "$log" | head -n1)
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "FAIL: $what exited before listening" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "FAIL: $what never announced its address" >&2
        cat "$log" >&2
        exit 1
    fi
    echo "$addr"
}

if [ "$SHARDS" -gt 0 ]; then
    root_log="$workdir/root.log"
    echo "== net demo: sharded control plane — 1 root, $SHARDS shard-masters, $WORKERS workers, $ROUNDS rounds =="
    "$NODE" root --listen 127.0.0.1:0 --shards "$SHARDS" --workers "$WORKERS" \
        --rounds "$ROUNDS" --env chaos --env-seed 7 >"$root_log" 2>&1 &
    root_pid=$!
    pids+=("$root_pid")
    root_addr=$(await_addr "$root_log" "$root_pid" 's|^root listening on \(.*\), awaiting.*|\1|p' root)
    echo "root is listening on $root_addr"

    # Shard k of M serves floor(N/M) workers, plus one of the N mod M
    # extras — the same even layout the root announces over the backbone.
    per=$((WORKERS / SHARDS))
    extra=$((WORKERS % SHARDS))
    for k in $(seq 0 $((SHARDS - 1))); do
        shard_log="$workdir/shard_$k.log"
        "$NODE" shard --connect "$root_addr" --listen 127.0.0.1:0 \
            --shard "$k" --shards "$SHARDS" >"$shard_log" 2>&1 &
        shard_pid=$!
        pids+=("$shard_pid")
        shard_addr=$(await_addr "$shard_log" "$shard_pid" \
            's|^shard .* listening on \(.*\), dialing.*|\1|p' "shard $k")
        echo "shard $k is listening on $shard_addr"
        local_n=$per
        [ "$k" -lt "$extra" ] && local_n=$((per + 1))
        for i in $(seq 1 "$local_n"); do
            "$NODE" worker --connect "$shard_addr" >"$workdir/worker_${k}_${i}.log" 2>&1 &
            pids+=("$!")
        done
    done

    status=0
    for pid in "${pids[@]}"; do
        if ! wait "$pid"; then
            status=1
        fi
    done
    pids=()

    echo "---- root output ----"
    cat "$root_log"
    if [ "$status" -ne 0 ]; then
        echo "FAIL: a node process exited nonzero" >&2
        for log in "$workdir"/shard_*.log "$workdir"/worker_*.log; do
            echo "---- $(basename "$log") ----" >&2
            cat "$log" >&2
        done
        exit 1
    fi
    if ! grep -q "^root completed $ROUNDS rounds" "$root_log"; then
        echo "FAIL: root did not complete the full horizon" >&2
        exit 1
    fi
    if grep -q "membership epochs crossed" "$root_log"; then
        echo "FAIL: a healthy run crossed a membership epoch" >&2
        exit 1
    fi
    echo "== net demo: OK — $SHARDS shard-master processes and $WORKERS worker processes drove $ROUNDS rounds through the root's O(M) backbone =="
    exit 0
fi

master_log="$workdir/master.log"
echo "== net demo: $MASTER master on an ephemeral port, $WORKERS workers, $ROUNDS rounds =="
"$NODE" master --listen 127.0.0.1:0 --workers "$WORKERS" --rounds "$ROUNDS" \
    --master "$MASTER" --env chaos --env-seed 7 --verify >"$master_log" 2>&1 &
master_pid=$!
pids+=("$master_pid")

# The master prints its resolved address once the listener is up.
addr=$(await_addr "$master_log" "$master_pid" 's/^listening on //p' master)
echo "master is listening on $addr"

for i in $(seq 1 "$WORKERS"); do
    "$NODE" worker --connect "$addr" >"$workdir/worker_$i.log" 2>&1 &
    pids+=("$!")
done

status=0
for pid in "${pids[@]}"; do
    if ! wait "$pid"; then
        status=1
    fi
done
pids=()

echo "---- master output ----"
cat "$master_log"
if [ "$status" -ne 0 ]; then
    echo "FAIL: a node process exited nonzero" >&2
    for i in $(seq 1 "$WORKERS"); do
        echo "---- worker $i ----" >&2
        cat "$workdir/worker_$i.log" >&2
    done
    exit 1
fi
if ! grep -q "verify: OK" "$master_log"; then
    echo "FAIL: master did not report bitwise verification" >&2
    exit 1
fi
echo "== net demo: OK — $WORKERS worker processes joined, converged, and shut down cleanly; trajectory bitwise identical to the sequential engine =="
