//! Empirically checking Theorem 1: the measured dynamic regret of DOLBIE
//! against the paper's upper bound
//! `sqrt(T L² (1/α_T + P_T/α_T + Σ((N−1)/2 + N α_t)/2))`.
//!
//! ```text
//! cargo run --release --example regret_bound
//! ```

use dolbie::core::environment::RotatingStragglerEnvironment;
use dolbie::core::{run_episode, theorem1_bound, Allocation, Dolbie, DolbieConfig, EpisodeOptions};

fn main() {
    println!("   T    N      regret       P_T        bound     regret/bound");
    for &n in &[5usize, 10, 20] {
        for &t in &[100usize, 400] {
            let mut env = RotatingStragglerEnvironment::new(n, 10, 3.0, 1.0);
            let mut dolbie = Dolbie::with_config(
                Allocation::uniform(n),
                DolbieConfig::new().with_initial_alpha(0.01),
            );
            let trace = run_episode(&mut dolbie, &mut env, EpisodeOptions::new(t).with_optimum());
            let tracker = trace.regret().expect("optimum tracked");
            let bound = theorem1_bound(
                n,
                trace.max_lipschitz().expect("lipschitz tracked"),
                tracker.path_length(),
                dolbie.alphas_used(),
            );
            let regret = tracker.dynamic_regret();
            println!(
                "{t:4} {n:4}   {regret:9.3}   {:8.3}   {bound:10.1}   {:.4}",
                tracker.path_length(),
                regret / bound
            );
            assert!(regret <= bound, "Theorem 1 must hold");
            assert!(regret >= -1e-9, "cannot beat the clairvoyant comparator");
        }
    }
    println!("\nTheorem 1 held in every configuration.");
}
