//! DOLBIE as an actual distributed protocol: Algorithm 1 (master-worker)
//! and Algorithm 2 (fully-distributed) running message by message on the
//! discrete-event simulator, plus Algorithm 1 on real OS threads — all
//! producing the same trajectory, at very different communication costs.
//!
//! ```text
//! cargo run --release --example fully_distributed
//! ```

use dolbie::core::environment::RotatingStragglerEnvironment;
use dolbie::core::DolbieConfig;
use dolbie::simnet::threaded::run_threaded_master_worker;
use dolbie::simnet::{FixedLatency, FullyDistributedSim, MasterWorkerSim, RingSim};

fn main() {
    let n = 8;
    let rounds = 40;
    // The slow worker rotates every 5 rounds: a genuinely dynamic system.
    let env = RotatingStragglerEnvironment::new(n, 5, 6.0, 1.0);

    let mw =
        MasterWorkerSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(rounds);
    let fd =
        FullyDistributedSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(rounds);
    let ring = RingSim::new(env.clone(), DolbieConfig::new(), FixedLatency::lan()).run(rounds);
    let threaded = run_threaded_master_worker(env, DolbieConfig::new(), rounds)
        .expect("healthy workers never disconnect");

    println!("architecture        messages/round   bytes/round   makespan");
    println!(
        "master-worker   {:14}   {:11}   {:8.3} s",
        mw.total_messages() / rounds,
        mw.total_bytes() / rounds,
        mw.makespan()
    );
    println!(
        "fully-distrib.  {:14}   {:11}   {:8.3} s",
        fd.total_messages() / rounds,
        fd.total_bytes() / rounds,
        fd.makespan()
    );
    println!(
        "token ring     {:14}   {:11}   {:8.3} s",
        ring.total_messages() / rounds,
        ring.total_bytes() / rounds,
        ring.makespan()
    );
    println!("threaded (real concurrency, no simulated network)");

    // The three implementations walk the same trajectory.
    let mut max_dev: f64 = 0.0;
    for (((a, b), c), r) in mw.rounds.iter().zip(&fd.rounds).zip(&threaded).zip(&ring.rounds) {
        max_dev = max_dev.max(a.allocation.l2_distance(&b.allocation));
        max_dev = max_dev.max(a.allocation.l2_distance(&c.allocation));
        max_dev = max_dev.max(a.allocation.l2_distance(&r.allocation));
    }
    println!("\nmax trajectory deviation across the four implementations: {max_dev:.2e}");
    assert!(max_dev < 1e-9, "implementations must agree");
    println!("final allocation: {}", mw.rounds.last().expect("ran {rounds} rounds").allocation);
    println!(
        "§IV-C confirmed: O(N) master-worker vs O(N²) fully-distributed messaging\n\
         (plus the O(N)-messages / O(N)-depth ring extension), identical decisions."
    );
}
