//! Production-flavored features beyond the paper: replaying a measured
//! trace, fitting cost functions from noisy samples, capping individual
//! workers, and running under bandit (value-only) feedback.
//!
//! ```text
//! cargo run --release --example custom_deployment
//! ```

use dolbie::core::cost::{CostFunction, EmpiricalCost};
use dolbie::core::{
    instantaneous_minimizer_capped, run_episode, Allocation, BanditDolbie, Dolbie, DolbieConfig,
    EpisodeOptions, LoadBalancer, Observation,
};
use dolbie::mlsim::{MlModel, TraceEnvironment};

fn main() {
    // 1) Replay a measured trace (CSV straight from your telemetry):
    //    columns are round, per-worker speeds (samples/s), per-worker
    //    network rates (bytes/s).
    let csv = "\
round,s0,s1,s2,r0,r1,r2
0, 1500, 180, 600, 2e9, 8e8, 1.5e9
1, 1450, 170, 640, 2e9, 9e8, 1.4e9
2, 1600, 150, 590, 2.1e9, 7e8, 1.5e9
3, 1550, 185, 610, 1.9e9, 8e8, 1.6e9
";
    let mut env =
        TraceEnvironment::from_csv(MlModel::ResNet18, 256.0, csv).expect("well-formed trace");
    println!("replaying a {}-round measured trace over 3 workers", env.trace_len());

    // 2) Cap worker 0 (say it must keep capacity for another tenant).
    let caps = vec![0.5, 1.0, 1.0];
    let mut capped = Dolbie::with_config(Allocation::uniform(3), DolbieConfig::new())
        .with_share_caps(caps.clone());
    let trace = run_episode(&mut capped, &mut env, EpisodeOptions::new(60));
    let last = trace.records.last().expect("ran 60 rounds");
    println!(
        "capped DOLBIE after 60 rounds: allocation {} (worker 0 cap 0.5), cost {:.4}",
        last.allocation, last.global_cost
    );
    assert!(last.allocation.share(0) <= 0.5 + 1e-9);

    // The matching clairvoyant comparator knows about the caps too.
    let mut probe = TraceEnvironment::from_csv(MlModel::ResNet18, 256.0, csv).unwrap();
    let costs = dolbie::core::Environment::reveal(&mut probe, 59);
    let opt = instantaneous_minimizer_capped(&costs, Some(&caps)).expect("solvable");
    println!("capped optimum for that round: {:.4} at {}", opt.level, opt.allocation);

    // 3) Bandit feedback: only cost *values* observed, the local model is
    //    estimated online.
    let mut env2 = TraceEnvironment::from_csv(MlModel::ResNet18, 256.0, csv).unwrap();
    let mut bandit = BanditDolbie::new(3);
    let bandit_trace = run_episode(&mut bandit, &mut env2, EpisodeOptions::new(60));
    println!(
        "bandit DOLBIE total cost {:.3} vs capped full-info {:.3}",
        bandit_trace.total_cost(),
        trace.total_cost()
    );

    // 4) Fit a cost function from noisy measurements (isotonic regression)
    //    and use it exactly like an analytic one.
    let samples = vec![
        (0.0, 0.11),
        (0.1, 0.24),
        (0.2, 0.31),
        (0.3, 0.29), // a noisy dip — PAV pools it away
        (0.5, 0.62),
        (0.8, 0.93),
        (1.0, 1.18),
    ];
    let fitted = EmpiricalCost::fit(samples).expect("fit succeeds");
    println!(
        "fitted empirical cost: f(0.4) = {:.3}, max share within level 0.9 = {:.3}",
        fitted.eval(0.4),
        fitted.max_share_within(0.9).expect("level is reachable")
    );

    // It can drive a DOLBIE round directly.
    let fns: Vec<dolbie::core::cost::DynCost> =
        vec![Box::new(fitted), Box::new(dolbie::core::cost::LinearCost::new(0.6, 0.05))];
    let mut dolbie = Dolbie::new(2);
    let played = dolbie.allocation().clone();
    let obs = Observation::from_costs(0, &played, &fns);
    dolbie.observe(&obs);
    println!("one DOLBIE step on the fitted cost: {} -> {}", played, dolbie.allocation());
    println!("\nall custom-deployment features exercised successfully");
    let _ = dolbie.name();
}
