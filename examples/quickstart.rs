//! Quickstart: balance a workload across three heterogeneous workers with
//! DOLBIE and watch the max-cost shrink toward the clairvoyant optimum.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dolbie::core::environment::StaticLinearEnvironment;
use dolbie::core::{instantaneous_minimizer, run_episode, Dolbie, EpisodeOptions};
use dolbie::Environment;

fn main() {
    // Three workers; cost per unit share: worker 0 is 4x slower than
    // worker 1 and 2x slower than worker 2.
    let slopes = vec![4.0, 1.0, 2.0];
    let mut env = StaticLinearEnvironment::from_slopes(slopes.clone());

    // What the best fixed split would cost (for reference).
    let costs = env.reveal(0);
    let opt = instantaneous_minimizer(&costs).expect("well-formed costs");
    println!("clairvoyant optimum: level {:.4} at {}", opt.level, opt.allocation);

    // DOLBIE starts uniform and learns online — no gradients, no
    // projections, only the revealed costs.
    let mut dolbie = Dolbie::new(slopes.len());
    let trace = run_episode(&mut dolbie, &mut env, EpisodeOptions::new(60).with_optimum());

    println!("\nround   global cost   allocation");
    for record in trace.records.iter().step_by(10) {
        println!("{:5}   {:11.4}   {}", record.round, record.global_cost, record.allocation);
    }
    let last = trace.records.last().expect("ran 60 rounds");
    println!("{:5}   {:11.4}   {}", last.round, last.global_cost, last.allocation);

    let regret = trace.regret().expect("optimum tracked");
    println!(
        "\ntotal cost {:.3}, dynamic regret {:.3} over {} rounds",
        trace.total_cost(),
        regret.dynamic_regret(),
        regret.rounds()
    );
    assert!(last.global_cost < 1.1 * opt.level, "DOLBIE should approach the optimum");
    println!("DOLBIE reached within 10% of the clairvoyant optimum.");
}
