//! The paper's flagship application (§III-A, §VI): online batch-size
//! tuning for synchronous distributed training on a heterogeneous cluster.
//!
//! Runs the full §VI comparison suite — EQU, OGD, ABS, LB-BSP, DOLBIE,
//! OPT — on one sampled 30-worker cluster training the ResNet18 cost
//! profile, and reports wall-clock, idle time, and time-to-95%-accuracy.
//!
//! ```text
//! cargo run --release --example batch_size_tuning
//! ```

use dolbie::baselines::paper_suite;
use dolbie::mlsim::{run_training, Cluster, ClusterConfig, MlModel, TrainingConfig};

fn main() {
    let model = MlModel::ResNet18;
    let cluster = Cluster::sample(ClusterConfig::paper(model), 42);
    println!("cluster: 30 workers, model {model}, processors:");
    let processors = cluster.processors();
    for kind in dolbie::mlsim::Processor::ALL {
        let count = processors.iter().filter(|p| **p == kind).count();
        println!("  {kind:16} x{count}");
    }

    let config = TrainingConfig::paper_like(150);
    println!("\nalgorithm   wall-clock   mean idle/worker   time-to-95%-acc");
    let mut results = Vec::new();
    for mut balancer in paper_suite(30, cluster.clone()) {
        let outcome = run_training(balancer.as_mut(), cluster.clone(), config);
        let t95 = outcome.time_to_accuracy(0.95);
        println!(
            "{:10} {:9.2} s {:14.2} s   {}",
            outcome.algorithm,
            outcome.total_wall_clock(),
            outcome.utilization.mean_idle_time(),
            t95.map_or("(not reached)".to_string(), |t| format!("{t:9.2} s")),
        );
        results.push(outcome);
    }

    let equ = results.iter().find(|o| o.algorithm == "EQU").expect("EQU ran");
    let dolbie = results.iter().find(|o| o.algorithm == "DOLBIE").expect("DOLBIE ran");
    let speedup =
        (equ.total_wall_clock() - dolbie.total_wall_clock()) / equ.total_wall_clock() * 100.0;
    println!("\nDOLBIE cut total training wall-clock by {speedup:.1}% vs equal assignment.");
    assert!(dolbie.total_wall_clock() < equ.total_wall_clock());
}
