//! The paper's second motivating application (§III-B): online task
//! offloading between a user device and heterogeneous edge servers with
//! queueing (non-linear!) execution costs.
//!
//! ```text
//! cargo run --release --example edge_offloading
//! ```

use dolbie::baselines::paper_suite;
use dolbie::core::{run_episode, EpisodeOptions};
use dolbie::edge::{EdgeConfig, EdgeScenario};

fn main() {
    let env = EdgeScenario::sample(EdgeConfig::paper_like(), 7);
    let n = env.num_participants();
    println!(
        "offloading across 1 local device + {} edge servers (speeds {:?} Gcycles/s)",
        n - 1,
        env.server_speeds().iter().map(|s| (s * 10.0).round() / 10.0).collect::<Vec<_>>()
    );

    println!("\nalgorithm   total completion time over 150 rounds");
    let mut totals = Vec::new();
    for mut balancer in paper_suite(n, env.clone()) {
        let mut driver = env.clone();
        let trace = run_episode(balancer.as_mut(), &mut driver, EpisodeOptions::new(150));
        println!("{:10} {:9.2} s", trace.algorithm, trace.total_cost());
        totals.push((trace.algorithm.clone(), trace.total_cost()));
    }

    let equ = totals.iter().find(|(a, _)| a == "EQU").expect("EQU ran").1;
    let dolbie = totals.iter().find(|(a, _)| a == "DOLBIE").expect("DOLBIE ran").1;
    println!(
        "\nDOLBIE cut total task completion time by {:.1}% vs equal splitting.",
        (equ - dolbie) / equ * 100.0
    );
    assert!(dolbie < equ);
}
